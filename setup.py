"""Packaging for the CoverMe reproduction.

Kept as a plain ``setup.py`` (no ``pyproject.toml``) so ``pip install -e .``
works on environments whose setuptools/wheel combination cannot perform
PEP 660 editable installs (e.g. offline machines without the ``wheel``
package).  Installing exposes the unified experiment CLI as the ``repro``
console script (equivalent to ``python -m repro``).
"""

from setuptools import find_packages, setup

setup(
    name="repro-coverme",
    version="0.4.0",
    description=(
        "Reproduction of 'Achieving High Coverage for Floating-point Code via "
        "Unconstrained Programming' (Fu & Su, PLDI 2017)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy"],
    # The batched vectorized penalty tier (repro.instrument.batch) needs
    # numpy and nothing else; named here so stripped-down deployments that
    # trim install_requires can opt back into vectorized kernels explicitly.
    # Without numpy the tier degrades to scalar specialized evaluation with
    # a one-time warning.
    extras_require={"batch": ["numpy"]},
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
