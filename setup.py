"""Legacy setup shim.

The project is configured through ``pyproject.toml``; this file only exists so
that ``pip install -e .`` keeps working on environments whose setuptools/wheel
combination cannot perform PEP 660 editable installs (e.g. offline machines
without the ``wheel`` package).
"""

from setuptools import setup

setup()
