"""Ablation benches: design choices called out in DESIGN.md.

* the local minimizer used inside basin-hopping (Powell vs Nelder-Mead vs
  compass search),
* the MCMC chain length ``n_iter`` (0 disables the Monte-Carlo moves),
* the infeasible-branch heuristic on/off.

These go beyond the paper's tables but quantify the choices its Sect. 5/6
discussion relies on.
"""

from __future__ import annotations

import pytest

from repro.core.config import CoverMeConfig
from repro.core.coverme import cover
from repro.experiments.table1 import paper_example_foo
from repro.fdlibm.suite import get_case


@pytest.mark.paper_artifact("ablation_local_minimizer")
@pytest.mark.parametrize("local_minimizer", ["powell", "nelder-mead", "compass"])
def test_ablation_local_minimizer(benchmark, local_minimizer, capsys):
    case = get_case("tanh")

    def run():
        config = CoverMeConfig(
            n_start=40, n_iter=5, seed=1, local_minimizer=local_minimizer, time_budget=6.0
        )
        return cover(case.entry, config)

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    with capsys.disabled():
        print(
            f"\n[Ablation LM={local_minimizer:<12s}] tanh coverage "
            f"{result.branch_coverage_percent:5.1f}% with {result.evaluations} evaluations"
        )
    assert result.branch_coverage_percent >= 50.0


@pytest.mark.paper_artifact("ablation_n_iter")
@pytest.mark.parametrize("n_iter", [0, 5])
def test_ablation_mcmc_iterations(benchmark, n_iter, capsys):
    """n_iter = 0 removes the Monte-Carlo moves: pure multi-start local search."""

    def run():
        return cover(paper_example_foo, CoverMeConfig(n_start=30, n_iter=n_iter, seed=2))

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    with capsys.disabled():
        print(f"\n[Ablation n_iter={n_iter}] coverage {result.branch_coverage_percent:.1f}%")
    assert result.branch_coverage_percent >= 75.0


@pytest.mark.paper_artifact("ablation_infeasible_heuristic")
@pytest.mark.parametrize("mark_infeasible", [True, False])
def test_ablation_infeasible_heuristic(benchmark, mark_infeasible, capsys):
    """With the heuristic on, the search stops early on the dead branch of k_cos."""
    case = get_case("kernel_cos")

    def run():
        config = CoverMeConfig(
            n_start=30, n_iter=3, seed=4, mark_infeasible=mark_infeasible, time_budget=5.0
        )
        return cover(case.entry, config)

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    with capsys.disabled():
        print(
            f"\n[Ablation infeasible={mark_infeasible}] k_cos coverage "
            f"{result.branch_coverage_percent:.1f}%, starts used {result.n_starts_used}"
        )
    assert result.branch_coverage_percent >= 62.5
