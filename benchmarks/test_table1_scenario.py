"""Bench for Table 1: the saturation scenario on the example program FOO."""

from __future__ import annotations

import pytest

from repro.experiments import table1


@pytest.mark.paper_artifact("table1")
def test_table1_saturation_scenario(benchmark):
    steps = benchmark(table1.run, n_start=40, seed=0)
    final = steps[-1]
    assert len(final.saturated) == 4  # all four branches of FOO saturated
    # The paper's scenario takes 4 rounds; any trajectory needs at least 2
    # inputs because no single input can cover both arms of l0.
    assert len(final.inputs_so_far) >= 2


@pytest.mark.paper_artifact("table1")
def test_table1_row1_representing_function_is_zero(benchmark):
    """Row 1 of Table 1: before anything is saturated, FOO_R == 0 everywhere."""
    values = benchmark(table1.representing_function_values, [-5.2, -3.0, 0.7, 1.0, 1.1, 2.0])
    assert all(v == 0.0 for v in values)
