"""Bench for Figure 2: local versus MCMC/basin-hopping global optimization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.figure2 import (
    FIGURE2B_MINIMA,
    figure2a_objective,
    figure2b_objective,
)
from repro.optimize.basinhopping import basinhopping
from repro.optimize.local import powell


@pytest.mark.paper_artifact("figure2a")
def test_figure2a_local_optimization(benchmark):
    """Fig. 2(a): the local method alone reaches the flat global minimum."""
    result = benchmark(powell, figure2a_objective, np.array([8.0]))
    assert result.fun == 0.0
    assert result.x[0] <= 1.0 + 1e-9


@pytest.mark.paper_artifact("figure2b")
def test_figure2b_global_optimization(benchmark):
    """Fig. 2(b): Monte-Carlo moves escape the local basin (p0 -> ... -> p5)."""

    def run():
        return basinhopping(
            figure2b_objective,
            np.array([6.0]),
            n_iter=25,
            step_size=2.0,
            rng=np.random.default_rng(0),
        )

    result = benchmark(run)
    assert result.fun == pytest.approx(0.0, abs=1e-6)
    assert min(abs(result.x[0] - m) for m in FIGURE2B_MINIMA) < 1e-2


@pytest.mark.paper_artifact("figure2b")
def test_figure2b_local_only_gets_trapped(benchmark):
    """Contrast: Powell alone from x=6 stays in the right-hand basin (x*=2)."""
    result = benchmark(powell, figure2b_objective, np.array([6.0]))
    assert abs(result.x[0] - 2.0) < 1e-2
