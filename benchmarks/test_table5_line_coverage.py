"""Bench for Table 5: line coverage of CoverMe versus Rand and AFL."""

from __future__ import annotations

import pytest

from repro.experiments import table5


@pytest.mark.paper_artifact("table5")
def test_table5_line_coverage(benchmark, profile, capsys, run_store):
    rows = benchmark.pedantic(
        table5.run, args=(profile,), kwargs={"store": run_store}, iterations=1, rounds=1
    )
    summary = table5.summarize(rows)

    with capsys.disabled():
        print()
        print(f"[Table 5] profile={profile.name}: mean line coverage (%)")
        for tool in table5.TOOLS:
            print(f"  {tool:>8s}: {summary[tool]:6.1f}")
        print("  (paper: Rand 54.2 / AFL 87.0 / CoverMe 97.0)")
        for row in rows:
            values = "  ".join(
                f"{tool}={table5.line_percent(row, tool):5.1f}" for tool in table5.TOOLS
            )
            print(f"  {row.case.function:<34s} {values}")

    # Shape: CoverMe's line coverage beats Rand's and is high in absolute terms.
    assert summary["CoverMe"] > summary["Rand"]
    assert summary["CoverMe"] >= 60.0
    # Line coverage tracks branch coverage per function (Table 5 vs Table 2).
    for row in rows:
        line = table5.line_percent(row, "CoverMe")
        assert line >= row.coverage("CoverMe") * 0.8
