"""Bench for Table 2 / Figure 5: CoverMe vs Rand vs AFL branch coverage.

Regenerates the rows of Table 2 under the selected profile and checks the
qualitative shape of the paper's result: CoverMe's mean branch coverage beats
both Rand and AFL, and the per-function ordering holds for the large majority
of the benchmarked functions.

The run also emits ``BENCH_table2_<profile>.json`` with the measured per-case
coverage *and* the instrumented branch count of every suite entry (including
helper ``extras``), so future PRs can diff instrumented-branch totals against
the paper's Table 2 column without re-running the search.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments import table2
from repro.experiments.runner import format_table, instrument_case
from repro.fdlibm.suite import BENCHMARKS


def _static_branch_counts() -> dict[str, dict[str, int]]:
    """Instrumented-vs-paper branch counts for all 40 entries (no search)."""
    counts = {}
    for case in BENCHMARKS:
        program = instrument_case(case)
        counts[case.key] = {
            "instrumented_branches": program.n_branches,
            "paper_branches": case.paper.branches,
            "extras": len(case.extras),
            "fallback_conditionals": len(program.fallback_conditionals),
        }
    return counts


def _write_artifact(bench_report_dir, profile, rows, summary) -> None:
    report = {
        "profile": profile.name,
        "cases": [
            {
                "key": row.case.key,
                "branches": row.n_branches,
                "paper_branches": row.case.paper.branches,
                "coverage": {tool: row.coverage(tool) for tool in table2.TOOLS},
                "paper_coverme_branch": row.case.paper.coverme_branch,
            }
            for row in rows
        ],
        "means": summary,
        "static_branch_counts": _static_branch_counts(),
    }
    payload = json.dumps(report, indent=2, sort_keys=True) + "\n"
    name = f"BENCH_table2_{profile.name}.json"
    (bench_report_dir / name).write_text(payload)
    out_dir = os.environ.get("REPRO_BENCH_OUTPUT_DIR")
    if out_dir:  # CI sets this to collect the artifact across PRs
        Path(out_dir).mkdir(parents=True, exist_ok=True)
        (Path(out_dir) / name).write_text(payload)


@pytest.mark.paper_artifact("table2")
def test_table2_coverme_vs_rand_vs_afl(benchmark, profile, capsys, bench_report_dir, run_store):
    rows = benchmark.pedantic(
        table2.run, args=(profile,), kwargs={"store": run_store}, iterations=1, rounds=1
    )
    summary = table2.summarize(rows)
    _write_artifact(bench_report_dir, profile, rows, summary)

    with capsys.disabled():
        print()
        print(
            format_table(
                rows,
                table2.TOOLS,
                paper_column=lambda case: case.paper.coverme_branch,
                title=f"[Table 2] profile={profile.name} (paper column = CoverMe %)",
            )
        )
        print(
            f"[Table 2] means: Rand {summary['Rand']:.1f}% | AFL {summary['AFL']:.1f}% | "
            f"CoverMe {summary['CoverMe']:.1f}%   (paper: 38.0 / 72.9 / 90.8)"
        )

    # Shape of the paper's headline result: CoverMe wins against Rand on
    # average and by a clear margin; it stays competitive with AFL even at the
    # small smoke budgets (the paper's gap needs the default/full profiles).
    assert summary["CoverMe"] > summary["Rand"]
    assert summary["improvement_vs_rand"] > 5.0
    assert summary["CoverMe"] >= summary["AFL"] - 25.0
    assert summary["CoverMe"] >= 50.0
    # Per-function: CoverMe beats or matches Rand on most functions.
    wins = sum(1 for row in rows if row.coverage("CoverMe") >= row.coverage("Rand"))
    assert wins >= 0.6 * len(rows)
