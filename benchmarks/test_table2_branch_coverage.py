"""Bench for Table 2 / Figure 5: CoverMe vs Rand vs AFL branch coverage.

Regenerates the rows of Table 2 under the selected profile and checks the
qualitative shape of the paper's result: CoverMe's mean branch coverage beats
both Rand and AFL, and the per-function ordering holds for the large majority
of the benchmarked functions.
"""

from __future__ import annotations

import pytest

from repro.experiments import table2
from repro.experiments.runner import format_table


@pytest.mark.paper_artifact("table2")
def test_table2_coverme_vs_rand_vs_afl(benchmark, profile, capsys):
    rows = benchmark.pedantic(table2.run, args=(profile,), iterations=1, rounds=1)
    summary = table2.summarize(rows)

    with capsys.disabled():
        print()
        print(
            format_table(
                rows,
                table2.TOOLS,
                paper_column=lambda case: case.paper.coverme_branch,
                title=f"[Table 2] profile={profile.name} (paper column = CoverMe %)",
            )
        )
        print(
            f"[Table 2] means: Rand {summary['Rand']:.1f}% | AFL {summary['AFL']:.1f}% | "
            f"CoverMe {summary['CoverMe']:.1f}%   (paper: 38.0 / 72.9 / 90.8)"
        )

    # Shape of the paper's headline result: CoverMe wins against Rand on
    # average and by a clear margin; it stays competitive with AFL even at the
    # small smoke budgets (the paper's gap needs the default/full profiles).
    assert summary["CoverMe"] > summary["Rand"]
    assert summary["improvement_vs_rand"] > 5.0
    assert summary["CoverMe"] >= summary["AFL"] - 25.0
    assert summary["CoverMe"] >= 50.0
    # Per-function: CoverMe beats or matches Rand on most functions.
    wins = sum(1 for row in rows if row.coverage("CoverMe") >= row.coverage("Rand"))
    assert wins >= 0.6 * len(rows)
