"""Bench for Sect. D: the two incompleteness case studies (k_cos.c and e_fmod.c)."""

from __future__ import annotations

import pytest

from repro.core.config import CoverMeConfig
from repro.core.coverme import CoverMe
from repro.fdlibm.e_fmod import ieee754_fmod
from repro.fdlibm.k_cos import kernel_cos
from repro.instrument.runtime import BranchId


@pytest.mark.paper_artifact("sectD_kcos")
def test_kcos_missed_branch_is_the_infeasible_one(benchmark, capsys):
    """k_cos.c: 87.5% is optimal -- the ``((int) x) == 0`` false arm is dead."""

    def run():
        return CoverMe(kernel_cos, CoverMeConfig(n_start=80, n_iter=5, seed=3)).run()

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    with capsys.disabled():
        print(
            f"\n[Sect. D / k_cos] coverage {result.branch_coverage_percent:.1f}% "
            f"(paper 87.5%, optimal), infeasible marks: {sorted(result.infeasible)}"
        )
    assert result.branch_coverage_percent <= 87.5 + 1e-9
    assert result.branch_coverage_percent >= 62.5
    # The uncovered branch is the false arm of the ``(int) x == 0`` conditional
    # (label 1 in the port), exactly as the paper explains.
    assert BranchId(1, False) not in result.covered


@pytest.mark.paper_artifact("sectD_fmod")
def test_fmod_subnormal_branches_remain_uncovered(benchmark, capsys):
    """e_fmod.c: the subnormal-input branches stay uncovered (paper: 70.0%)."""

    def run():
        config = CoverMeConfig(n_start=40, n_iter=5, seed=3, time_budget=8.0)
        return CoverMe(ieee754_fmod, config).run()

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    with capsys.disabled():
        print(
            f"\n[Sect. D / e_fmod] coverage {result.branch_coverage_percent:.1f}% "
            f"of {result.n_branches} branches (paper 70.0% of 60)"
        )
    # Partial coverage, as in the paper: well above random, well below 100%.
    assert 25.0 <= result.branch_coverage_percent < 100.0
    # The subnormal-x branch (hx < 0x00100000 with hx == 0 loop) is among the
    # uncovered ones: no generated input is subnormal.
    assert all(abs(v) >= 2.2250738585072014e-308 or v == 0.0 for point in result.inputs for v in point)
