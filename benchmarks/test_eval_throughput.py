"""Evaluation throughput of the tiered execution runtime.

The paper's bet is that minimizing the representing function is cheap because
each evaluation "is just an execution of the instrumented program"; the
engine issues millions of them.  This bench measures evaluations/sec of
``FOO_R`` under each :class:`~repro.instrument.runtime.ExecutionProfile` on
branch-dense Fdlibm functions and asserts the runtime guarantees:

* the allocation-free ``PENALTY_ONLY`` profile is at least 3x faster than
  the recording ``FULL_TRACE`` profile (geometric mean over the workload);
* the compile-time ``PENALTY_SPECIALIZED`` tier is at least 6x faster than
  ``FULL_TRACE`` *and* at least 1.5x faster than ``PENALTY_ONLY`` -- the
  specializer must beat the fast runtime it replaces, not just the recorder;
* the machine-code ``PENALTY_NATIVE`` tier is at least 1.2x faster than the
  batched kernel overall and at least 2x on rows-mode programs (loops,
  helpers) at 1024-row batches -- those are the programs vectorization gains
  nothing, so the native tier must carry them (the gate self-skips when no C
  compiler is present; ``REPRO_FORCE_NATIVE_BENCH=1`` forces it, e.g. in CI
  where a toolchain is guaranteed);
* the threaded ``sp_batch_mt`` entry at 4096-row batches is at least 1.5x
  faster at 4 threads than at 1 (geomean over the workload), with the sweep
  asserted bit-identical across thread counts -- this gate additionally
  self-skips on machines with fewer than 4 cores, where the speedup cannot
  physically materialize (``REPRO_FORCE_NATIVE_BENCH=1`` forces it too);
* all profiles compute bit-identical objective values;
* the epoch protocol compiles exactly one variant per (mask, epsilon) and
  performs zero re-specializations while the saturation mask is unchanged.

The measured numbers are written to ``BENCH_eval_throughput.json`` (in
``REPRO_BENCH_OUTPUT_DIR`` or the working directory) with one row per
profile per function, so CI can track the perf trajectory across PRs; the
CI job fails if a geomean regresses below its gate.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

import numpy as np

from repro.core.representing import RepresentingFunction
from repro.core.saturation import SaturationTracker
from repro.experiments.runner import instrument_case
from repro.fdlibm.suite import BENCHMARKS
from repro.instrument.batch import numpy_available as batch_numpy_available
from repro.instrument.native.cache import cc_available
from repro.instrument.runtime import ExecutionProfile, Runtime

#: Branch-dense workload: functions whose conditionals (not their arithmetic)
#: dominate execution time, i.e. where the per-conditional runtime tax is
#: actually measurable.
WORKLOAD_FUNCTIONS = (
    "floor",
    "nextafter",
    "ieee754_fmod",
    "ieee754_pow",
    "ieee754_rem_pio2",
    "expm1",
)
TARGET_SPEEDUP = 3.0
SPECIALIZED_TARGET_SPEEDUP = 6.0
SPECIALIZED_VS_PENALTY_TARGET = 1.5
BATCHED_VS_SPECIALIZED_TARGET = 2.0
NATIVE_VS_BATCHED_TARGET = 1.2
NATIVE_VS_BATCHED_ROWS_TARGET = 2.0
POINTS = 150
#: Rows per batched-kernel call when timing the batched tier.  Vectorized
#: evaluation amortizes numpy's per-op dispatch over the whole batch, so its
#: throughput is a function of batch size; 1024 is a representative
#: population-scale batch (a proposal population or a primed multi-start
#: sweep), while the 150-point scalar workload would mostly measure the
#: dispatch constant.  Values are still asserted bit-identical on the exact
#: scalar point set.
BATCH_POINTS = 1024
#: Rows per call for the multi-threaded sweep: large enough that the
#: per-thread chunks amortize pthread create/join, matching the engine's
#: primed multi-start sweeps.
MT_BATCH_POINTS = 4096
MT_THREAD_SWEEP = (1, 2, 4)
MT_VS_SINGLE_TARGET = 1.5
REPEATS = 6


def _workload_cases():
    by_name = {case.function.split("(")[0]: case for case in BENCHMARKS}
    return [(name, by_name[name]) for name in WORKLOAD_FUNCTIONS if name in by_name]


def _prepared(case):
    """Instrument one case and partially saturate its tracker.

    A handful of seed executions produce the realistic mid-search state: some
    conditionals fully saturated (penalty fast path keeps r), some half
    saturated (distance computed), some untouched.
    """
    rng = np.random.default_rng(7)
    program = instrument_case(case)
    tracker = SaturationTracker(program)
    for _ in range(6):
        x = tuple(rng.normal(scale=100.0, size=program.arity))
        _, _, record = program.run(x, runtime=Runtime())
        tracker.add_execution(record)
    points = [rng.normal(scale=10.0, size=program.arity) for _ in range(POINTS)]
    return program, tracker, points


def _throughput(program, tracker, points, profile) -> tuple[float, list[float], object]:
    representing = RepresentingFunction(program, tracker, profile=profile)
    values = [representing(x) for x in points]  # warm-up + value capture
    # timeit.repeat practice: the fastest repeat is the best estimate of the
    # runtime's capability; slower repeats measure scheduler noise, not code.
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        for x in points:
            representing(x)
        best = min(best, time.perf_counter() - started)
    return len(points) / best, values, representing


def _batched_throughput(program, tracker, points) -> tuple[float, list[float], str]:
    """One batched-kernel call over the whole point set, timed like _throughput.

    Returns the rate, the per-row values (for the bit-identity assertion
    against the scalar tiers) and the kernel's execution mode ("vector" for
    whole-array numpy lanes, "rows" for the per-row fallback loop).
    """
    representing = RepresentingFunction(
        program, tracker, profile=ExecutionProfile.PENALTY_SPECIALIZED
    )
    X = np.ascontiguousarray(points, dtype=np.float64)
    values = representing.evaluate_batch(X)  # bit-identity capture + warm-up
    X_large = np.ascontiguousarray(
        np.random.default_rng(11).normal(scale=10.0, size=(BATCH_POINTS, program.arity))
    )
    representing.evaluate_batch(X_large)
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        representing.evaluate_batch(X_large)
        best = min(best, time.perf_counter() - started)
    # Epoch protocol holds for the batched tier too: the mask never changed,
    # so exactly one kernel was built/looked up across all repeats.
    assert representing.batch_respecializations == 1
    kernel = representing._batch_kernel
    mode = kernel.mode if kernel is not None else "scalar"
    return BATCH_POINTS / best, [float(v) for v in values], mode


def _native_batched_throughput(program, tracker, points) -> tuple[float, list[float]]:
    """The native kernel over the same 1024-row batch as the batched tier.

    Asserts along the way that the native tier actually served (zero
    degradations to the batched kernel) and followed the epoch protocol
    (one kernel build for the unchanged mask).
    """
    # Pre-warm the kernel through the blocking path: the respecialization
    # assertion below counts swaps, and under the non-blocking default the
    # first call would serve the specialized tier while cc runs.
    program.native_kernel(tracker.saturated_mask)
    representing = RepresentingFunction(
        program, tracker, profile=ExecutionProfile.PENALTY_NATIVE
    )
    X = np.ascontiguousarray(points, dtype=np.float64)
    values = representing.evaluate_batch(X)  # bit-identity capture + warm-up
    X_large = np.ascontiguousarray(
        np.random.default_rng(11).normal(scale=10.0, size=(BATCH_POINTS, program.arity))
    )
    representing.evaluate_batch(X_large)
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        representing.evaluate_batch(X_large)
        best = min(best, time.perf_counter() - started)
    assert representing.native_respecializations == 1
    assert representing.batch_respecializations == 0, (
        "native tier degraded to the batched kernel during the bench"
    )
    return BATCH_POINTS / best, [float(v) for v in values]


def _native_mt_throughput(program, tracker) -> dict[int, float]:
    """Thread-sweep of the ``sp_batch_mt`` entry at a 4096-row batch.

    Times the same compiled kernel at each thread count of
    :data:`MT_THREAD_SWEEP` and asserts every sweep point computes
    bit-identical values -- the fixed-order OR-merge is the mt entry's core
    contract, so a divergence here is a correctness bug, not noise.
    """
    kernel = program.native_kernel(tracker.saturated_mask)
    X = np.ascontiguousarray(
        np.random.default_rng(13).normal(scale=10.0, size=(MT_BATCH_POINTS, program.arity))
    )
    reference = None
    rates: dict[int, float] = {}
    for n_threads in MT_THREAD_SWEEP:
        r, _ = kernel(X, n_threads=n_threads)  # warm-up + identity capture
        bits = r.view(np.uint64).tolist()
        if reference is None:
            reference = bits
        else:
            assert bits == reference, (
                f"n_threads={n_threads} diverges bitwise from single-thread"
            )
        best = float("inf")
        for _ in range(REPEATS):
            started = time.perf_counter()
            kernel(X, n_threads=n_threads)
            best = min(best, time.perf_counter() - started)
        rates[n_threads] = MT_BATCH_POINTS / best
    return rates


def _geomean(ratios: list[float]) -> float:
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def test_eval_throughput_and_profile_equivalence(bench_report_dir):
    cases = _workload_cases()
    assert cases, "workload functions missing from the suite"

    per_function: dict[str, dict[str, float]] = {}
    ratios = []
    specialized_ratios = []
    specialized_vs_penalty = []
    batched_vs_specialized = []
    native_vs_batched = []
    native_vs_batched_rows = []
    mt_vs_single = []
    batched_available = batch_numpy_available()
    force_native = os.environ.get("REPRO_FORCE_NATIVE_BENCH") == "1"
    native_available = batched_available and (cc_available() or force_native)
    # The mt gate needs real parallelism to pass: skip it below 4 cores
    # unless forced (CI runners guarantee 4 vCPUs and set the force flag).
    mt_available = native_available and ((os.cpu_count() or 1) >= 4 or force_native)
    for name, case in cases:
        program, tracker, points = _prepared(case)
        rates: dict[str, float] = {}
        values_by_profile = {}
        for profile in ExecutionProfile:
            rates[profile.value], values_by_profile[profile], representing = _throughput(
                program, tracker, points, profile
            )
            if profile is ExecutionProfile.PENALTY_SPECIALIZED:
                # Epoch protocol: the mask never changed during the timing
                # loop, so exactly one variant was (looked up or) compiled
                # and the wrapper never switched variants again.
                assert representing.respecializations == 1, name
                assert program.specialization_builds == 1, name
        # Bit-identical objective values across all profiles.
        reference = values_by_profile[ExecutionProfile.FULL_TRACE]
        for profile, values in values_by_profile.items():
            assert values == reference, f"{name}: {profile.value} diverges from full-trace"
        full_rate = rates[ExecutionProfile.FULL_TRACE.value]
        penalty_rate = rates[ExecutionProfile.PENALTY_ONLY.value]
        specialized_rate = rates[ExecutionProfile.PENALTY_SPECIALIZED.value]
        ratio = penalty_rate / full_rate
        specialized_ratio = specialized_rate / full_rate
        per_function[name] = {
            **rates,
            "penalty_vs_full_trace": ratio,
            "specialized_vs_full_trace": specialized_ratio,
            "specialized_vs_penalty": specialized_rate / penalty_rate,
        }
        ratios.append(ratio)
        specialized_ratios.append(specialized_ratio)
        specialized_vs_penalty.append(specialized_rate / penalty_rate)
        if batched_available:
            batched_rate, batched_values, batched_mode = _batched_throughput(
                program, tracker, points
            )
            assert batched_values == reference, f"{name}: batched diverges from full-trace"
            per_function[name]["penalty-batched"] = batched_rate
            per_function[name]["batched_mode"] = batched_mode
            per_function[name]["batched_vs_specialized"] = batched_rate / specialized_rate
            batched_vs_specialized.append(batched_rate / specialized_rate)
            if native_available:
                native_rate, native_values = _native_batched_throughput(
                    program, tracker, points
                )
                assert native_values == reference, (
                    f"{name}: native diverges from full-trace"
                )
                native_ratio = native_rate / batched_rate
                per_function[name]["penalty-native-batch"] = native_rate
                per_function[name]["native_vs_batched"] = native_ratio
                native_vs_batched.append(native_ratio)
                if batched_mode == "rows":
                    native_vs_batched_rows.append(native_ratio)
                if mt_available:
                    mt_rates = _native_mt_throughput(program, tracker)
                    mt_ratio = mt_rates[MT_THREAD_SWEEP[-1]] / mt_rates[1]
                    per_function[name]["native-mt"] = {
                        str(k): v for k, v in mt_rates.items()
                    }
                    per_function[name]["mt_vs_single_thread"] = mt_ratio
                    mt_vs_single.append(mt_ratio)

    geomean = _geomean(ratios)
    specialized_geomean = _geomean(specialized_ratios)
    specialized_vs_penalty_geomean = _geomean(specialized_vs_penalty)
    batched_geomean = _geomean(batched_vs_specialized) if batched_vs_specialized else None
    native_geomean = _geomean(native_vs_batched) if native_vs_batched else None
    native_rows_geomean = (
        _geomean(native_vs_batched_rows) if native_vs_batched_rows else None
    )
    mt_geomean = _geomean(mt_vs_single) if mt_vs_single else None
    report = {
        "workload": [name for name, _ in cases],
        "points_per_function": POINTS * (REPEATS + 1),
        "evals_per_sec": per_function,
        "penalty_vs_full_trace_geomean": geomean,
        "specialized_vs_full_trace_geomean": specialized_geomean,
        "specialized_vs_penalty_geomean": specialized_vs_penalty_geomean,
        "batched_vs_specialized_geomean": batched_geomean,
        "batched_available": batched_available,
        "native_vs_batched_geomean": native_geomean,
        "native_vs_batched_rows_geomean": native_rows_geomean,
        "native_available": native_available,
        "mt_vs_single_thread_geomean": mt_geomean,
        "mt_thread_sweep": list(MT_THREAD_SWEEP),
        "mt_batch_points": MT_BATCH_POINTS,
        "mt_available": mt_available,
        "mt_target_speedup": MT_VS_SINGLE_TARGET,
        "target_speedup": TARGET_SPEEDUP,
        "specialized_target_speedup": SPECIALIZED_TARGET_SPEEDUP,
        "specialized_vs_penalty_target": SPECIALIZED_VS_PENALTY_TARGET,
        "batched_target_speedup": BATCHED_VS_SPECIALIZED_TARGET,
        "native_target_speedup": NATIVE_VS_BATCHED_TARGET,
        "native_rows_target_speedup": NATIVE_VS_BATCHED_ROWS_TARGET,
    }
    payload = json.dumps(report, indent=2, sort_keys=True) + "\n"
    (bench_report_dir / "BENCH_eval_throughput.json").write_text(payload)
    out_dir = os.environ.get("REPRO_BENCH_OUTPUT_DIR")
    if out_dir:  # CI sets this to collect the artifact across PRs
        (Path(out_dir) / "BENCH_eval_throughput.json").write_text(payload)
    print(
        f"\npenalty-only vs full-trace: geomean {geomean:.2f}x; "
        f"specialized vs full-trace: {specialized_geomean:.2f}x "
        f"(vs penalty: {specialized_vs_penalty_geomean:.2f}x) over {len(ratios)} functions"
    )
    if batched_geomean is not None:
        print(
            f"batched vs specialized: geomean {batched_geomean:.2f}x "
            f"over {len(batched_vs_specialized)} functions"
        )
    if native_geomean is not None:
        rows_note = (
            f" (rows-mode: {native_rows_geomean:.2f}x over "
            f"{len(native_vs_batched_rows)})"
            if native_rows_geomean is not None
            else ""
        )
        print(
            f"native vs batched: geomean {native_geomean:.2f}x "
            f"over {len(native_vs_batched)} functions{rows_note}"
        )
    if mt_geomean is not None:
        print(
            f"native mt {MT_THREAD_SWEEP[-1]} threads vs 1: geomean "
            f"{mt_geomean:.2f}x over {len(mt_vs_single)} functions "
            f"at {MT_BATCH_POINTS}-row batches"
        )
    for name, stats in per_function.items():
        batched_note = ""
        if "penalty-batched" in stats:
            batched_note = (
                f"batched {stats['penalty-batched']:>11,.0f}/s "
                f"[{stats['batched_mode']}] {stats['batched_vs_specialized']:.2f}x  "
            )
        if "penalty-native-batch" in stats:
            batched_note = (
                f"native {stats['penalty-native-batch']:>12,.0f}/s "
                f"{stats['native_vs_batched']:.2f}x  "
            ) + batched_note
        if "mt_vs_single_thread" in stats:
            batched_note = f"mt {stats['mt_vs_single_thread']:.2f}x  " + batched_note
        print(
            f"  {name:20s} {batched_note}"
            f"specialized {stats['penalty-specialized']:>10,.0f}/s  "
            f"penalty {stats['penalty']:>10,.0f}/s  "
            f"full-trace {stats['full-trace']:>9,.0f}/s  "
            f"({stats['specialized_vs_full_trace']:.2f}x / {stats['penalty_vs_full_trace']:.2f}x)"
        )
    assert geomean >= TARGET_SPEEDUP, (
        f"expected >= {TARGET_SPEEDUP}x penalty-only vs full-trace, measured {geomean:.2f}x"
    )
    assert specialized_geomean >= SPECIALIZED_TARGET_SPEEDUP, (
        f"expected >= {SPECIALIZED_TARGET_SPEEDUP}x specialized vs full-trace, "
        f"measured {specialized_geomean:.2f}x"
    )
    assert specialized_vs_penalty_geomean >= SPECIALIZED_VS_PENALTY_TARGET, (
        f"expected >= {SPECIALIZED_VS_PENALTY_TARGET}x specialized vs penalty-only, "
        f"measured {specialized_vs_penalty_geomean:.2f}x"
    )
    if batched_geomean is None:
        # numpy unavailable on this runner: the batched tier degraded to the
        # scalar path by design, so there is nothing to gate.
        print("batched gate skipped: numpy unavailable")
    else:
        assert batched_geomean >= BATCHED_VS_SPECIALIZED_TARGET, (
            f"expected >= {BATCHED_VS_SPECIALIZED_TARGET}x batched vs scalar specialized, "
            f"measured {batched_geomean:.2f}x"
        )
    if native_geomean is None:
        # No C compiler on this runner (and the run was not forced): the
        # native tier degraded to the batched kernel by design.  CI sets
        # REPRO_FORCE_NATIVE_BENCH=1 so the gate cannot silently vanish
        # where a toolchain is guaranteed.
        print("native gate skipped: no C compiler (set REPRO_FORCE_NATIVE_BENCH=1 to force)")
    else:
        assert native_geomean >= NATIVE_VS_BATCHED_TARGET, (
            f"expected >= {NATIVE_VS_BATCHED_TARGET}x native vs batched overall, "
            f"measured {native_geomean:.2f}x"
        )
        assert native_rows_geomean is not None, "workload lost its rows-mode functions"
        assert native_rows_geomean >= NATIVE_VS_BATCHED_ROWS_TARGET, (
            f"expected >= {NATIVE_VS_BATCHED_ROWS_TARGET}x native vs batched on "
            f"rows-mode programs, measured {native_rows_geomean:.2f}x"
        )
    if mt_geomean is None:
        # Fewer than 4 cores (or no native tier at all): the threaded entry
        # cannot demonstrate parallel speedup here.  CI runs with 4 vCPUs
        # and REPRO_FORCE_NATIVE_BENCH=1, so the gate cannot silently vanish
        # where the hardware supports it.
        print(
            "mt gate skipped: <4 cores or no C compiler "
            "(set REPRO_FORCE_NATIVE_BENCH=1 to force)"
        )
    else:
        assert mt_geomean >= MT_VS_SINGLE_TARGET, (
            f"expected >= {MT_VS_SINGLE_TARGET}x mt ({MT_THREAD_SWEEP[-1]} threads) "
            f"vs single-thread at {MT_BATCH_POINTS}-row batches, "
            f"measured {mt_geomean:.2f}x"
        )


def test_memoized_start_reduces_executions():
    """The bit-pattern memo cuts true executions without changing the result."""
    from repro.optimize.basinhopping import basinhopping

    name, case = _workload_cases()[0]
    outcomes = {}
    for memoize in (False, True):
        program, tracker, _ = _prepared(case)
        representing = RepresentingFunction(
            program, tracker, profile=ExecutionProfile.PENALTY_ONLY
        )
        result = basinhopping(
            representing,
            np.full(program.arity, 2.5),
            n_iter=4,
            rng=np.random.default_rng(3),
            memoize=memoize,
            local_options={"max_iterations": 40},
        )
        key = (float(result.fun), tuple(float(v) for v in result.x))
        outcomes[memoize] = (key, representing.evaluations, result.nfev)

    (key_plain, execs_plain, nfev_plain) = outcomes[False]
    (key_memo, execs_memo, nfev_memo) = outcomes[True]
    assert key_memo == key_plain, "memoization changed the search result"
    assert nfev_memo == nfev_plain, "memoization changed the trajectory"
    assert execs_memo < execs_plain, "memo served no repeated evaluations"
    print(
        f"\n{name}: {execs_plain} executions unmemoized -> {execs_memo} memoized "
        f"({100.0 * (1 - execs_memo / execs_plain):.0f}% served from cache)"
    )
