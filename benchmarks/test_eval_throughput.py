"""Evaluation throughput of the two-tier execution runtime.

The paper's bet is that minimizing the representing function is cheap because
each evaluation "is just an execution of the instrumented program"; the
engine issues millions of them.  This bench measures evaluations/sec of
``FOO_R`` under each :class:`~repro.instrument.runtime.ExecutionProfile` on
branch-dense Fdlibm functions and asserts the two runtime guarantees:

* the allocation-free ``PENALTY_ONLY`` profile is at least 3x faster than
  the recording ``FULL_TRACE`` profile (geometric mean over the workload);
* all profiles compute bit-identical objective values.

The measured numbers are written to ``BENCH_eval_throughput.json`` (in
``REPRO_BENCH_OUTPUT_DIR`` or the working directory) so CI can track the
perf trajectory across PRs.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

import numpy as np

from repro.core.representing import RepresentingFunction
from repro.core.saturation import SaturationTracker
from repro.experiments.runner import instrument_case
from repro.fdlibm.suite import BENCHMARKS
from repro.instrument.runtime import ExecutionProfile, Runtime

#: Branch-dense workload: functions whose conditionals (not their arithmetic)
#: dominate execution time, i.e. where the per-conditional runtime tax is
#: actually measurable.
WORKLOAD_FUNCTIONS = (
    "floor",
    "nextafter",
    "ieee754_fmod",
    "ieee754_pow",
    "ieee754_rem_pio2",
    "expm1",
)
TARGET_SPEEDUP = 3.0
POINTS = 150
REPEATS = 6


def _workload_cases():
    by_name = {case.function.split("(")[0]: case for case in BENCHMARKS}
    return [(name, by_name[name]) for name in WORKLOAD_FUNCTIONS if name in by_name]


def _prepared(case):
    """Instrument one case and partially saturate its tracker.

    A handful of seed executions produce the realistic mid-search state: some
    conditionals fully saturated (penalty fast path keeps r), some half
    saturated (distance computed), some untouched.
    """
    rng = np.random.default_rng(7)
    program = instrument_case(case)
    tracker = SaturationTracker(program)
    for _ in range(6):
        x = tuple(rng.normal(scale=100.0, size=program.arity))
        _, _, record = program.run(x, runtime=Runtime())
        tracker.add_execution(record)
    points = [rng.normal(scale=10.0, size=program.arity) for _ in range(POINTS)]
    return program, tracker, points


def _throughput(program, tracker, points, profile) -> tuple[float, list[float]]:
    representing = RepresentingFunction(program, tracker, profile=profile)
    values = [representing(x) for x in points]  # warm-up + value capture
    # timeit.repeat practice: the fastest repeat is the best estimate of the
    # runtime's capability; slower repeats measure scheduler noise, not code.
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        for x in points:
            representing(x)
        best = min(best, time.perf_counter() - started)
    return len(points) / best, values


def test_eval_throughput_and_profile_equivalence(bench_report_dir):
    cases = _workload_cases()
    assert cases, "workload functions missing from the suite"

    per_function: dict[str, dict[str, float]] = {}
    ratios = []
    for name, case in cases:
        program, tracker, points = _prepared(case)
        rates: dict[str, float] = {}
        values_by_profile = {}
        for profile in ExecutionProfile:
            rates[profile.value], values_by_profile[profile] = _throughput(
                program, tracker, points, profile
            )
        # Bit-identical objective values across all three profiles.
        reference = values_by_profile[ExecutionProfile.FULL_TRACE]
        for profile, values in values_by_profile.items():
            assert values == reference, f"{name}: {profile.value} diverges from full-trace"
        ratio = rates[ExecutionProfile.PENALTY_ONLY.value] / rates[ExecutionProfile.FULL_TRACE.value]
        per_function[name] = {**rates, "penalty_vs_full_trace": ratio}
        ratios.append(ratio)

    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    report = {
        "workload": [name for name, _ in cases],
        "points_per_function": POINTS * (REPEATS + 1),
        "evals_per_sec": per_function,
        "penalty_vs_full_trace_geomean": geomean,
        "target_speedup": TARGET_SPEEDUP,
    }
    payload = json.dumps(report, indent=2, sort_keys=True) + "\n"
    (bench_report_dir / "BENCH_eval_throughput.json").write_text(payload)
    out_dir = os.environ.get("REPRO_BENCH_OUTPUT_DIR")
    if out_dir:  # CI sets this to collect the artifact across PRs
        (Path(out_dir) / "BENCH_eval_throughput.json").write_text(payload)
    print(f"\npenalty-only vs full-trace: geomean {geomean:.2f}x over {len(ratios)} functions")
    for name, stats in per_function.items():
        print(
            f"  {name:20s} penalty {stats['penalty']:>10,.0f}/s  "
            f"coverage {stats['coverage']:>10,.0f}/s  "
            f"full-trace {stats['full-trace']:>10,.0f}/s  "
            f"({stats['penalty_vs_full_trace']:.2f}x)"
        )
    assert geomean >= TARGET_SPEEDUP, (
        f"expected >= {TARGET_SPEEDUP}x penalty-only vs full-trace, measured {geomean:.2f}x"
    )


def test_memoized_start_reduces_executions():
    """The bit-pattern memo cuts true executions without changing the result."""
    from repro.optimize.basinhopping import basinhopping

    name, case = _workload_cases()[0]
    outcomes = {}
    for memoize in (False, True):
        program, tracker, _ = _prepared(case)
        representing = RepresentingFunction(
            program, tracker, profile=ExecutionProfile.PENALTY_ONLY
        )
        result = basinhopping(
            representing,
            np.full(program.arity, 2.5),
            n_iter=4,
            rng=np.random.default_rng(3),
            memoize=memoize,
            local_options={"max_iterations": 40},
        )
        key = (float(result.fun), tuple(float(v) for v in result.x))
        outcomes[memoize] = (key, representing.evaluations, result.nfev)

    (key_plain, execs_plain, nfev_plain) = outcomes[False]
    (key_memo, execs_memo, nfev_memo) = outcomes[True]
    assert key_memo == key_plain, "memoization changed the search result"
    assert nfev_memo == nfev_plain, "memoization changed the trajectory"
    assert execs_memo < execs_plain, "memo served no repeated evaluations"
    print(
        f"\n{name}: {execs_plain} executions unmemoized -> {execs_memo} memoized "
        f"({100.0 * (1 - execs_memo / execs_plain):.0f}% served from cache)"
    )
