"""Bench for the Sect. 6.2 headline numbers: mean coverage and per-function time.

The paper's headline: CoverMe achieves 90.8% branch coverage in 6.9 seconds
per function on average, versus 38.0% (Rand), 72.9% (AFL) and 42.8% (Austin).
Absolute numbers depend on the profile and hardware; the bench asserts the
ordering and records the measured means for EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.baselines.random_testing import RandomTester
from repro.experiments.runner import compare_tools, coverme_tool, mean
from repro.fdlibm.suite import PAPER_MEANS


@pytest.mark.paper_artifact("headline")
def test_headline_mean_coverage_and_time(benchmark, profile, capsys, run_store):
    # Same CoverMe/Rand configurations as the Table 2 bench, so with the
    # shared session store these jobs are loaded, not re-executed, when the
    # Table 2 or Figure 5 bench ran first.
    factories = {
        "CoverMe": lambda p: coverme_tool(p),
        "Rand": lambda p: RandomTester(seed=p.seed + 1),
    }
    rows = benchmark.pedantic(
        compare_tools, args=(factories, profile), kwargs={"store": run_store},
        iterations=1, rounds=1,
    )
    coverme_mean = mean([row.coverage("CoverMe") for row in rows])
    rand_mean = mean([row.coverage("Rand") for row in rows])
    coverme_time = mean([row.time("CoverMe") for row in rows])

    with capsys.disabled():
        print()
        print(
            f"[Headline] CoverMe {coverme_mean:.1f}% (paper {PAPER_MEANS['coverme_branch']}%), "
            f"Rand {rand_mean:.1f}% (paper {PAPER_MEANS['rand_branch']}%), "
            f"CoverMe mean time {coverme_time:.1f}s/function (paper {PAPER_MEANS['coverme_time']}s)"
        )

    assert coverme_mean > rand_mean
    assert coverme_mean >= 50.0
    # Per-function search time stays in the single-digit-seconds regime the
    # paper reports (bounded by the profile's time budget).
    if profile.coverme_time_budget is not None:
        assert coverme_time <= profile.coverme_time_budget * 2.0
