"""Bench for Table 4: the excluded Fdlibm functions and their reasons."""

from __future__ import annotations

import pytest

from repro.experiments import table4
from repro.fdlibm.excluded import EXCLUDED
from repro.fdlibm.suite import BENCHMARKS


@pytest.mark.paper_artifact("table4")
def test_table4_exclusion_registry(benchmark, capsys):
    groups = benchmark(table4.run)

    with capsys.disabled():
        print()
        print("[Table 4] excluded Fdlibm functions by reason:")
        for reason, items in sorted(groups.items()):
            print(f"  {reason:<26s}: {len(items)}")

    assert sum(len(items) for items in groups.values()) == len(EXCLUDED) == 52
    # The paper's accounting: 92 functions total, 40 kept, 36 no-branch,
    # 11 unsupported inputs, 5 static.
    assert len(BENCHMARKS) == 40
    assert len(groups["no branch"]) == 36
    assert len(groups["unsupported input type"]) == 11
    assert len(groups["static C function"]) == 5
