"""Wall-clock speedup of the parallel search engine on a multi-start workload.

The paper's Algorithm 1 launches ``n_start`` independent basin-hopping runs;
the engine executes them on a process pool.  This bench pits a process pool
against the sequential engine on Fdlibm functions whose branch structure is
rich enough that the whole start budget is actually spent, and asserts both
that the parallel run reproduces the sequential covered/saturated sets
exactly (the determinism contract) and that it is at least 1.5x faster.

Skipped gracefully on machines without enough cores to demonstrate speedup.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.config import CoverMeConfig
from repro.core.coverme import CoverMe
from repro.experiments.runner import instrument_case
from repro.fdlibm.suite import BENCHMARKS

# Above GitHub's 4-vCPU hosted runners: their shared, noisy-neighbor CPUs
# make a hard wall-clock assertion flaky, so CI skips this test and dedicated
# hardware (or REPRO_FORCE_SPEEDUP_BENCH=1) runs it.
MIN_CORES = 6
WORKLOAD_FUNCTIONS = ("ieee754_j0", "ieee754_y0")


def _workload_cases():
    by_name = {case.function.split("(")[0]: case for case in BENCHMARKS}
    return [by_name[name] for name in WORKLOAD_FUNCTIONS if name in by_name]


def _run(n_workers: int, worker_mode: str):
    elapsed = 0.0
    outcomes = []
    for case in _workload_cases():
        config = CoverMeConfig(
            n_start=32,
            n_iter=4,
            seed=11,
            n_workers=n_workers,
            worker_mode=worker_mode,
        )
        program = instrument_case(case)
        started = time.perf_counter()
        result = CoverMe(program, config).run()
        elapsed += time.perf_counter() - started
        outcomes.append((case.function, result.covered, result.saturated))
    return elapsed, outcomes


def test_parallel_engine_speedup():
    cpus = os.cpu_count() or 1
    forced = os.environ.get("REPRO_FORCE_SPEEDUP_BENCH") == "1"
    if cpus < MIN_CORES and not forced:
        pytest.skip(f"parallel speedup needs >= {MIN_CORES} cores, runner has {cpus}")
    assert _workload_cases(), "workload functions missing from the suite"
    # Leave one core for the parent on small machines (e.g. 4-vCPU CI runners)
    # so the measurement is not fighting the scheduler for its own reducer.
    n_workers = min(4, cpus - 1)

    sequential_time, sequential = _run(1, "serial")
    parallel_time, parallel = _run(n_workers, "process")

    # Determinism contract: worker count must not change what gets covered.
    assert parallel == sequential

    speedup = sequential_time / parallel_time
    print(
        f"\nmulti-start workload: sequential {sequential_time:.2f}s, "
        f"parallel(x{n_workers}) {parallel_time:.2f}s, speedup {speedup:.2f}x"
    )
    assert speedup >= 1.5, f"expected >= 1.5x speedup, measured {speedup:.2f}x"
