"""Bench for Table 3: CoverMe versus the Austin-style search-based tester."""

from __future__ import annotations

import pytest

from repro.experiments import table3
from repro.experiments.runner import format_table


@pytest.mark.paper_artifact("table3")
def test_table3_coverme_vs_austin(benchmark, profile, capsys, run_store):
    rows = benchmark.pedantic(
        table3.run, args=(profile,), kwargs={"store": run_store}, iterations=1, rounds=1
    )
    summary = table3.summarize(rows)

    with capsys.disabled():
        print()
        print(
            format_table(
                rows,
                table3.TOOLS,
                paper_column=lambda case: (
                    case.paper.austin_branch if case.paper.austin_branch is not None else float("nan")
                ),
                title=f"[Table 3] profile={profile.name} (paper column = Austin %)",
            )
        )
        print(
            f"[Table 3] means: Austin {summary['austin_branch']:.1f}% in {summary['austin_time']:.1f}s | "
            f"CoverMe {summary['coverme_branch']:.1f}% in {summary['coverme_time']:.1f}s  "
            f"(paper: 42.8% / 6058.4s vs 90.8% / 6.9s)"
        )

    # Shape of the paper's Table 3: CoverMe achieves at least the coverage of
    # Austin-style per-branch search, at no greater cost.  (The paper's +48.9
    # point gap needs the default/full profiles; at smoke budgets the AVM
    # baseline is competitive on the low-arity functions of the smoke slice.)
    assert summary["coverme_branch"] >= summary["austin_branch"] - 10.0
    assert summary["coverme_branch"] >= 50.0
