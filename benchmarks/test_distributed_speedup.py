"""Wall-clock scale-out of the distributed lease fleet on a suite slice.

The distributed tier shards one run's start space into per-batch leases and
speculatively leases future batches under the current saturation snapshot,
so two worker *processes* can pipeline a single seeded run.  This bench
spawns a coordinator daemon plus subprocess workers (the real ``repro serve
--role worker`` entry point, so the measurement includes the full HTTP
lease/heartbeat/result protocol), runs a multi-start slice of the Fdlibm
suite through fleets of 1 and 2 workers, and gates:

* **determinism** -- both fleets produce payloads identical to each other
  (the distributed layer's bit-identity contract, here checked end-to-end
  through subprocess workers); and
* **speed** -- the geometric-mean per-case speedup of 2 workers over 1 is
  at least 1.5x.

Measured numbers land in ``BENCH_distributed.json`` (in
``REPRO_BENCH_OUTPUT_DIR`` or the working directory).  Self-skips below 4
cores -- one core per worker, one for the coordinator's reducer, one for
the OS -- unless ``REPRO_FORCE_DIST_BENCH=1`` forces the run.
"""

from __future__ import annotations

import json
import math
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.distributed import LeaseCoordinator
from repro.experiments.runner import Profile
from repro.fdlibm.suite import BENCHMARKS
from repro.service import CoverageService
from repro.service.client import ServiceClient
from repro.service.http import serve_in_background

MIN_CORES = 4
WORKLOAD_FUNCTIONS = ("ieee754_j0", "ieee754_y0", "ieee754_j1", "ieee754_y1")

#: Enough batches per run (n_start / batch_size) that speculative pipelining
#: has room to overlap worker processes, with no wall-clock budget so the
#: work is identical whatever the fleet size.
BENCH_PROFILE = Profile(
    name="dist-bench",
    n_start=48,
    n_iter=3,
    max_cases=None,
    coverme_time_budget=None,
    baseline_execution_factor=1,
    baseline_min_executions=50,
    seed=11,
)


def _workload_cases():
    by_name = {case.function.split("(")[0]: case for case in BENCHMARKS}
    return [by_name[name] for name in WORKLOAD_FUNCTIONS if name in by_name]


def _spawn_worker(address: str, worker_id: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parent.parent)
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "--role", "worker",
            "--coordinator", address, "--worker-id", worker_id,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _run_fleet(n_workers: int, cases) -> tuple[dict, dict]:
    """One coordinator + ``n_workers`` subprocess workers over the slice.

    Returns ``(per-case wall seconds, per-case normalized payloads)``.
    Worker spin-up (interpreter start + registration) happens before the
    clock starts.  The whole slice is submitted at once -- the scale-out
    claim is fleet throughput, so the runs must be in flight together and
    the workers free to interleave leases from different runs; the wide
    thread/shard count on the daemon keeps fingerprint routing from ever
    queueing two of the slice's jobs behind one dispatcher.
    """
    coord = LeaseCoordinator(speculate=3, poll_interval=0.01)
    service = CoverageService(
        store=None, worker_mode="thread", n_workers=8, distributed=coord
    )
    workers = []
    times: dict[str, float] = {}
    payloads: dict[str, str] = {}
    try:
        with serve_in_background(service, profiles={BENCH_PROFILE.name: BENCH_PROFILE}) as server:
            client = ServiceClient(server.address)
            workers = [
                _spawn_worker(server.address, f"bench-w{i}") for i in range(n_workers)
            ]
            deadline = time.monotonic() + 60.0
            while len(coord.stats()["live_workers"]) < n_workers:
                assert time.monotonic() < deadline, "bench workers never registered"
                time.sleep(0.05)
            started = time.perf_counter()
            fingerprints = {
                case.function: client.submit(case.key, profile=BENCH_PROFILE.name)["job"]
                for case in cases
            }
            for case in cases:
                done = client.wait_for(fingerprints[case.function], timeout=600.0)
                times[case.function] = time.perf_counter() - started
                normalized = json.loads(json.dumps(done["payload"]))
                normalized["summary"]["wall_time"] = 0.0
                payloads[case.function] = json.dumps(normalized, sort_keys=True)
            assert coord.stats()["counters"]["submitted"] > 0, "fleet never executed a lease"
    finally:
        for proc in workers:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=30)
        service.close()
    return times, payloads


@pytest.mark.paper_artifact("distributed scale-out")
def test_distributed_fleet_speedup(bench_report_dir):
    cpus = os.cpu_count() or 1
    forced = os.environ.get("REPRO_FORCE_DIST_BENCH") == "1"
    if cpus < MIN_CORES and not forced:
        pytest.skip(f"distributed speedup needs >= {MIN_CORES} cores, runner has {cpus}")
    cases = _workload_cases()
    assert len(cases) == len(WORKLOAD_FUNCTIONS), "workload functions missing from the suite"

    single_times, single_payloads = _run_fleet(1, cases)
    fleet_times, fleet_payloads = _run_fleet(2, cases)

    # Determinism contract: fleet size must not change the stored record
    # (modulo the one wall-clock summary field, zeroed above).
    assert fleet_payloads == single_payloads

    speedups = {
        name: single_times[name] / fleet_times[name] for name in single_times
    }
    geomean = math.exp(sum(math.log(s) for s in speedups.values()) / len(speedups))

    rows = [
        {
            "function": name,
            "single_worker_s": round(single_times[name], 3),
            "two_worker_s": round(fleet_times[name], 3),
            "speedup": round(speedups[name], 3),
        }
        for name in single_times
    ]
    payload = json.dumps(
        {
            "bench": "distributed_fleet_speedup",
            "profile": BENCH_PROFILE.name,
            "n_start": BENCH_PROFILE.n_start,
            "geomean_speedup": round(geomean, 3),
            "rows": rows,
        },
        indent=2,
    )
    (bench_report_dir / "BENCH_distributed.json").write_text(payload)
    out_dir = os.environ.get("REPRO_BENCH_OUTPUT_DIR")
    if out_dir:
        (Path(out_dir) / "BENCH_distributed.json").write_text(payload)

    lines = ", ".join(f"{r['function']} {r['speedup']:.2f}x" for r in rows)
    print(f"\ndistributed fleet: {lines}; geomean {geomean:.2f}x")
    assert geomean >= 1.5, f"expected >= 1.5x geomean scale-out, measured {geomean:.2f}x"
