"""Shared configuration for the benchmark harness.

Every bench regenerates one artifact of the paper's evaluation section (a
table or a figure).  The default profile is ``smoke`` so the whole harness
finishes in minutes; set ``REPRO_BENCH_PROFILE=default`` (all 40 functions)
or ``full`` (the paper's n_start=500) for a long run.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.runner import PROFILES


def pytest_configure(config):
    config.addinivalue_line("markers", "paper_artifact(name): bench regenerating a paper artifact")


@pytest.fixture(scope="session")
def profile():
    name = os.environ.get("REPRO_BENCH_PROFILE", "smoke")
    return PROFILES[name]


@pytest.fixture(scope="session")
def bench_report_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("paper_artifacts")


@pytest.fixture(scope="session")
def run_store(tmp_path_factory):
    """One shared run store for the whole bench session.

    The table/figure benches declare overlapping (case, tool) jobs (Figure 5
    replots Table 2's data; the headline bench reuses its CoverMe and Rand
    runs), so sharing a store means each pair executes once per session.
    Set ``REPRO_BENCH_STORE=/path`` to persist the store across sessions
    (warm benches then measure render-from-store time).
    """
    from repro.store import RunStore

    root = os.environ.get("REPRO_BENCH_STORE")
    store = RunStore(root if root else tmp_path_factory.mktemp("runstore") / "store")
    yield store
    store.close()
