"""Bench for Figure 5: the per-benchmark branch-coverage series (bar chart data)."""

from __future__ import annotations

import pytest

from repro.experiments import figure5, table2


@pytest.mark.paper_artifact("figure5")
def test_figure5_series(benchmark, profile, capsys, run_store):
    # Shares the session store with the Table 2 bench: whichever runs first
    # executes the (case, tool) jobs, the other renders from the records.
    rows = benchmark.pedantic(
        table2.run, args=(profile,), kwargs={"store": run_store}, iterations=1, rounds=1
    )
    series = figure5.series_from_rows(rows)

    with capsys.disabled():
        print()
        print(figure5.render_ascii(series))

    tools = {s.tool for s in series}
    assert tools == {"Rand", "AFL", "CoverMe"}
    labels = series[0].labels
    assert all(s.labels == labels for s in series)
    coverme = next(s for s in series if s.tool == "CoverMe")
    rand = next(s for s in series if s.tool == "Rand")
    assert all(0.0 <= v <= 100.0 for v in coverme.values)
    # The CoverMe bars dominate the Rand bars overall (the figure's visual message).
    assert sum(coverme.values) > sum(rand.values)
