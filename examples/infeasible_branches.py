"""The incompleteness cases of Sect. D: ``k_cos.c`` and ``e_fmod.c``.

Run with::

    python examples/infeasible_branches.py

``kernel_cos`` contains a branch (``((int) x) == 0`` being false) that no
input can reach because it is nested under ``|x| < 2**-27``; CoverMe's
infeasible-branch heuristic detects it and stops spending time there, so the
87.5% coverage it reports is in fact optimal.  ``ieee754_fmod`` has branches
that require subnormal inputs, which the optimization backend practically
never produces -- the second source of incompleteness discussed in the paper.
"""

from __future__ import annotations

from repro import CoverMe, CoverMeConfig
from repro.fdlibm.e_fmod import ieee754_fmod
from repro.fdlibm.k_cos import kernel_cos


def main() -> None:
    config = CoverMeConfig(n_start=120, n_iter=5, seed=5)

    print("kernel_cos (k_cos.c): one genuinely infeasible branch")
    result = CoverMe(kernel_cos, config).run()
    print(f"  branches            : {result.n_branches}")
    print(f"  branch coverage     : {result.branch_coverage_percent:.1f}%  (paper: 87.5%, optimal)")
    print(f"  deemed infeasible   : {sorted(result.infeasible)}")

    print("\nieee754_fmod (e_fmod.c): subnormal-input branches are out of reach")
    config_fmod = CoverMeConfig(n_start=60, n_iter=5, seed=5, time_budget=10.0)
    result = CoverMe(ieee754_fmod, config_fmod).run()
    print(f"  branches            : {result.n_branches}")
    print(f"  branch coverage     : {result.branch_coverage_percent:.1f}%  (paper: 70.0%)")
    print(f"  deemed infeasible   : {len(result.infeasible)} branches")


if __name__ == "__main__":
    main()
