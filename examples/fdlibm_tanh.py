"""The paper's running example: covering Fdlibm's ``s_tanh.c`` (Fig. 1).

Run with::

    python examples/fdlibm_tanh.py

``tanh`` reads the high word of its input through bit twiddling and branches
on the resulting integer patterns -- the kind of code symbolic execution
struggles with.  CoverMe covers it by minimizing the representing function.
The script also runs the Rand baseline with ten times the budget to show the
gap the paper reports.
"""

from __future__ import annotations

from repro import CoverMe, CoverMeConfig
from repro.baselines.harness import Budget, run_tool
from repro.baselines.random_testing import RandomTester
from repro.fdlibm.s_tanh import fdlibm_tanh
from repro.instrument.program import instrument


def main() -> None:
    config = CoverMeConfig(n_start=150, n_iter=5, seed=11)
    result = CoverMe(fdlibm_tanh, config).run()
    print("CoverMe on s_tanh.c (the paper's Fig. 1 example)")
    print(f"  branches          : {result.n_branches}")
    print(f"  branch coverage   : {result.branch_coverage_percent:.1f}%  (paper: 100.0%)")
    print(f"  wall time         : {result.wall_time:.2f}s  (paper: 0.7s)")
    print("  test inputs       :")
    for inputs in result.inputs:
        print(f"    tanh({inputs[0]!r})")

    # Rand with ten times the number of executions CoverMe used.
    program = instrument(fdlibm_tanh)
    rand = RandomTester(seed=1)
    summary = run_tool(rand, program, Budget(max_executions=10 * result.evaluations))
    print("\nRand with a 10x execution budget")
    print(f"  branch coverage   : {summary.branch_coverage_percent:.1f}%  (paper: 33.3%)")
    print(f"  executions        : {summary.executions}")


if __name__ == "__main__":
    main()
