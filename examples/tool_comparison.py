"""Compare CoverMe, Rand, AFL and Austin on a slice of the Fdlibm suite.

Run with::

    python examples/tool_comparison.py [n_cases]

This is a miniature of the paper's Tables 2 and 3: every tool runs on the
first ``n_cases`` benchmark functions (default 5) and the per-function branch
coverage is printed side by side with the paper's numbers.
"""

from __future__ import annotations

import sys

from repro.baselines.afl import AFLFuzzer
from repro.baselines.austin import AustinTester
from repro.baselines.random_testing import RandomTester
from repro.experiments.runner import PROFILES, compare_tools, coverme_tool
from repro.fdlibm.suite import BENCHMARKS


def main() -> None:
    n_cases = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    profile = PROFILES["smoke"]
    cases = BENCHMARKS[:n_cases]
    factories = {
        "CoverMe": lambda p: coverme_tool(p),
        "Rand": lambda p: RandomTester(seed=1),
        "AFL": lambda p: AFLFuzzer(seed=2),
        "Austin": lambda p: AustinTester(seed=3),
    }
    rows = compare_tools(factories, profile, cases=cases)
    tools = ("Rand", "AFL", "Austin", "CoverMe")
    print(f"{'Function':<34s}{'#Br':>5s}" + "".join(f"{t:>10s}" for t in tools) + f"{'Paper':>10s}")
    for row in rows:
        line = f"{row.case.function:<34s}{row.n_branches:>5d}"
        for tool in tools:
            line += f"{row.coverage(tool):>10.1f}"
        line += f"{row.case.paper.coverme_branch:>10.1f}"
        print(line)


if __name__ == "__main__":
    main()
