"""Quickstart: achieve full branch coverage of a small floating-point function.

Run with::

    python examples/quickstart.py

The example defines a function with nested floating-point conditionals
(including an equality constraint that defeats random testing), runs CoverMe
on it, and prints the generated test inputs together with the branches each
input covers.
"""

from __future__ import annotations

from repro import CoverMe, CoverMeConfig
from repro.coverage.branch import BranchCoverage
from repro.instrument.program import instrument


def classify_point(x: float, y: float) -> str:
    """A toy geometric classifier with branches at several scales."""
    radius_squared = x * x + y * y
    if radius_squared == 4.0:  # exactly on the circle of radius 2
        return "on-circle"
    if radius_squared < 4.0:
        if x > 1.9:
            return "inside-east"
        return "inside"
    if y >= 1.0e8:
        return "far-north"
    return "outside"


def main() -> None:
    config = CoverMeConfig(n_start=80, n_iter=5, seed=7)
    coverme = CoverMe(classify_point, config)
    result = coverme.run()

    print(f"program            : {result.program}")
    print(f"branches           : {result.n_branches}")
    print(f"branch coverage    : {result.branch_coverage_percent:.1f}%")
    print(f"minimizations used : {result.n_starts_used}")
    print(f"FOO_R evaluations  : {result.evaluations}")
    print(f"wall time          : {result.wall_time:.2f}s")
    print()

    # Replay each generated input to show which branches it covers.
    program = instrument(classify_point)
    print("generated test inputs:")
    for inputs in result.inputs:
        tracker = BranchCoverage(program)
        tracker.run(inputs)
        branches = ", ".join(repr(b) for b in sorted(tracker.covered))
        label = classify_point(*inputs)
        print(f"  x={inputs[0]:>22.6g}  y={inputs[1]:>22.6g}  -> {label:<12s} covers {branches}")


if __name__ == "__main__":
    main()
