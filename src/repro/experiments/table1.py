"""Table 1: the saturation scenario on the two-conditional program ``FOO``.

The paper walks through four rounds of minimizing the representing function
of the program::

    void FOO(double x) {
        l0: if (x <= 1) { x += 1; }
        double y = square(x);
        l1: if (y == 4) { ... }
    }

This module reproduces the walk-through programmatically: it runs CoverMe on
the same program and reports, per accepted minimization, which branches became
saturated -- the dynamic counterpart of the table's "Saturate" column.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import CoverMeConfig
from repro.core.coverme import CoverMe
from repro.experiments.pipeline import ExperimentSpec, register_spec
from repro.core.representing import RepresentingFunction
from repro.core.saturation import SaturationTracker
from repro.instrument.program import instrument


def square(value: float) -> float:
    """The helper the paper's example calls (not instrumented)."""
    return value * value


def paper_example_foo(x: float) -> int:
    """The program of Fig. 3 / Table 1."""
    if x <= 1.0:
        x = x + 1.0
    y = square(x)
    if y == 4.0:
        return 1
    return 0


@dataclass
class ScenarioStep:
    """One row of Table 1: the saturation state after a minimization."""

    round: int
    minimum_point: float
    minimum_value: float
    saturated: tuple[str, ...]
    inputs_so_far: tuple[float, ...]


def representing_function_values(xs, tracker_state=None):
    """Evaluate ``FOO_R`` at the given points for a fresh (empty) saturation set.

    Used by the bench to check the table's first row: before anything is
    saturated, ``FOO_R`` is the constant zero function.
    """
    program = instrument(paper_example_foo)
    tracker = SaturationTracker(program)
    foo_r = RepresentingFunction(program, tracker)
    return [foo_r([x]) for x in xs]


def run(n_start: int = 40, seed: int = 0) -> list[ScenarioStep]:
    """Run CoverMe on the example program and report the saturation scenario."""
    coverme = CoverMe(paper_example_foo, CoverMeConfig(n_start=n_start, n_iter=5, seed=seed))
    result = coverme.run()
    steps: list[ScenarioStep] = []
    saturated_names: list[str] = []
    inputs: list[float] = []
    for index, trace in enumerate(result.traces, start=1):
        if trace.accepted:
            inputs.append(trace.minimum_point[0])
            saturated_names = sorted(repr(b) for b in coverme.tracker.saturated)
        steps.append(
            ScenarioStep(
                round=index,
                minimum_point=trace.minimum_point[0],
                minimum_value=trace.minimum_value,
                saturated=tuple(saturated_names),
                inputs_so_far=tuple(inputs),
            )
        )
    return steps


def render_text(profile=None) -> str:
    """Render the Table 1 artifact (the saturation scenario walkthrough)."""
    n_start = profile.n_start if profile is not None else 40
    seed = profile.seed if profile is not None else 0
    steps = run(n_start=n_start, seed=seed)
    lines = [
        "Table 1 reproduction: saturation scenario for the example program FOO",
        f"{'#':>3s} {'x*':>12s} {'FOO_R(x*)':>12s}  saturated branches",
    ]
    for step in steps:
        lines.append(
            f"{step.round:>3d} {step.minimum_point:>12.4g} {step.minimum_value:>12.4g}  "
            f"{', '.join(step.saturated) or '(none)'}"
        )
    return "\n".join(lines)


SPEC = register_spec(
    ExperimentSpec(
        name="table1",
        title="Table 1: saturation scenario walkthrough",
        script=render_text,
    )
)


def main(argv=None) -> int:
    """Deprecated entry point; delegates to ``python -m repro run table1``."""
    from repro.cli import deprecated_main

    return deprecated_main("table1", argv)


if __name__ == "__main__":
    raise SystemExit(main())
