"""Table 3: CoverMe versus Austin (branch coverage and wall time)."""

from __future__ import annotations

import argparse

from repro.baselines.austin import AustinTester
from repro.experiments.runner import (
    PROFILES,
    ComparisonRow,
    Profile,
    compare_tools,
    coverme_tool,
    format_table,
    mean,
)

TOOLS = ("Austin", "CoverMe")


def tool_factories(seed: int = 0):
    return {
        "CoverMe": lambda profile: coverme_tool(profile),
        "Austin": lambda profile: AustinTester(seed=profile.seed + 3),
    }


def run(profile: Profile, cases=None) -> list[ComparisonRow]:
    return compare_tools(tool_factories(profile.seed), profile, cases=cases)


def summarize(rows: list[ComparisonRow]) -> dict[str, float]:
    """Mean coverage, mean times, and the speed-up column of Table 3."""
    summary = {
        "austin_branch": mean([row.coverage("Austin") for row in rows]),
        "coverme_branch": mean([row.coverage("CoverMe") for row in rows]),
        "austin_time": mean([row.time("Austin") for row in rows]),
        "coverme_time": mean([row.time("CoverMe") for row in rows]),
    }
    summary["coverage_improvement"] = summary["coverme_branch"] - summary["austin_branch"]
    if summary["coverme_time"] > 0:
        summary["speedup"] = summary["austin_time"] / summary["coverme_time"]
    else:
        summary["speedup"] = float("inf")
    return summary


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", choices=sorted(PROFILES), default="smoke")
    args = parser.parse_args()
    profile = PROFILES[args.profile]
    rows = run(profile)
    print(
        format_table(
            rows,
            TOOLS,
            paper_column=lambda case: (
                case.paper.austin_branch if case.paper.austin_branch is not None else float("nan")
            ),
            title=f"Table 3 reproduction (profile={profile.name}); paper column = Austin branch %",
        )
    )
    summary = summarize(rows)
    print(
        f"\nMeans: Austin {summary['austin_branch']:.1f}% in {summary['austin_time']:.1f}s, "
        f"CoverMe {summary['coverme_branch']:.1f}% in {summary['coverme_time']:.1f}s "
        f"(paper: 42.8% / 6058.4s vs 90.8% / 6.9s)"
    )


if __name__ == "__main__":
    main()
