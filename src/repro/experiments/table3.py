"""Table 3: CoverMe versus Austin (branch coverage and wall time)."""

from __future__ import annotations

from typing import Optional

from repro.experiments.pipeline import (
    TOOL_FACTORIES,
    ExperimentSpec,
    register_spec,
)
from repro.experiments.runner import (
    ComparisonRow,
    Profile,
    compare_tools,
    format_table,
    mean,
)

TOOLS = ("Austin", "CoverMe")


def tool_factories(seed: int = 0):
    """The Table 3 tool set; ``seed`` is kept for backwards compatibility."""
    return {name: TOOL_FACTORIES[name] for name in ("CoverMe", "Austin")}


def run(profile: Profile, cases=None, store=None, resume: bool = True) -> list[ComparisonRow]:
    return compare_tools(
        tool_factories(profile.seed), profile, cases=cases, store=store, resume=resume
    )


def summarize(rows: list[ComparisonRow]) -> dict[str, float]:
    """Mean coverage, mean times, and the speed-up column of Table 3."""
    summary = {
        "austin_branch": mean([row.coverage("Austin") for row in rows]),
        "coverme_branch": mean([row.coverage("CoverMe") for row in rows]),
        "austin_time": mean([row.time("Austin") for row in rows]),
        "coverme_time": mean([row.time("CoverMe") for row in rows]),
    }
    summary["coverage_improvement"] = summary["coverme_branch"] - summary["austin_branch"]
    if summary["coverme_time"] > 0:
        summary["speedup"] = summary["austin_time"] / summary["coverme_time"]
    else:
        summary["speedup"] = float("inf")
    return summary


def render(rows: list[ComparisonRow], profile: Profile) -> str:
    summary = summarize(rows)
    table = format_table(
        rows,
        TOOLS,
        paper_column=lambda case: (
            case.paper.austin_branch if case.paper.austin_branch is not None else float("nan")
        ),
        title=f"Table 3 reproduction (profile={profile.name}); paper column = Austin branch %",
    )
    return (
        f"{table}\n\n"
        f"Means: Austin {summary['austin_branch']:.1f}% in {summary['austin_time']:.1f}s, "
        f"CoverMe {summary['coverme_branch']:.1f}% in {summary['coverme_time']:.1f}s "
        f"(paper: 42.8% / 6058.4s vs 90.8% / 6.9s)"
    )


SPEC = register_spec(
    ExperimentSpec(
        name="table3",
        title="Table 3: CoverMe vs Austin",
        tools=TOOLS,
        render=render,
    )
)


def main(argv: Optional[list[str]] = None) -> int:
    """Deprecated entry point; delegates to ``python -m repro run table3``."""
    from repro.cli import deprecated_main

    return deprecated_main("table3", argv)


if __name__ == "__main__":
    raise SystemExit(main())
