"""Experiment harnesses regenerating the paper's tables and figures.

Every artifact of the evaluation section has a module here declaring an
:class:`~repro.experiments.pipeline.ExperimentSpec` plus a renderer, and a
bench in ``benchmarks/``:

* Table 1  -- :mod:`repro.experiments.table1` (saturation scenario walkthrough)
* Figure 2 -- :mod:`repro.experiments.figure2` (local vs global optimization)
* Table 2 / Figure 5 -- :mod:`repro.experiments.table2`,
  :mod:`repro.experiments.figure5` (CoverMe vs Rand vs AFL branch coverage)
* Table 3  -- :mod:`repro.experiments.table3` (CoverMe vs Austin)
* Table 4  -- :mod:`repro.experiments.table4` (excluded functions)
* Table 5  -- :mod:`repro.experiments.table5` (line coverage)

The layer is split in three:

* :mod:`repro.experiments.runner` -- profiles, tool adapters, formatting;
* :mod:`repro.experiments.pipeline` -- planning (specs expand into a
  deduplicated (case, tool) job plan) and resumable execution against a
  content-addressed :class:`~repro.store.RunStore`;
* the per-artifact modules -- specs plus renderers (thin views over rows).

The unified entry point is the ``repro`` CLI: ``python -m repro run table2
--profile smoke --store .repro-store --resume`` (see :mod:`repro.cli`).
Each module still exposes ``run(profile)`` returning structured rows, and
its legacy ``python -m repro.experiments.tableN`` entry point delegates to
the CLI with a deprecation warning.
"""

from repro.experiments.runner import (
    ComparisonRow,
    Profile,
    PROFILES,
    compare_tools,
    coverme_tool,
    format_table,
)

__all__ = [
    "ComparisonRow",
    "PROFILES",
    "Profile",
    "compare_tools",
    "coverme_tool",
    "format_table",
]
