"""Experiment harnesses regenerating the paper's tables and figures.

Every artifact of the evaluation section has a module here and a bench in
``benchmarks/``:

* Table 1  -- :mod:`repro.experiments.table1` (saturation scenario walkthrough)
* Figure 2 -- :mod:`repro.experiments.figure2` (local vs global optimization)
* Table 2 / Figure 5 -- :mod:`repro.experiments.table2`,
  :mod:`repro.experiments.figure5` (CoverMe vs Rand vs AFL branch coverage)
* Table 3  -- :mod:`repro.experiments.table3` (CoverMe vs Austin)
* Table 4  -- :mod:`repro.experiments.table4` (excluded functions)
* Table 5  -- :mod:`repro.experiments.table5` (line coverage)

Each module exposes a ``run(profile)`` function returning structured rows plus
a ``main()`` entry point that prints the table, so e.g.
``python -m repro.experiments.table2 --profile smoke`` regenerates the
artifact from the command line.
"""

from repro.experiments.runner import (
    ComparisonRow,
    Profile,
    PROFILES,
    compare_tools,
    coverme_tool,
    format_table,
)

__all__ = [
    "ComparisonRow",
    "PROFILES",
    "Profile",
    "compare_tools",
    "coverme_tool",
    "format_table",
]
