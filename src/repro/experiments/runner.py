"""Shared experiment infrastructure: profiles, tool adapters, table formatting.

This module is the *configuration and rendering* layer of the experiments:
profiles, the CoverMe tool adapter, row/table formatting.  Planning lives
in :mod:`repro.experiments.pipeline` and execution in
:mod:`repro.service`; the legacy :func:`run_case`/:func:`compare_tools`
entry points remain as thin wrappers that submit through the coverage
service (against an ephemeral store unless one is passed), so every
experiment -- old-style, CLI-driven or daemon-served -- goes through the
same resumable execution path.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.baselines.harness import Budget
from repro.core.config import CoverMeConfig
from repro.core.coverme import CoverMe
from repro.core.report import ToolRunSummary
from repro.fdlibm.suite import BenchmarkCase
from repro.instrument.program import InstrumentedProgram, instrument
from repro.instrument.signature import ProgramSignature


@dataclass(frozen=True)
class Profile:
    """Size of an experiment run.

    ``smoke`` keeps the whole harness in CI-friendly time; ``default`` covers
    every benchmark with moderate budgets; ``full`` restores the paper's
    ``n_start = 500`` and the 10x budget for the baseline tools.
    """

    name: str
    n_start: int
    n_iter: int
    max_cases: Optional[int]
    coverme_time_budget: Optional[float]
    baseline_execution_factor: int
    baseline_min_executions: int
    seed: int = 0
    n_workers: int = 1
    start_strategy: str = "random-normal"
    eval_profile: str = "penalty"
    batch_starts: bool = True
    proposal_population: int = 1
    native_threads: int = 1

    def coverme_config(self) -> CoverMeConfig:
        return CoverMeConfig(
            n_start=self.n_start,
            n_iter=self.n_iter,
            local_minimizer="powell",
            seed=self.seed,
            time_budget=self.coverme_time_budget,
            n_workers=self.n_workers,
            start_strategy=self.start_strategy,
            eval_profile=self.eval_profile,
            batch_starts=self.batch_starts,
            proposal_population=self.proposal_population,
            native_threads=self.native_threads,
        )


PROFILES: dict[str, Profile] = {
    "smoke": Profile(
        name="smoke",
        n_start=40,
        n_iter=5,
        max_cases=5,
        coverme_time_budget=4.0,
        baseline_execution_factor=3,
        baseline_min_executions=1500,
    ),
    "default": Profile(
        name="default",
        n_start=40,
        n_iter=5,
        max_cases=None,
        coverme_time_budget=6.0,
        baseline_execution_factor=10,
        baseline_min_executions=5000,
    ),
    "full": Profile(
        name="full",
        n_start=500,
        n_iter=5,
        max_cases=None,
        coverme_time_budget=None,
        baseline_execution_factor=10,
        baseline_min_executions=20000,
    ),
}


@dataclass
class ComparisonRow:
    """One benchmark function's results across all compared tools."""

    case: BenchmarkCase
    n_branches: int
    results: dict[str, ToolRunSummary] = field(default_factory=dict)

    def coverage(self, tool: str) -> float:
        return self.results[tool].branch_coverage_percent if tool in self.results else float("nan")

    def time(self, tool: str) -> float:
        return self.results[tool].wall_time if tool in self.results else float("nan")


@dataclass
class CoverMeTool:
    """Adapter presenting CoverMe through the common tool interface."""

    config: CoverMeConfig
    name: str = "CoverMe"
    last_evaluations: int = 0

    def generate(self, program: InstrumentedProgram, budget: Budget):
        config = self.config
        if budget.max_seconds is not None:
            config = dataclasses.replace(config, time_budget=budget.max_seconds)
        result = CoverMe(program, config).run()
        self.last_evaluations = result.evaluations
        return result.inputs


def coverme_tool(profile: Profile) -> CoverMeTool:
    return CoverMeTool(config=profile.coverme_config())


def instrument_case(case: BenchmarkCase) -> InstrumentedProgram:
    """Instrument a benchmark case with a signature describing its input box.

    The case's ``extras`` (helper callees such as ``ieee754_sqrt`` under
    ``pow``) are instrumented into the same program with offset labels, so
    branch totals follow the paper's Gcov accounting of Table 2.  The
    sampling box comes from the case's declared input domain
    (:meth:`BenchmarkCase.domain`), which defaults to the historical
    ``+-1e6`` signature box.
    """
    low, high = case.domain()
    signature = ProgramSignature(name=case.function, arity=case.arity, low=low, high=high)
    return instrument(case.entry, extra_functions=case.extras, signature=signature)


def run_case(
    case: BenchmarkCase,
    tool_factories: dict[str, Callable[[Profile], object]],
    profile: Profile,
    measure_lines: bool = False,
    store=None,
    resume: bool = True,
) -> ComparisonRow:
    """Run every tool on one benchmark case (one pipeline job per tool).

    ``CoverMe`` (when present) runs first so the baselines can be given a
    budget proportional to its effort, mirroring the paper's "ten times the
    CoverMe time" rule with an execution-count analogue.  With a persistent
    ``store``, completed jobs are loaded instead of re-executed.
    """
    from repro.experiments.pipeline import execute_case, tool_items_for

    tool_items = tool_items_for(tool_factories, measure_lines)
    outcome = execute_case((case, tool_items), profile, store=store, resume=resume)
    return outcome.row


def compare_tools(
    tool_factories: dict[str, Callable[[Profile], object]],
    profile: Profile,
    cases: Optional[Iterable[BenchmarkCase]] = None,
    measure_lines: bool = False,
    n_workers: int = 1,
    worker_mode: str = "thread",
    store=None,
    resume: bool = True,
) -> list[ComparisonRow]:
    """Run every tool on every benchmark case and collect per-row results.

    Jobs go through one shared :class:`~repro.service.CoverageService`:
    every case's CoverMe job is submitted up front, baselines follow as
    their budgets resolve, and rows come back in case order regardless of
    worker count.  The default ``"thread"`` mode keeps every factory usable
    (including closures); ``worker_mode="process"`` executes in a
    persistent worker-process pool -- including into persistent stores,
    since workers return payloads and the coordinating process writes them
    -- and requires picklable ``tool_factories`` (module-level functions,
    not lambdas).

    Passing a :class:`~repro.store.RunStore` makes the run resumable:
    completed (case, tool) jobs are loaded from the store and new ones are
    checkpointed as they finish.
    """
    from repro.experiments.pipeline import (
        _execute_cases,
        select_cases,
        service_worker_mode,
        tool_items_for,
    )
    from repro.service import CoverageService

    selected = select_cases(profile, cases)
    tool_items = tool_items_for(tool_factories, measure_lines)
    service = CoverageService(
        store=store,
        worker_mode=service_worker_mode(worker_mode, n_workers),
        n_workers=n_workers,
        resume=resume,
    )
    try:
        outcomes = _execute_cases(
            selected, {case.key: tool_items for case in selected}, profile, service, resume
        )
    finally:
        service.close(close_store=False)
    return [outcome.row for outcome in outcomes]


def mean(values: Sequence[float]) -> float:
    values = [v for v in values if v == v]  # drop NaN
    return sum(values) / len(values) if values else float("nan")


def format_table(
    rows: list[ComparisonRow],
    tools: Sequence[str],
    paper_column: Optional[Callable[[BenchmarkCase], float]] = None,
    title: str = "",
) -> str:
    """Render rows as a fixed-width text table (one line per benchmark)."""
    lines = []
    if title:
        lines.append(title)
    header = f"{'File':<16s}{'Function':<34s}{'#Br':>5s}" + "".join(
        f"{tool + ' %':>12s}" for tool in tools
    )
    if paper_column is not None:
        header += f"{'Paper %':>12s}"
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        line = f"{row.case.file:<16s}{row.case.function:<34s}{row.n_branches:>5d}"
        for tool in tools:
            line += f"{row.coverage(tool):>12.1f}"
        if paper_column is not None:
            line += f"{paper_column(row.case):>12.1f}"
        lines.append(line)
    lines.append("-" * len(header))
    means = f"{'MEAN':<16s}{'':<34s}{'':>5s}"
    for tool in tools:
        means += f"{mean([row.coverage(tool) for row in rows]):>12.1f}"
    if paper_column is not None:
        means += f"{mean([paper_column(row.case) for row in rows]):>12.1f}"
    lines.append(means)
    return "\n".join(lines)
