"""Figure 5: per-benchmark branch-coverage series (the bar chart of the paper).

Figure 5 plots exactly the data of Table 2 -- branch coverage per benchmark
for Rand, AFL and CoverMe.  This module renders the same series as aligned
text bars so the figure can be regenerated without a plotting dependency, and
returns the raw series for programmatic use.  Because the spec declares the
same (case, tool) jobs as Table 2, a combined ``repro run table2 figure5``
executes each pair once and renders both artifacts from the shared records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.experiments.pipeline import ExperimentSpec, register_spec
from repro.experiments.runner import ComparisonRow, Profile
from repro.experiments.table2 import TOOLS, run as run_table2


@dataclass
class Figure5Series:
    """One tool's coverage series over the benchmark suite (one bar group)."""

    tool: str
    labels: tuple[str, ...]
    values: tuple[float, ...]


def run(profile: Profile, cases=None, store=None, resume: bool = True) -> list[Figure5Series]:
    rows = run_table2(profile, cases=cases, store=store, resume=resume)
    return series_from_rows(rows)


def series_from_rows(rows: list[ComparisonRow]) -> list[Figure5Series]:
    labels = tuple(row.case.function for row in rows)
    return [
        Figure5Series(
            tool=tool,
            labels=labels,
            values=tuple(row.coverage(tool) for row in rows),
        )
        for tool in TOOLS
    ]


def render_ascii(series: list[Figure5Series], width: int = 50) -> str:
    """Render the bar chart as text (one block per benchmark, one bar per tool)."""
    lines = ["Figure 5 reproduction: branch coverage per benchmark (x-axis of the paper)"]
    labels = series[0].labels if series else ()
    for index, label in enumerate(labels):
        lines.append(label)
        for item in series:
            value = item.values[index]
            filled = int(round(width * value / 100.0)) if value == value else 0
            lines.append(f"  {item.tool:>8s} |{'#' * filled:<{width}s}| {value:5.1f}%")
    return "\n".join(lines)


def render(rows: list[ComparisonRow], profile: Profile) -> str:
    return render_ascii(series_from_rows(rows))


SPEC = register_spec(
    ExperimentSpec(
        name="figure5",
        title="Figure 5: per-benchmark branch-coverage bars",
        tools=TOOLS,
        render=render,
    )
)


def main(argv: Optional[list[str]] = None) -> int:
    """Deprecated entry point; delegates to ``python -m repro run figure5``."""
    from repro.cli import deprecated_main

    return deprecated_main("figure5", argv)


if __name__ == "__main__":
    raise SystemExit(main())
