"""Declarative, resumable orchestration of the paper's experiments.

This module is the planning and execution layer between the per-table
experiment modules and the tool/search machinery:

* an :class:`ExperimentSpec` declares what one table/figure needs -- which
  tools run over the benchmark suite (and whether line coverage is
  measured), or a self-contained script for the non-suite artifacts
  (Table 1, Figure 2, Table 4);
* :func:`plan_jobs` expands a set of specs into a flat plan of (case, tool)
  jobs, **deduplicated across specs** -- Table 2, Table 5 and Figure 5 all
  need the same CoverMe/Rand/AFL runs, so one ``repro run table2 table5
  figure5`` invocation executes each shared pair exactly once;
* :func:`execute_plan` dispatches the plan through
  :func:`repro.engine.pool.parallel_map`, loading completed jobs from a
  :class:`~repro.store.RunStore` and checkpointing each newly finished job
  immediately, so an interrupted run resumes by skipping completed work;
* renderers (defined by the table modules) format the resulting
  :class:`~repro.experiments.runner.ComparisonRow`\\ s as thin views over
  the store.

Job ordering inside a case is semantic, not cosmetic: CoverMe runs first so
the baselines' budgets can be derived from its measured effort (the paper's
"ten times the CoverMe time" rule).  The derived budget is fingerprinted
into the baseline job's key, so a baseline record is reused only when the
CoverMe effort it was calibrated against is unchanged.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.baselines.afl import AFLFuzzer
from repro.baselines.austin import AustinTester
from repro.baselines.harness import Budget, run_tool
from repro.baselines.random_testing import RandomTester
from repro.engine.pool import parallel_map
from repro.experiments.runner import (
    ComparisonRow,
    CoverMeTool,
    Profile,
    coverme_tool,
    instrument_case,
)
from repro.fdlibm.suite import BENCHMARKS, BenchmarkCase
from repro.store import JobKey, RunStore, canonical_json, fingerprint_of, summary_from_dict, summary_to_dict

# ---------------------------------------------------------------------------
# Tool factories (module-level so process workers can pickle them)
# ---------------------------------------------------------------------------


def make_coverme(profile: Profile) -> CoverMeTool:
    return coverme_tool(profile)


def make_rand(profile: Profile) -> RandomTester:
    return RandomTester(seed=profile.seed + 1)


def make_afl(profile: Profile) -> AFLFuzzer:
    return AFLFuzzer(seed=profile.seed + 2)


def make_austin(profile: Profile) -> AustinTester:
    return AustinTester(seed=profile.seed + 3)


#: Named factories used by the specs (and reusable by custom callers).
TOOL_FACTORIES: dict[str, Callable[[Profile], object]] = {
    "CoverMe": make_coverme,
    "Rand": make_rand,
    "AFL": make_afl,
    "Austin": make_austin,
}


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------

#: Profile fields that provably do not change per-job results: ``name`` is a
#: label (two profiles with the same values are the same work), ``max_cases``
#: selects *which* jobs run, and the engine guarantees seeded results are
#: identical for every worker count.
_PROFILE_FP_EXCLUDE = frozenset({"name", "max_cases", "n_workers", "eval_profile", "batch_starts"})

#: Tool state excluded from fingerprints: mutable run-to-run scratch, and
#: CoverMe knobs the engine guarantees are result-neutral (every execution
#: profile computes bit-identical representing-function values, so
#: ``eval_profile`` -- like ``n_workers`` -- cannot change stored results).
_TOOL_FP_EXCLUDE = frozenset(
    {"last_evaluations", "n_workers", "worker_mode", "verbose", "batch_starts",
     "eval_profile"}
)


def profile_fingerprint(profile: Profile) -> str:
    payload = {
        k: v for k, v in dataclasses.asdict(profile).items() if k not in _PROFILE_FP_EXCLUDE
    }
    return fingerprint_of(payload)[:16]


def _strip_excluded(obj):
    if isinstance(obj, dict):
        return {k: _strip_excluded(v) for k, v in obj.items() if k not in _TOOL_FP_EXCLUDE}
    return obj


def tool_fingerprint(tool) -> str:
    """Content fingerprint of a tool's configuration (not its identity)."""
    if dataclasses.is_dataclass(tool):
        state = _strip_excluded(dataclasses.asdict(tool))
    elif type(tool).__repr__ is not object.__repr__:
        # Hand-rolled tools with a real repr: their repr is their config.
        state = {"repr": repr(tool)}
    else:
        # The default object repr embeds a memory address: fingerprinting it
        # would give every run a fresh key and silently disable resume.
        raise ValueError(
            f"cannot fingerprint tool {type(tool).__name__}: make it a dataclass "
            "or give it a __repr__ that captures its configuration"
        )
    state["__type__"] = type(tool).__name__
    return fingerprint_of(state)[:16]


def source_hash(program) -> str:
    """SHA-256 of the instrumented source (entry + extras, post-AST-pass)."""
    return hashlib.sha256(program.source.encode("utf-8")).hexdigest()[:16]


@functools.lru_cache(maxsize=None)
def _instrument_for_lookup(case: BenchmarkCase):
    """Instrument a case purely for store lookups (render mode).

    Nothing executes these programs -- only ``n_branches`` and the source
    hash are read -- so sharing one per case across the per-spec render
    loop is safe and avoids re-running the AST pass once per spec.
    """
    return instrument_case(case)


def _domain_tag(case: BenchmarkCase) -> str:
    low, high = case.domain()
    return canonical_json([list(low), list(high)])


def coverme_first(tool_names: Iterable[str]) -> list[str]:
    """Order tool names with ``CoverMe`` first.

    This ordering is semantic: the baselines' budgets derive from CoverMe's
    measured effort (the paper's "ten times the CoverMe time" rule), so
    within a case CoverMe must run before them.  Every planner --
    :func:`plan_jobs`, :func:`repro.experiments.runner.run_case`,
    :func:`repro.experiments.runner.compare_tools` -- goes through this one
    helper so the rule cannot drift between entry points.
    """
    return sorted(tool_names, key=lambda name: name != "CoverMe")


def tool_items_for(
    tool_factories: dict[str, Callable[[Profile], object]], measure_lines: bool
) -> list[tuple[str, Callable[[Profile], object], bool]]:
    """The ``(name, factory, measure_lines)`` job list for one case, in
    :func:`coverme_first` order (the shape :func:`execute_case` consumes)."""
    return [(name, tool_factories[name], measure_lines) for name in coverme_first(tool_factories)]


# ---------------------------------------------------------------------------
# Specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one table/figure of the evaluation.

    Suite specs (``tools`` non-empty) expand into (case, tool) jobs over the
    benchmark suite and render via ``render(rows, profile)``.  Script specs
    (``script`` set) are self-contained artifacts with no per-case jobs
    (Table 1's walkthrough, Figure 2's optimizer demo, Table 4's registry).
    """

    name: str
    title: str
    tools: tuple[str, ...] = ()
    measure_lines: bool = False
    render: Optional[Callable[[list[ComparisonRow], Profile], str]] = field(
        default=None, compare=False
    )
    script: Optional[Callable[[Profile], str]] = field(default=None, compare=False)

    @property
    def is_suite(self) -> bool:
        return bool(self.tools)


_SPECS: dict[str, ExperimentSpec] = {}
_BUILTINS_LOADED = False


def register_spec(spec: ExperimentSpec) -> ExperimentSpec:
    """Register a spec under its name (table modules call this at import)."""
    _SPECS[spec.name] = spec
    return spec


def _load_builtin_specs() -> None:
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    # Importing the experiment modules registers their specs.
    from repro.experiments import figure2, figure5, table1, table2, table3, table4, table5  # noqa: F401

    _BUILTINS_LOADED = True


def available_specs() -> tuple[str, ...]:
    _load_builtin_specs()
    return tuple(sorted(_SPECS))


def get_spec(name: str) -> ExperimentSpec:
    _load_builtin_specs()
    try:
        return _SPECS[name]
    except KeyError:
        known = ", ".join(sorted(_SPECS))
        raise KeyError(f"unknown experiment {name!r}; known: {known}") from None


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Job:
    """One (case, tool) unit of work."""

    case: BenchmarkCase = field(repr=False)
    tool: str = ""
    measure_lines: bool = False

    @property
    def id(self) -> str:
        return f"{self.case.key}/{self.tool}"


@dataclass
class JobPlan:
    """A deduplicated, ordered set of jobs grouped by case."""

    profile: Profile
    cases: list[BenchmarkCase]
    jobs_by_case: dict[str, list[Job]]

    @property
    def n_jobs(self) -> int:
        return sum(len(jobs) for jobs in self.jobs_by_case.values())

    def jobs(self) -> Iterable[Job]:
        for case in self.cases:
            yield from self.jobs_by_case[case.key]


def select_cases(profile: Profile, cases: Optional[Iterable[BenchmarkCase]] = None) -> list[BenchmarkCase]:
    selected = list(cases) if cases is not None else list(BENCHMARKS)
    if profile.max_cases is not None:
        selected = selected[: profile.max_cases]
    return selected


def plan_jobs(
    specs: Sequence[ExperimentSpec],
    profile: Profile,
    cases: Optional[Iterable[BenchmarkCase]] = None,
) -> JobPlan:
    """Expand suite specs into a flat job plan, deduplicated across specs.

    Two specs needing the same (case, tool) pair contribute **one** job; if
    either needs line coverage the merged job measures lines (a
    line-measuring summary is a strict superset of a branch-only one).
    CoverMe jobs are ordered first within each case because the baselines'
    budgets derive from CoverMe's measured effort.
    """
    selected = select_cases(profile, cases)
    # The merged tool set is plan-wide (it depends on the specs, not the case).
    merged: dict[str, bool] = {}
    for spec in specs:
        if not spec.is_suite:
            continue
        for tool in spec.tools:
            merged[tool] = merged.get(tool, False) or spec.measure_lines
    ordered = coverme_first(merged)
    jobs_by_case = {
        case.key: [Job(case=case, tool=tool, measure_lines=merged[tool]) for tool in ordered]
        for case in selected
    }
    return JobPlan(profile=profile, cases=selected, jobs_by_case=jobs_by_case)


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


@dataclass
class PipelineStats:
    """Execution counters: how much work ran versus came from the store."""

    total: int = 0
    executed: int = 0
    loaded: int = 0
    missing: int = 0

    def merge(self, other: "PipelineStats") -> None:
        self.total += other.total
        self.executed += other.executed
        self.loaded += other.loaded
        self.missing += other.missing

    def describe(self) -> str:
        return (
            f"{self.total} jobs: {self.executed} executed, {self.loaded} loaded from store"
            + (f", {self.missing} missing" if self.missing else "")
        )


@dataclass
class CaseOutcome:
    """Result of executing (or resolving) one case's job list."""

    row: ComparisonRow
    stats: PipelineStats
    missing_jobs: list[str] = field(default_factory=list)


def resolve_store_dispatch(
    worker_mode: str, n_workers: int, store: Optional[RunStore]
) -> Optional[RunStore]:
    """Validate a dispatch mode against a store; returns the store to share.

    Persistent stores require ``serial`` or ``thread`` dispatch: process
    workers cannot share the store's append handle, and silently dropping
    their checkpoints would break resume.  Ephemeral runs may use
    ``process``; each worker then uses its own in-memory store (``None`` is
    returned so the unpicklable shared instance never crosses the process
    boundary).
    """
    if worker_mode not in ("serial", "thread", "process"):
        raise ValueError(f"unknown worker mode {worker_mode!r}; known: serial, thread, process")
    if worker_mode == "process" and n_workers > 1:
        if store is not None and store.persistent:
            raise ValueError(
                "process-mode dispatch cannot checkpoint into a persistent store; "
                "use worker_mode='thread' (or 'serial') for store-backed runs"
            )
        return None
    return store


def _baseline_budget(profile: Profile, coverme_effort: int) -> Budget:
    return Budget(
        max_executions=max(
            profile.baseline_min_executions,
            profile.baseline_execution_factor * coverme_effort,
        ),
        max_seconds=(
            profile.coverme_time_budget * profile.baseline_execution_factor
            if profile.coverme_time_budget is not None
            else None
        ),
    )


def execute_case(
    item: tuple[BenchmarkCase, list[tuple[str, Callable[[Profile], object], bool]]],
    profile: Profile,
    store: Optional[RunStore],
    resume: bool = True,
    execute: bool = True,
) -> CaseOutcome:
    """Run (or resolve from the store) every job of one benchmark case.

    ``item`` is ``(case, [(tool_name, factory, measure_lines), ...])`` with
    CoverMe (if present) first.  Completed jobs found in the store are
    loaded, everything else is executed and checkpointed via
    :meth:`RunStore.put` the moment it finishes.  With ``execute=False``
    nothing runs; absent jobs are reported in ``missing_jobs`` (the
    ``repro render`` path).
    """
    case, tool_items = item
    if store is None:
        store = RunStore(None)
    program = instrument_case(case) if execute else _instrument_for_lookup(case)
    src_hash = source_hash(program)
    domain = _domain_tag(case)
    prof_fp = profile_fingerprint(profile)
    stats = PipelineStats()
    missing: list[str] = []
    row = ComparisonRow(case=case, n_branches=program.n_branches)
    coverme_effort = profile.baseline_min_executions

    for tool_name, factory, measure_lines in tool_items:
        stats.total += 1
        tool = factory(profile)
        if tool_name == "CoverMe":
            budget = Budget(max_seconds=profile.coverme_time_budget)
        else:
            budget = _baseline_budget(profile, coverme_effort)
        key = JobKey(
            case_key=case.key,
            tool=tool_name,
            source_hash=src_hash,
            tool_fingerprint=tool_fingerprint(tool),
            profile_fingerprint=prof_fp,
            budget_fingerprint=budget.fingerprint(),
            seed=profile.seed,
            measure_lines=measure_lines,
            domain=domain,
            profile_name=profile.name,
        )
        payload = store.get_satisfying(key) if resume else None
        if payload is not None:
            summary = summary_from_dict(payload["summary"])
            evaluations = payload.get("tool_evaluations")
            stats.loaded += 1
        elif not execute:
            stats.missing += 1
            missing.append(key.case_key + "/" + key.tool)
            continue
        else:
            summary = run_tool(
                tool, program, budget, original=case.entry if measure_lines else None
            )
            evaluations = getattr(tool, "last_evaluations", None)
            store.put(key, {"summary": summary_to_dict(summary), "tool_evaluations": evaluations})
            stats.executed += 1
        if tool_name == "CoverMe":
            coverme_effort = max(evaluations or 0, profile.baseline_min_executions)
        row.results[tool_name] = summary
    return CaseOutcome(row=row, stats=stats, missing_jobs=missing)


def execute_plan(
    plan: JobPlan,
    store: Optional[RunStore] = None,
    tool_factories: Optional[dict[str, Callable[[Profile], object]]] = None,
    resume: bool = True,
    execute: bool = True,
    n_workers: int = 1,
    worker_mode: str = "thread",
) -> tuple[dict[str, ComparisonRow], PipelineStats, list[str]]:
    """Execute a job plan, one case per worker-pool task.

    Returns ``(rows_by_case_key, stats, missing_jobs)``.  Cases are
    dispatched through :func:`parallel_map`; within a case jobs run in plan
    order (CoverMe first) and are checkpointed to the store individually, so
    killing the run loses at most the jobs in flight.

    Persistent stores require ``serial`` or ``thread`` dispatch: process
    workers cannot share the store's append handle, and silently dropping
    their checkpoints would break resume.  (Ephemeral runs may use
    ``process``; their per-job records are discarded by design.)
    """
    factories = tool_factories if tool_factories is not None else TOOL_FACTORIES
    shared_store = resolve_store_dispatch(worker_mode, n_workers, store)
    items = []
    for case in plan.cases:
        tool_items = [
            (job.tool, factories[job.tool], job.measure_lines)
            for job in plan.jobs_by_case[case.key]
        ]
        items.append((case, tool_items))
    outcomes = parallel_map(
        functools.partial(
            execute_case,
            profile=plan.profile,
            store=shared_store,
            resume=resume,
            execute=execute,
        ),
        items,
        n_workers=n_workers,
        mode=worker_mode,
    )
    stats = PipelineStats()
    missing: list[str] = []
    rows: dict[str, ComparisonRow] = {}
    for case, outcome in zip(plan.cases, outcomes):
        stats.merge(outcome.stats)
        missing.extend(outcome.missing_jobs)
        rows[case.key] = outcome.row
    return rows, stats, missing


# ---------------------------------------------------------------------------
# Spec-level driver (what the CLI calls)
# ---------------------------------------------------------------------------


@dataclass
class RunReport:
    """Everything one ``repro run``/``repro render`` invocation produced."""

    profile: Profile
    rows_by_spec: dict[str, list[ComparisonRow]] = field(default_factory=dict)
    rendered: dict[str, str] = field(default_factory=dict)
    stats: PipelineStats = field(default_factory=PipelineStats)
    missing_jobs: list[str] = field(default_factory=list)


def run_specs(
    specs: Sequence[ExperimentSpec],
    profile: Profile,
    store: Optional[RunStore] = None,
    cases: Optional[Iterable[BenchmarkCase]] = None,
    resume: bool = True,
    execute: bool = True,
    n_workers: int = 1,
    worker_mode: str = "thread",
) -> RunReport:
    """Plan, execute and render a set of experiment specs as one batch.

    Suite specs share one deduplicated job plan; script specs run their
    self-contained artifact.  With ``execute=False`` (the ``repro render``
    path) nothing is executed: suite rows are resolved from the store only,
    absent jobs are listed in ``missing_jobs`` instead of being run, and
    script specs (which have no stored records) are reported as missing.
    """
    report = RunReport(profile=profile)
    suite_specs = [spec for spec in specs if spec.is_suite]
    if suite_specs and execute:
        plan = plan_jobs(suite_specs, profile, cases=cases)
        rows_by_case, stats, missing = execute_plan(
            plan, store=store, resume=resume, execute=True,
            n_workers=n_workers, worker_mode=worker_mode,
        )
        report.stats = stats
        report.missing_jobs = missing
        for spec in suite_specs:
            rows = [
                ComparisonRow(
                    case=rows_by_case[case.key].case,
                    n_branches=rows_by_case[case.key].n_branches,
                    results={
                        tool: rows_by_case[case.key].results[tool]
                        for tool in spec.tools
                        if tool in rows_by_case[case.key].results
                    },
                )
                for case in plan.cases
            ]
            report.rows_by_spec[spec.name] = rows
            if spec.render is not None:
                report.rendered[spec.name] = spec.render(rows, profile)
    elif suite_specs:
        # Render mode resolves each spec against its *own* plan: the merged
        # plan's line-measuring keys would make a branch-only store miss for
        # every spec, and one spec's absent jobs must not suppress a sibling
        # whose records all resolved.  Lookups are cheap, so losing the
        # cross-spec dedup costs nothing here.
        for spec in suite_specs:
            plan = plan_jobs([spec], profile, cases=cases)
            rows_by_case, stats, missing = execute_plan(
                plan, store=store, resume=resume, execute=False,
                n_workers=n_workers, worker_mode=worker_mode,
            )
            report.stats.merge(stats)
            report.missing_jobs.extend(
                job for job in missing if job not in report.missing_jobs
            )
            rows = [rows_by_case[case.key] for case in plan.cases]
            report.rows_by_spec[spec.name] = rows
            if spec.render is not None and not missing:
                report.rendered[spec.name] = spec.render(rows, profile)
    for spec in specs:
        if spec.is_suite:
            continue
        if spec.script is None:
            raise ValueError(f"spec {spec.name!r} declares neither tools nor a script")
        if not execute:
            # Script specs have no stored records to render from; honoring
            # render's no-execution contract means reporting them as missing
            # rather than silently running their (possibly expensive) script.
            report.stats.total += 1
            report.stats.missing += 1
            report.missing_jobs.append(f"{spec.name} (script spec; requires `repro run`)")
            continue
        report.rendered[spec.name] = spec.script(profile)
    return report
