"""Declarative, resumable orchestration of the paper's experiments.

This module is the planning layer between the per-table experiment modules
and the service layer that actually executes jobs:

* an :class:`ExperimentSpec` declares what one table/figure needs -- which
  tools run over the benchmark suite (and whether line coverage is
  measured), or a self-contained script for the non-suite artifacts
  (Table 1, Figure 2, Table 4);
* :func:`plan_jobs` expands a set of specs into a flat plan of (case, tool)
  jobs, **deduplicated across specs** -- Table 2, Table 5 and Figure 5 all
  need the same CoverMe/Rand/AFL runs, so one ``repro run table2 table5
  figure5`` invocation executes each shared pair exactly once;
* :func:`execute_plan` submits the plan to a
  :class:`~repro.service.CoverageService` -- the same admission / dedup /
  result-cache front door the HTTP daemon serves -- so completed jobs load
  from the :class:`~repro.store.RunStore`, new ones are checkpointed the
  moment they finish, and an interrupted run resumes by skipping completed
  work;
* renderers (defined by the table modules) format the resulting
  :class:`~repro.experiments.runner.ComparisonRow`\\ s as thin views over
  the store.

Job ordering inside a case is semantic, not cosmetic: CoverMe runs first so
the baselines' budgets can be derived from its measured effort (the paper's
"ten times the CoverMe time" rule).  :func:`execute_plan` therefore
schedules in two waves -- every case's CoverMe job is submitted up front
(filling all service workers), then each case's baselines follow as its
CoverMe result lands.  The derived budget is fingerprinted into the
baseline job's key, so a baseline record is reused only when the CoverMe
effort it was calibrated against is unchanged.

The tool factories and fingerprint helpers moved to
:mod:`repro.service.jobs`; they are re-exported here unchanged for
backwards compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.experiments.runner import ComparisonRow, Profile, instrument_case  # noqa: F401
from repro.fdlibm.suite import BENCHMARKS, BenchmarkCase
from repro.service.core import CoverageService
from repro.service.jobs import (  # noqa: F401  (re-exported: legacy import site)
    _PROFILE_FP_EXCLUDE,
    _TOOL_FP_EXCLUDE,
    TOOL_FACTORIES,
    JobRequest,
    baseline_budget,
    build_job_key,
    coverme_budget,
    coverme_effort_from_payload,
    domain_tag,
    instrument_for_lookup,
    make_afl,
    make_austin,
    make_coverme,
    make_rand,
    profile_fingerprint,
    source_hash,
    tool_fingerprint,
)
from repro.store import RunStore, summary_from_dict

# Legacy private aliases (kept for older imports; same objects).
_domain_tag = domain_tag
_instrument_for_lookup = instrument_for_lookup
_baseline_budget = baseline_budget


def coverme_first(tool_names: Iterable[str]) -> list[str]:
    """Order tool names with ``CoverMe`` first.

    This ordering is semantic: the baselines' budgets derive from CoverMe's
    measured effort (the paper's "ten times the CoverMe time" rule), so
    within a case CoverMe must run before them.  Every planner --
    :func:`plan_jobs`, :func:`repro.experiments.runner.run_case`,
    :func:`repro.experiments.runner.compare_tools` -- goes through this one
    helper so the rule cannot drift between entry points.
    """
    return sorted(tool_names, key=lambda name: name != "CoverMe")


def tool_items_for(
    tool_factories: dict[str, Callable[[Profile], object]], measure_lines: bool
) -> list[tuple[str, Callable[[Profile], object], bool]]:
    """The ``(name, factory, measure_lines)`` job list for one case, in
    :func:`coverme_first` order (the shape :func:`execute_case` consumes)."""
    return [(name, tool_factories[name], measure_lines) for name in coverme_first(tool_factories)]


# ---------------------------------------------------------------------------
# Specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one table/figure of the evaluation.

    Suite specs (``tools`` non-empty) expand into (case, tool) jobs over the
    benchmark suite and render via ``render(rows, profile)``.  Script specs
    (``script`` set) are self-contained artifacts with no per-case jobs
    (Table 1's walkthrough, Figure 2's optimizer demo, Table 4's registry).
    """

    name: str
    title: str
    tools: tuple[str, ...] = ()
    measure_lines: bool = False
    render: Optional[Callable[[list[ComparisonRow], Profile], str]] = field(
        default=None, compare=False
    )
    script: Optional[Callable[[Profile], str]] = field(default=None, compare=False)

    @property
    def is_suite(self) -> bool:
        return bool(self.tools)


_SPECS: dict[str, ExperimentSpec] = {}
_BUILTINS_LOADED = False


def register_spec(spec: ExperimentSpec) -> ExperimentSpec:
    """Register a spec under its name (table modules call this at import)."""
    _SPECS[spec.name] = spec
    return spec


def _load_builtin_specs() -> None:
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    # Importing the experiment modules registers their specs.
    from repro.experiments import figure2, figure5, table1, table2, table3, table4, table5  # noqa: F401

    _BUILTINS_LOADED = True


def available_specs() -> tuple[str, ...]:
    _load_builtin_specs()
    return tuple(sorted(_SPECS))


def get_spec(name: str) -> ExperimentSpec:
    _load_builtin_specs()
    try:
        return _SPECS[name]
    except KeyError:
        known = ", ".join(sorted(_SPECS))
        raise KeyError(f"unknown experiment {name!r}; known: {known}") from None


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Job:
    """One (case, tool) unit of work."""

    case: BenchmarkCase = field(repr=False)
    tool: str = ""
    measure_lines: bool = False

    @property
    def id(self) -> str:
        return f"{self.case.key}/{self.tool}"


@dataclass
class JobPlan:
    """A deduplicated, ordered set of jobs grouped by case."""

    profile: Profile
    cases: list[BenchmarkCase]
    jobs_by_case: dict[str, list[Job]]

    @property
    def n_jobs(self) -> int:
        return sum(len(jobs) for jobs in self.jobs_by_case.values())

    def jobs(self) -> Iterable[Job]:
        for case in self.cases:
            yield from self.jobs_by_case[case.key]


def select_cases(profile: Profile, cases: Optional[Iterable[BenchmarkCase]] = None) -> list[BenchmarkCase]:
    selected = list(cases) if cases is not None else list(BENCHMARKS)
    if profile.max_cases is not None:
        selected = selected[: profile.max_cases]
    return selected


def plan_jobs(
    specs: Sequence[ExperimentSpec],
    profile: Profile,
    cases: Optional[Iterable[BenchmarkCase]] = None,
) -> JobPlan:
    """Expand suite specs into a flat job plan, deduplicated across specs.

    Two specs needing the same (case, tool) pair contribute **one** job; if
    either needs line coverage the merged job measures lines (a
    line-measuring summary is a strict superset of a branch-only one).
    CoverMe jobs are ordered first within each case because the baselines'
    budgets derive from CoverMe's measured effort.
    """
    selected = select_cases(profile, cases)
    # The merged tool set is plan-wide (it depends on the specs, not the case).
    merged: dict[str, bool] = {}
    for spec in specs:
        if not spec.is_suite:
            continue
        for tool in spec.tools:
            merged[tool] = merged.get(tool, False) or spec.measure_lines
    ordered = coverme_first(merged)
    jobs_by_case = {
        case.key: [Job(case=case, tool=tool, measure_lines=merged[tool]) for tool in ordered]
        for case in selected
    }
    return JobPlan(profile=profile, cases=selected, jobs_by_case=jobs_by_case)


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


@dataclass
class PipelineStats:
    """Execution counters: how much work ran versus came from the store."""

    total: int = 0
    executed: int = 0
    loaded: int = 0
    missing: int = 0

    def merge(self, other: "PipelineStats") -> None:
        self.total += other.total
        self.executed += other.executed
        self.loaded += other.loaded
        self.missing += other.missing

    def describe(self) -> str:
        return (
            f"{self.total} jobs: {self.executed} executed, {self.loaded} loaded from store"
            + (f", {self.missing} missing" if self.missing else "")
        )


@dataclass
class CaseOutcome:
    """Result of executing (or resolving) one case's job list."""

    row: ComparisonRow
    stats: PipelineStats
    missing_jobs: list[str] = field(default_factory=list)


#: Dispatch modes accepted by :func:`execute_plan` (the legacy names; they
#: map onto the service's inline/thread/process worker modes).
_DISPATCH_MODES = ("serial", "thread", "process")


def service_worker_mode(worker_mode: str, n_workers: int) -> str:
    """Map a pipeline dispatch mode onto a service worker mode.

    ``serial`` -- and any mode with one worker -- runs inline on the
    submitting thread (no queue, no worker threads); ``thread`` and
    ``process`` (with ``n_workers > 1``) run the service's persistent warm
    pool.  Process-mode dispatch into persistent stores is fully supported:
    service workers hand payloads back to the coordinating process, which
    owns the store's append handle.
    """
    if worker_mode not in _DISPATCH_MODES:
        known = ", ".join(_DISPATCH_MODES)
        raise ValueError(f"unknown worker mode {worker_mode!r}; known: {known}")
    if worker_mode == "serial" or n_workers <= 1:
        return "inline"
    return worker_mode


def _request_for(
    case: BenchmarkCase, tool_item: tuple[str, Callable[[Profile], object], bool], profile: Profile
) -> JobRequest:
    tool_name, factory, measure_lines = tool_item
    return JobRequest(
        case=case, tool=tool_name, profile=profile, measure_lines=measure_lines, factory=factory
    )


def _budget_for(tool_name: str, profile: Profile, coverme_effort: int):
    if tool_name == "CoverMe":
        return coverme_budget(profile)
    return baseline_budget(profile, coverme_effort)


def _lookup_case(
    case: BenchmarkCase,
    tool_items: list[tuple[str, Callable[[Profile], object], bool]],
    profile: Profile,
    store: Optional[RunStore],
    resume: bool,
) -> CaseOutcome:
    """Resolve one case purely from the store (the ``repro render`` path).

    Nothing executes; absent jobs are reported in ``missing_jobs``.  The
    budget chain mirrors execution: a baseline's key depends on the CoverMe
    effort, so a missing CoverMe record leaves the baselines keyed to the
    profile floor (and typically missing too).
    """
    if store is None:
        store = RunStore(None)
    program = instrument_for_lookup(case)
    stats = PipelineStats()
    missing: list[str] = []
    row = ComparisonRow(case=case, n_branches=program.n_branches)
    coverme_effort = profile.baseline_min_executions
    for tool_item in tool_items:
        tool_name = tool_item[0]
        stats.total += 1
        request = _request_for(case, tool_item, profile)
        key = build_job_key(request, _budget_for(tool_name, profile, coverme_effort))
        payload = store.get_satisfying(key) if resume else None
        if payload is None:
            stats.missing += 1
            missing.append(key.case_key + "/" + key.tool)
            continue
        stats.loaded += 1
        if tool_name == "CoverMe":
            coverme_effort = coverme_effort_from_payload(payload, profile)
        row.results[tool_name] = summary_from_dict(payload["summary"])
    return CaseOutcome(row=row, stats=stats, missing_jobs=missing)


def _execute_cases(
    cases: Sequence[BenchmarkCase],
    items_by_case: dict[str, list[tuple[str, Callable[[Profile], object], bool]]],
    profile: Profile,
    service: CoverageService,
    resume: bool,
) -> list[CaseOutcome]:
    """Run every case's job list through one shared service, in two waves.

    Wave 1 submits each case's CoverMe job immediately (they are mutually
    independent, so they saturate the worker pool); wave 2 follows each
    case -- in case order -- with its baselines as soon as its CoverMe
    result (which fixes their budgets) lands.  Results are folded back in
    case order, so rows are deterministic for any worker/shard count.
    """
    reference_jobs: dict[str, object] = {}
    for case in cases:
        for tool_item in items_by_case[case.key]:
            if tool_item[0] == "CoverMe":
                reference_jobs[case.key] = service.submit(
                    _request_for(case, tool_item, profile),
                    budget=coverme_budget(profile),
                    resume=resume,
                )
                break

    outcomes: list[CaseOutcome] = []
    pending: list[tuple[int, str, object]] = []  # (case index, tool, job)
    for index, case in enumerate(cases):
        tool_items = items_by_case[case.key]
        stats = PipelineStats(total=len(tool_items))
        row = ComparisonRow(case=case, n_branches=instrument_for_lookup(case).n_branches)
        outcomes.append(CaseOutcome(row=row, stats=stats))
        coverme_effort = profile.baseline_min_executions
        if case.key in reference_jobs:
            outcome = service.wait(reference_jobs[case.key])
            _fold(outcomes[index], "CoverMe", outcome)
            coverme_effort = coverme_effort_from_payload(outcome.payload, profile)
        for tool_item in tool_items:
            tool_name = tool_item[0]
            if tool_name == "CoverMe":
                continue
            job = service.submit(
                _request_for(case, tool_item, profile),
                budget=_budget_for(tool_name, profile, coverme_effort),
                resume=resume,
            )
            pending.append((index, tool_name, job))

    for index, tool_name, job in pending:
        _fold(outcomes[index], tool_name, service.wait(job))
    return outcomes


def _fold(case_outcome: CaseOutcome, tool_name: str, outcome) -> None:
    """Fold one resolved job into its case's row and counters."""
    if outcome.cached:
        case_outcome.stats.loaded += 1
    else:
        case_outcome.stats.executed += 1
    case_outcome.row.results[tool_name] = outcome.summary


def execute_case(
    item: tuple[BenchmarkCase, list[tuple[str, Callable[[Profile], object], bool]]],
    profile: Profile,
    store: Optional[RunStore] = None,
    resume: bool = True,
    execute: bool = True,
    service: Optional[CoverageService] = None,
) -> CaseOutcome:
    """Run (or resolve from the store) every job of one benchmark case.

    ``item`` is ``(case, [(tool_name, factory, measure_lines), ...])`` with
    CoverMe (if present) first.  Jobs go through a
    :class:`~repro.service.CoverageService` (an inline one over ``store``
    unless ``service`` is passed): completed jobs load from the result
    cache, everything else executes and is checkpointed via
    :meth:`RunStore.put` the moment it finishes.  With ``execute=False``
    nothing runs; absent jobs are reported in ``missing_jobs`` (the
    ``repro render`` path).
    """
    case, tool_items = item
    if not execute:
        return _lookup_case(case, tool_items, profile, store, resume)
    owns = service is None
    if owns:
        service = CoverageService(store=store, worker_mode="inline", resume=resume)
    try:
        return _execute_cases([case], {case.key: tool_items}, profile, service, resume)[0]
    finally:
        if owns:
            service.close(close_store=False)


def execute_plan(
    plan: JobPlan,
    store: Optional[RunStore] = None,
    tool_factories: Optional[dict[str, Callable[[Profile], object]]] = None,
    resume: bool = True,
    execute: bool = True,
    n_workers: int = 1,
    worker_mode: str = "thread",
    n_shards: Optional[int] = None,
    service: Optional[CoverageService] = None,
) -> tuple[dict[str, ComparisonRow], PipelineStats, list[str]]:
    """Execute a job plan through the coverage service.

    Returns ``(rows_by_case_key, stats, missing_jobs)``.  Jobs are
    submitted to one shared :class:`~repro.service.CoverageService`
    (constructed over ``store`` unless ``service`` is passed) in the
    two-wave order of :func:`_execute_cases`; each job is checkpointed to
    the store individually, so killing the run loses at most the jobs in
    flight.  All dispatch modes -- including ``process`` -- work with
    persistent stores: workers return payloads and the coordinating
    process writes them.  Seeded results are bit-identical for every
    ``n_workers``, ``worker_mode`` and ``n_shards`` (wall-time fields
    aside, nothing in a stored record depends on scheduling).
    """
    factories = tool_factories if tool_factories is not None else TOOL_FACTORIES
    items_by_case = {
        case.key: [
            (job.tool, factories[job.tool], job.measure_lines)
            for job in plan.jobs_by_case[case.key]
        ]
        for case in plan.cases
    }
    if not execute:
        outcomes = [
            _lookup_case(case, items_by_case[case.key], plan.profile, store, resume)
            for case in plan.cases
        ]
    else:
        owns = service is None
        if owns:
            service = CoverageService(
                store=store,
                worker_mode=service_worker_mode(worker_mode, n_workers),
                n_workers=n_workers,
                n_shards=n_shards,
                resume=resume,
            )
        try:
            outcomes = _execute_cases(plan.cases, items_by_case, plan.profile, service, resume)
        finally:
            if owns:
                service.close(close_store=False)
    stats = PipelineStats()
    missing: list[str] = []
    rows: dict[str, ComparisonRow] = {}
    for case, outcome in zip(plan.cases, outcomes):
        stats.merge(outcome.stats)
        missing.extend(outcome.missing_jobs)
        rows[case.key] = outcome.row
    return rows, stats, missing


# ---------------------------------------------------------------------------
# Spec-level driver (what the CLI calls)
# ---------------------------------------------------------------------------


@dataclass
class RunReport:
    """Everything one ``repro run``/``repro render`` invocation produced."""

    profile: Profile
    rows_by_spec: dict[str, list[ComparisonRow]] = field(default_factory=dict)
    rendered: dict[str, str] = field(default_factory=dict)
    stats: PipelineStats = field(default_factory=PipelineStats)
    missing_jobs: list[str] = field(default_factory=list)


def run_specs(
    specs: Sequence[ExperimentSpec],
    profile: Profile,
    store: Optional[RunStore] = None,
    cases: Optional[Iterable[BenchmarkCase]] = None,
    resume: bool = True,
    execute: bool = True,
    n_workers: int = 1,
    worker_mode: str = "thread",
    n_shards: Optional[int] = None,
    service=None,
) -> RunReport:
    """Plan, execute and render a set of experiment specs as one batch.

    Suite specs share one deduplicated job plan; script specs run their
    self-contained artifact.  With ``execute=False`` (the ``repro render``
    path) nothing is executed: suite rows are resolved from the store only,
    absent jobs are listed in ``missing_jobs`` instead of being run, and
    script specs (which have no stored records) are reported as missing.
    ``service`` overrides the locally-constructed
    :class:`~repro.service.CoverageService` -- this is how ``repro run
    --coordinator URL`` swaps in a
    :class:`~repro.distributed.remote.RemoteServiceAdapter` and executes
    the identical two-wave plan against a daemon.
    """
    report = RunReport(profile=profile)
    suite_specs = [spec for spec in specs if spec.is_suite]
    if suite_specs and execute:
        plan = plan_jobs(suite_specs, profile, cases=cases)
        rows_by_case, stats, missing = execute_plan(
            plan, store=store, resume=resume, execute=True,
            n_workers=n_workers, worker_mode=worker_mode, n_shards=n_shards,
            service=service,
        )
        report.stats = stats
        report.missing_jobs = missing
        for spec in suite_specs:
            rows = [
                ComparisonRow(
                    case=rows_by_case[case.key].case,
                    n_branches=rows_by_case[case.key].n_branches,
                    results={
                        tool: rows_by_case[case.key].results[tool]
                        for tool in spec.tools
                        if tool in rows_by_case[case.key].results
                    },
                )
                for case in plan.cases
            ]
            report.rows_by_spec[spec.name] = rows
            if spec.render is not None:
                report.rendered[spec.name] = spec.render(rows, profile)
    elif suite_specs:
        # Render mode resolves each spec against its *own* plan: the merged
        # plan's line-measuring keys would make a branch-only store miss for
        # every spec, and one spec's absent jobs must not suppress a sibling
        # whose records all resolved.  Lookups are cheap, so losing the
        # cross-spec dedup costs nothing here.
        for spec in suite_specs:
            plan = plan_jobs([spec], profile, cases=cases)
            rows_by_case, stats, missing = execute_plan(
                plan, store=store, resume=resume, execute=False,
                n_workers=n_workers, worker_mode=worker_mode,
            )
            report.stats.merge(stats)
            report.missing_jobs.extend(
                job for job in missing if job not in report.missing_jobs
            )
            rows = [rows_by_case[case.key] for case in plan.cases]
            report.rows_by_spec[spec.name] = rows
            if spec.render is not None and not missing:
                report.rendered[spec.name] = spec.render(rows, profile)
    for spec in specs:
        if spec.is_suite:
            continue
        if spec.script is None:
            raise ValueError(f"spec {spec.name!r} declares neither tools nor a script")
        if not execute:
            # Script specs have no stored records to render from; honoring
            # render's no-execution contract means reporting them as missing
            # rather than silently running their (possibly expensive) script.
            report.stats.total += 1
            report.stats.missing += 1
            report.missing_jobs.append(f"{spec.name} (script spec; requires `repro run`)")
            continue
        report.rendered[spec.name] = spec.script(profile)
    return report
