"""Table 4: the Fdlibm functions excluded from the evaluation, with reasons."""

from __future__ import annotations

from repro.experiments.pipeline import ExperimentSpec, register_spec
from repro.fdlibm.excluded import EXCLUDED, excluded_by_reason


def run():
    """Return the exclusion registry grouped by reason."""
    return excluded_by_reason()


def render_text(profile=None) -> str:
    """Render the Table 4 artifact (exclusion registry; profile-independent)."""
    lines = [
        "Table 4 reproduction: untested Fdlibm programs",
        f"{'File':<18s}{'Function':<56s}{'Reason'}",
    ]
    for item in EXCLUDED:
        lines.append(f"{item.file:<18s}{item.function:<56s}{item.reason}")
    groups = excluded_by_reason()
    lines.append("\nSummary:")
    for reason, items in sorted(groups.items()):
        lines.append(f"  {reason}: {len(items)} functions")
    return "\n".join(lines)


SPEC = register_spec(
    ExperimentSpec(
        name="table4",
        title="Table 4: excluded Fdlibm functions",
        script=render_text,
    )
)


def main(argv=None) -> int:
    """Deprecated entry point; delegates to ``python -m repro run table4``."""
    from repro.cli import deprecated_main

    return deprecated_main("table4", argv)


if __name__ == "__main__":
    raise SystemExit(main())
