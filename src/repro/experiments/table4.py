"""Table 4: the Fdlibm functions excluded from the evaluation, with reasons."""

from __future__ import annotations

from repro.fdlibm.excluded import EXCLUDED, excluded_by_reason


def run():
    """Return the exclusion registry grouped by reason."""
    return excluded_by_reason()


def main() -> None:
    print("Table 4 reproduction: untested Fdlibm programs")
    print(f"{'File':<18s}{'Function':<56s}{'Reason'}")
    for item in EXCLUDED:
        print(f"{item.file:<18s}{item.function:<56s}{item.reason}")
    groups = excluded_by_reason()
    print("\nSummary:")
    for reason, items in sorted(groups.items()):
        print(f"  {reason}: {len(items)} functions")


if __name__ == "__main__":
    main()
