"""Table 2: branch coverage of CoverMe versus Rand and AFL on the Fdlibm suite."""

from __future__ import annotations

from typing import Optional

from repro.experiments.pipeline import (
    TOOL_FACTORIES,
    ExperimentSpec,
    register_spec,
)
from repro.experiments.runner import (
    ComparisonRow,
    Profile,
    compare_tools,
    format_table,
    mean,
)

TOOLS = ("Rand", "AFL", "CoverMe")


def tool_factories(seed: int = 0):
    """The Table 2 tool set (CoverMe plus the Rand/AFL baselines).

    The factories derive their seeds from the profile at call time; the
    ``seed`` parameter is kept for backwards compatibility.
    """
    return {name: TOOL_FACTORIES[name] for name in ("CoverMe", "Rand", "AFL")}


def run(
    profile: Profile,
    cases=None,
    measure_lines: bool = False,
    store=None,
    resume: bool = True,
) -> list[ComparisonRow]:
    """Run the Table 2 comparison under the given profile.

    With a persistent ``store``, completed (case, tool) jobs are loaded
    instead of re-executed; without one the run is ephemeral (the historical
    behavior).
    """
    return compare_tools(
        tool_factories(profile.seed),
        profile,
        cases=cases,
        measure_lines=measure_lines,
        store=store,
        resume=resume,
    )


def summarize(rows: list[ComparisonRow]) -> dict[str, float]:
    """Mean branch coverage per tool plus the improvement columns of Table 2."""
    summary = {tool: mean([row.coverage(tool) for row in rows]) for tool in TOOLS}
    summary["improvement_vs_rand"] = summary["CoverMe"] - summary["Rand"]
    summary["improvement_vs_afl"] = summary["CoverMe"] - summary["AFL"]
    return summary


def render(rows: list[ComparisonRow], profile: Profile) -> str:
    """Render the Table 2 artifact (table plus the headline means line)."""
    summary = summarize(rows)
    table = format_table(
        rows,
        TOOLS,
        paper_column=lambda case: case.paper.coverme_branch,
        title=f"Table 2 reproduction (profile={profile.name}); paper column = CoverMe branch %",
    )
    return (
        f"{table}\n\n"
        f"Means: Rand {summary['Rand']:.1f}%  AFL {summary['AFL']:.1f}%  "
        f"CoverMe {summary['CoverMe']:.1f}%  (paper: 38.0 / 72.9 / 90.8)"
    )


SPEC = register_spec(
    ExperimentSpec(
        name="table2",
        title="Table 2: branch coverage, CoverMe vs Rand vs AFL",
        tools=TOOLS,
        render=render,
    )
)


def main(argv: Optional[list[str]] = None) -> int:
    """Deprecated entry point; delegates to ``python -m repro run table2``."""
    from repro.cli import deprecated_main

    return deprecated_main("table2", argv)


if __name__ == "__main__":
    raise SystemExit(main())
