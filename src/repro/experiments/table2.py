"""Table 2: branch coverage of CoverMe versus Rand and AFL on the Fdlibm suite."""

from __future__ import annotations

import argparse

from repro.baselines.afl import AFLFuzzer
from repro.baselines.random_testing import RandomTester
from repro.experiments.runner import (
    PROFILES,
    ComparisonRow,
    Profile,
    compare_tools,
    coverme_tool,
    format_table,
    mean,
)

TOOLS = ("Rand", "AFL", "CoverMe")


def tool_factories(seed: int = 0):
    return {
        "CoverMe": lambda profile: coverme_tool(profile),
        "Rand": lambda profile: RandomTester(seed=profile.seed + 1),
        "AFL": lambda profile: AFLFuzzer(seed=profile.seed + 2),
    }


def run(profile: Profile, cases=None, measure_lines: bool = False) -> list[ComparisonRow]:
    """Run the Table 2 comparison under the given profile."""
    return compare_tools(tool_factories(profile.seed), profile, cases=cases, measure_lines=measure_lines)


def summarize(rows: list[ComparisonRow]) -> dict[str, float]:
    """Mean branch coverage per tool plus the improvement columns of Table 2."""
    summary = {tool: mean([row.coverage(tool) for row in rows]) for tool in TOOLS}
    summary["improvement_vs_rand"] = summary["CoverMe"] - summary["Rand"]
    summary["improvement_vs_afl"] = summary["CoverMe"] - summary["AFL"]
    return summary


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", choices=sorted(PROFILES), default="smoke")
    args = parser.parse_args()
    profile = PROFILES[args.profile]
    rows = run(profile)
    print(
        format_table(
            rows,
            TOOLS,
            paper_column=lambda case: case.paper.coverme_branch,
            title=f"Table 2 reproduction (profile={profile.name}); paper column = CoverMe branch %",
        )
    )
    summary = summarize(rows)
    print(
        f"\nMeans: Rand {summary['Rand']:.1f}%  AFL {summary['AFL']:.1f}%  "
        f"CoverMe {summary['CoverMe']:.1f}%  (paper: 38.0 / 72.9 / 90.8)"
    )


if __name__ == "__main__":
    main()
