"""Figure 2: local versus global optimization on the paper's two objectives.

* Fig. 2(a): ``f(x) = 0 if x <= 1 else (x-1)^2`` -- a smooth objective a local
  method minimizes directly.
* Fig. 2(b): ``f(x) = ((x+1)^2-4)^2 if x <= 1 else (x^2-4)^2`` -- a
  multi-modal objective where plain local search gets trapped and the
  Monte-Carlo moves of basin-hopping are needed to reach a global minimum
  (the minimum points are x in {-3, 1, 2}).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.pipeline import ExperimentSpec, register_spec
from repro.optimize.basinhopping import basinhopping
from repro.optimize.local import get_local_minimizer


def figure2a_objective(x: float) -> float:
    """Objective of Fig. 2(a)."""
    x = float(np.atleast_1d(x)[0])
    return 0.0 if x <= 1.0 else (x - 1.0) ** 2


def figure2b_objective(x: float) -> float:
    """Objective of Fig. 2(b)."""
    x = float(np.atleast_1d(x)[0])
    if x <= 1.0:
        return ((x + 1.0) ** 2 - 4.0) ** 2
    return (x * x - 4.0) ** 2


#: Global minimum points of the Fig. 2(b) objective.
FIGURE2B_MINIMA = (-3.0, 1.0, 2.0)


@dataclass
class Figure2Result:
    objective: str
    method: str
    start: float
    minimum_point: float
    minimum_value: float


def run(seed: int = 0) -> list[Figure2Result]:
    """Minimize both objectives with local-only and basin-hopping methods."""
    rng = np.random.default_rng(seed)
    powell = get_local_minimizer("powell")
    results: list[Figure2Result] = []
    for start in (6.0, -6.0, 0.5):
        local_a = powell(figure2a_objective, np.array([start]))
        results.append(
            Figure2Result("fig2a", "powell", start, float(local_a.x[0]), local_a.fun)
        )
        local_b = powell(figure2b_objective, np.array([start]))
        results.append(
            Figure2Result("fig2b", "powell", start, float(local_b.x[0]), local_b.fun)
        )
        global_b = basinhopping(
            figure2b_objective,
            np.array([start]),
            n_iter=20,
            local_minimizer="powell",
            step_size=2.0,
            rng=rng,
        )
        results.append(
            Figure2Result("fig2b", "basinhopping", start, float(global_b.x[0]), global_b.fun)
        )
    return results


def render_text(profile=None) -> str:
    """Render the Figure 2 artifact (local vs global optimization runs)."""
    seed = profile.seed if profile is not None else 0
    lines = ["Figure 2 reproduction: local vs global optimization"]
    for item in run(seed=seed):
        lines.append(
            f"{item.objective:6s} {item.method:14s} start={item.start:6.1f} "
            f"-> x*={item.minimum_point:10.4f} f(x*)={item.minimum_value:.3g}"
        )
    return "\n".join(lines)


SPEC = register_spec(
    ExperimentSpec(
        name="figure2",
        title="Figure 2: local vs global optimization",
        script=render_text,
    )
)


def main(argv=None) -> int:
    """Deprecated entry point; delegates to ``python -m repro run figure2``."""
    from repro.cli import deprecated_main

    return deprecated_main("figure2", argv)


if __name__ == "__main__":
    raise SystemExit(main())
