"""Table 5: line coverage of CoverMe versus Rand and AFL."""

from __future__ import annotations

from typing import Optional

from repro.experiments.pipeline import ExperimentSpec, register_spec
from repro.experiments.runner import ComparisonRow, Profile, mean
from repro.experiments.table2 import run as run_table2

TOOLS = ("Rand", "AFL", "CoverMe")


def run(profile: Profile, cases=None, store=None, resume: bool = True) -> list[ComparisonRow]:
    """Same tool runs as Table 2 but with line-coverage measurement enabled."""
    return run_table2(profile, cases=cases, measure_lines=True, store=store, resume=resume)


def line_percent(row: ComparisonRow, tool: str) -> float:
    summary = row.results.get(tool)
    if summary is None or summary.n_lines == 0:
        return float("nan")
    return summary.line_coverage_percent


def summarize(rows: list[ComparisonRow]) -> dict[str, float]:
    return {tool: mean([line_percent(row, tool) for row in rows]) for tool in TOOLS}


def render(rows: list[ComparisonRow], profile: Profile) -> str:
    lines = [f"Table 5 reproduction (profile={profile.name}): line coverage (%)"]
    header = (
        f"{'File':<16s}{'Function':<34s}"
        + "".join(f"{t:>10s}" for t in TOOLS)
        + f"{'Paper':>10s}"
    )
    lines.append(header)
    for row in rows:
        line = f"{row.case.file:<16s}{row.case.function:<34s}"
        for tool in TOOLS:
            line += f"{line_percent(row, tool):>10.1f}"
        paper = row.case.paper.coverme_line
        line += f"{paper if paper is not None else float('nan'):>10.1f}"
        lines.append(line)
    summary = summarize(rows)
    lines.append(
        f"\nMeans: Rand {summary['Rand']:.1f}%  AFL {summary['AFL']:.1f}%  "
        f"CoverMe {summary['CoverMe']:.1f}% (paper: 54.2 / 87.0 / 97.0)"
    )
    return "\n".join(lines)


SPEC = register_spec(
    ExperimentSpec(
        name="table5",
        title="Table 5: line coverage, CoverMe vs Rand vs AFL",
        tools=TOOLS,
        measure_lines=True,
        render=render,
    )
)


def main(argv: Optional[list[str]] = None) -> int:
    """Deprecated entry point; delegates to ``python -m repro run table5``."""
    from repro.cli import deprecated_main

    return deprecated_main("table5", argv)


if __name__ == "__main__":
    raise SystemExit(main())
