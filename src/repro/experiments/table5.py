"""Table 5: line coverage of CoverMe versus Rand and AFL."""

from __future__ import annotations

import argparse

from repro.experiments.runner import PROFILES, ComparisonRow, Profile, mean
from repro.experiments.table2 import run as run_table2

TOOLS = ("Rand", "AFL", "CoverMe")


def run(profile: Profile, cases=None) -> list[ComparisonRow]:
    """Same tool runs as Table 2 but with line-coverage measurement enabled."""
    return run_table2(profile, cases=cases, measure_lines=True)


def line_percent(row: ComparisonRow, tool: str) -> float:
    summary = row.results.get(tool)
    if summary is None or summary.n_lines == 0:
        return float("nan")
    return summary.line_coverage_percent


def summarize(rows: list[ComparisonRow]) -> dict[str, float]:
    return {tool: mean([line_percent(row, tool) for row in rows]) for tool in TOOLS}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", choices=sorted(PROFILES), default="smoke")
    args = parser.parse_args()
    profile = PROFILES[args.profile]
    rows = run(profile)
    print(f"Table 5 reproduction (profile={profile.name}): line coverage (%)")
    header = f"{'File':<16s}{'Function':<34s}" + "".join(f"{t:>10s}" for t in TOOLS) + f"{'Paper':>10s}"
    print(header)
    for row in rows:
        line = f"{row.case.file:<16s}{row.case.function:<34s}"
        for tool in TOOLS:
            line += f"{line_percent(row, tool):>10.1f}"
        paper = row.case.paper.coverme_line
        line += f"{paper if paper is not None else float('nan'):>10.1f}"
        print(line)
    summary = summarize(rows)
    print(
        f"\nMeans: Rand {summary['Rand']:.1f}%  AFL {summary['AFL']:.1f}%  CoverMe {summary['CoverMe']:.1f}% "
        f"(paper: 54.2 / 87.0 / 97.0)"
    )


if __name__ == "__main__":
    main()
