"""``python -m repro``: the unified experiment-pipeline command line."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
