"""Port of Fdlibm 5.3 ``s_cos.c``: the ``cos`` entry point."""

from __future__ import annotations

from repro.fdlibm.e_rem_pio2 import ieee754_rem_pio2
from repro.fdlibm.bits import abs_high_word
from repro.fdlibm.k_cos import kernel_cos
from repro.fdlibm.k_sin import kernel_sin


def fdlibm_cos(x: float) -> float:
    """``cos(x)``: dispatch on ``|x|`` then reduce modulo pi/2."""
    ix = abs_high_word(x)
    if ix <= 0x3FE921FB:  # |x| <= pi/4
        return kernel_cos(x, 0.0)
    if ix >= 0x7FF00000:  # cos(inf or NaN) is NaN
        return x - x
    n, y0, y1 = ieee754_rem_pio2(x)
    quadrant = n & 3
    if quadrant == 0:
        return kernel_cos(y0, y1)
    if quadrant == 1:
        return -kernel_sin(y0, y1, 1)
    if quadrant == 2:
        return -kernel_cos(y0, y1)
    return kernel_sin(y0, y1, 1)
