"""Port of Fdlibm 5.3 ``s_nextafter.c``: next representable double after x towards y."""

from __future__ import annotations

from repro.fdlibm.bits import from_words, high_word, low_word


def fdlibm_nextafter(x: float, y: float) -> float:
    """``nextafter(x, y)`` by incrementing/decrementing the bit pattern of x."""
    hx = high_word(x)
    lx = low_word(x)
    hy = high_word(y)
    ly = low_word(y)
    ix = hx & 0x7FFFFFFF
    iy = hy & 0x7FFFFFFF

    if (ix >= 0x7FF00000 and ((ix - 0x7FF00000) | lx) != 0) or (
        iy >= 0x7FF00000 and ((iy - 0x7FF00000) | ly) != 0
    ):  # x or y is NaN
        return x + y
    if x == y:
        return x  # x == y, return x
    if (ix | lx) == 0:  # x == 0
        x = from_words(hy & 0x80000000, 1)  # return +-minsubnormal
        y = x * x  # raise underflow flag
        if y == x:
            return y
        return x
    if hx >= 0:  # x > 0
        if hx > hy or (hx == hy and lx > ly):  # x > y, x -= ulp
            if lx == 0:
                hx -= 1
            lx = (lx - 1) & 0xFFFFFFFF
        else:  # x < y, x += ulp
            lx = (lx + 1) & 0xFFFFFFFF
            if lx == 0:
                hx += 1
    else:  # x < 0
        if hy >= 0 or hx > hy or (hx == hy and lx > ly):  # x < y, x -= ulp
            if lx == 0:
                hx -= 1
            lx = (lx - 1) & 0xFFFFFFFF
        else:  # x > y, x += ulp
            lx = (lx + 1) & 0xFFFFFFFF
            if lx == 0:
                hx += 1
    hy = hx & 0x7FF00000
    if hy >= 0x7FF00000:
        return x + x  # overflow
    if hy < 0x00100000:  # underflow
        y = x * x  # raise underflow flag
        if y != x:  # raise underflow flag
            return from_words(hx, lx)
    return from_words(hx, lx)
