"""Port of Fdlibm 5.3 ``e_hypot.c``: ``__ieee754_hypot(x, y)``."""

from __future__ import annotations

from repro.fdlibm.bits import high_word, low_word, set_high_word
from repro.fdlibm.e_sqrt import ieee754_sqrt


def ieee754_hypot(x: float, y: float) -> float:
    """``__ieee754_hypot(x, y)`` = sqrt(x*x + y*y) without spurious overflow."""
    ha = high_word(x) & 0x7FFFFFFF
    hb = high_word(y) & 0x7FFFFFFF
    if hb > ha:
        a, b = y, x
        ha, hb = hb, ha
    else:
        a, b = x, y
    a = set_high_word(a, ha)  # a <- |a|
    b = set_high_word(b, hb)  # b <- |b|
    if (ha - hb) > 0x3C00000:  # x/y > 2**60
        return a + b
    k = 0
    if ha > 0x5F300000:  # a > 2**500
        if ha >= 0x7FF00000:  # inf or NaN
            w = a + b  # for signalling NaN
            if ((ha & 0xFFFFF) | low_word(a)) == 0:
                w = a
            if ((hb ^ 0x7FF00000) | low_word(b)) == 0:
                w = b
            return w
        # Scale a and b by 2**-600.
        ha -= 0x25800000
        hb -= 0x25800000
        k += 600
        a = set_high_word(a, ha)
        b = set_high_word(b, hb)
    if hb < 0x20B00000:  # b < 2**-500
        if hb <= 0x000FFFFF:  # subnormal b or 0
            if (hb | low_word(b)) == 0:
                return a
            t1 = set_high_word(0.0, 0x7FD00000)  # t1 = 2**1022
            b *= t1
            a *= t1
            k -= 1022
        else:  # scale a and b by 2**600
            ha += 0x25800000
            hb += 0x25800000
            k -= 600
            a = set_high_word(a, ha)
            b = set_high_word(b, hb)
    # Medium-size a and b.
    w = a - b
    if w > b:
        t1 = set_high_word(0.0, ha)
        t2 = a - t1
        w = ieee754_sqrt(t1 * t1 - (b * (-b) - t2 * (a + t1)))
    else:
        a = a + a
        y1 = set_high_word(0.0, hb)
        y2 = b - y1
        t1 = set_high_word(0.0, ha + 0x00100000)
        t2 = a - t1
        w = ieee754_sqrt(t1 * y1 - (w * (-w) - (t1 * y2 + t2 * b)))
    if k != 0:
        t1 = set_high_word(1.0, high_word(1.0) + (k << 20))
        return t1 * w
    return w
