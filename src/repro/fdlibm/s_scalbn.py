"""Port of Fdlibm 5.3 ``s_scalbn.c``: ``scalbn(x, n)`` helper.

Excluded from the benchmarks (its second parameter is an ``int``, Table 4)
but required by ``e_scalb`` and ``e_pow``.
"""

from __future__ import annotations

from repro.fdlibm.bits import high_word, low_word, set_high_word

TWO54 = 1.80143985094819840000e16
TWOM54 = 5.55111512312578270212e-17
HUGE = 1.0e300
TINY = 1.0e-300


def fdlibm_scalbn(x: float, n: int) -> float:
    """``scalbn(x, n)`` = x * 2**n computed by exponent manipulation."""
    hx = high_word(x)
    lx = low_word(x)
    k = (hx & 0x7FF00000) >> 20  # extract exponent
    if k == 0:  # 0 or subnormal x
        if (lx | (hx & 0x7FFFFFFF)) == 0:
            return x  # +-0
        x *= TWO54
        hx = high_word(x)
        k = ((hx & 0x7FF00000) >> 20) - 54
        if n < -50000:
            return TINY * x  # underflow
    if k == 0x7FF:
        return x + x  # NaN or inf
    k = k + n
    if k > 0x7FE:
        return HUGE * math_copysign(HUGE, x)  # overflow
    if k > 0:  # normal result
        return set_high_word(x, (hx & 0x800FFFFF) | (k << 20))
    if k <= -54:
        if n > 50000:  # in case of integer overflow in n + k
            return HUGE * math_copysign(HUGE, x)  # overflow
        return TINY * math_copysign(TINY, x)  # underflow
    k += 54  # subnormal result
    x = set_high_word(x, (hx & 0x800FFFFF) | (k << 20))
    return x * TWOM54


def math_copysign(magnitude: float, sign: float) -> float:
    """``copysign`` helper used by :func:`fdlibm_scalbn`."""
    import math

    return math.copysign(magnitude, sign)
