"""Port of Fdlibm 5.3 ``e_acosh.c``: ``__ieee754_acosh``."""

from __future__ import annotations

from repro.fdlibm.bits import high_word, low_word
from repro.fdlibm.e_log import ieee754_log
from repro.fdlibm.e_sqrt import ieee754_sqrt
from repro.fdlibm.s_log1p import fdlibm_log1p

ONE = 1.0
LN2 = 6.93147180559945286227e-01


def ieee754_acosh(x: float) -> float:
    """``__ieee754_acosh(x)``: inverse hyperbolic cosine on ``[1, inf)``."""
    hx = high_word(x)
    if hx < 0x3FF00000:  # x < 1
        return float("nan")
    if hx >= 0x41B00000:  # x > 2**28
        if hx >= 0x7FF00000:  # x is inf or NaN
            return x + x
        return ieee754_log(x) + LN2  # acosh(huge) = log(2x)
    if ((hx - 0x3FF00000) | low_word(x)) == 0:
        return 0.0  # acosh(1) = 0
    if hx > 0x40000000:  # 2**28 > x > 2
        t = x * x
        return ieee754_log(2.0 * x - ONE / (x + ieee754_sqrt(t - ONE)))
    # 1 < x < 2
    t = x - ONE
    return fdlibm_log1p(t + ieee754_sqrt(2.0 * t + t * t))
