"""Port of Fdlibm 5.3 ``s_tan.c``: the ``tan`` entry point."""

from __future__ import annotations

from repro.fdlibm.e_rem_pio2 import ieee754_rem_pio2
from repro.fdlibm.bits import abs_high_word
from repro.fdlibm.k_tan import kernel_tan


def fdlibm_tan(x: float) -> float:
    """``tan(x)``: dispatch on ``|x|`` then reduce modulo pi/2."""
    ix = abs_high_word(x)
    if ix <= 0x3FE921FB:  # |x| <= pi/4
        return kernel_tan(x, 0.0, 1)
    if ix >= 0x7FF00000:  # tan(inf or NaN) is NaN
        return x - x
    n, y0, y1 = ieee754_rem_pio2(x)
    # +1 for even n, -1 for odd n: tan(x+n*pi/2) = tan(x) or -1/tan(x).
    return kernel_tan(y0, y1, 1 - ((n & 1) << 1))
