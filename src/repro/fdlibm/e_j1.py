"""Port of Fdlibm 5.3 ``e_j1.c``: Bessel functions ``j1`` and ``y1``.

Same porting convention as :mod:`repro.fdlibm.e_j0`: every conditional of the
original is preserved; straight-line rational-approximation leaves are
computed through ``scipy.special``.
"""

from __future__ import annotations

from scipy import special as _special

from repro.fdlibm.bits import fabs, high_word, low_word
from repro.fdlibm.e_sqrt import ieee754_sqrt
from repro.fdlibm.s_cos import fdlibm_cos
from repro.fdlibm.s_sin import fdlibm_sin

ONE = 1.0
ZERO = 0.0
HUGE = 1.0e300
INVSQRTPI = 5.64189583547756279280e-01


def ieee754_j1(x: float) -> float:
    """``__ieee754_j1(x)``: Bessel function of the first kind, order 1."""
    hx = high_word(x)
    ix = hx & 0x7FFFFFFF
    if ix >= 0x7FF00000:  # j1(NaN) = NaN, j1(+-inf) = 0
        return ONE / x
    y = fabs(x)
    if ix >= 0x40000000:  # |x| >= 2.0
        s = fdlibm_sin(y)
        c = fdlibm_cos(y)
        ss = -s - c
        cc = s - c
        if ix < 0x7FE00000:  # make sure y+y does not overflow
            z = fdlibm_cos(y + y)
            if (s * c) > ZERO:
                cc = z / ss
            else:
                ss = z / cc
        # j1(x) = 1/sqrt(pi) * (P(1,x)*cc - Q(1,x)*ss) / sqrt(x)
        if ix > 0x48000000:  # |x| > 2**129
            z = (INVSQRTPI * cc) / ieee754_sqrt(y)
        else:
            z = float(_special.j1(y))  # leaf value of the pone/qone formula
        if hx < 0:
            return -z
        return z
    if ix < 0x3E400000:  # |x| < 2**-27
        if HUGE + x > ONE:  # inexact if x != 0
            return 0.5 * x
    return float(_special.j1(x))  # leaf value of the r/s rational form


def ieee754_y1(x: float) -> float:
    """``__ieee754_y1(x)``: Bessel function of the second kind, order 1."""
    hx = high_word(x)
    ix = 0x7FFFFFFF & hx
    lx = low_word(x)
    if ix >= 0x7FF00000:  # y1(NaN) = NaN, y1(inf) = 0
        return ONE / (x + x * x)
    if (ix | lx) == 0:  # y1(0) = -inf
        return float("-inf")
    if hx < 0:  # y1(x < 0) = NaN
        return float("nan")
    if ix >= 0x40000000:  # |x| >= 2.0
        s = fdlibm_sin(x)
        c = fdlibm_cos(x)
        ss = -s - c
        cc = s - c
        if ix < 0x7FE00000:  # make sure x+x does not overflow
            z = fdlibm_cos(x + x)
            if (s * c) > ZERO:
                cc = z / ss
            else:
                ss = z / cc
        if ix > 0x48000000:  # |x| > 2**129
            z = (INVSQRTPI * ss) / ieee754_sqrt(x)
        else:
            z = float(_special.y1(x))  # leaf value of the pone/qone formula
        return z
    if ix <= 0x3C900000:  # x < 2**-54
        return float("-inf") if x == 0.0 else float(_special.y1(x))
    return float(_special.y1(x))  # leaf value of the u/v rational form
