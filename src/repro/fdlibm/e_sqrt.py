"""Port of Fdlibm 5.3 ``e_sqrt.c``: bit-by-bit square root.

The original computes the square root one bit at a time with 32-bit integer
arithmetic; the port reproduces that algorithm (with explicit masking where C
relies on fixed-width wraparound), so the long chain of data-dependent
branches the paper's Table 2 reports (46) is preserved.
"""

from __future__ import annotations

from repro.fdlibm.bits import from_words, high_word, low_word

ONE = 1.0
TINY = 1.0e-300
SIGN = 0x80000000
MASK32 = 0xFFFFFFFF


def ieee754_sqrt(x: float) -> float:
    """``__ieee754_sqrt(x)``: correctly-rounded square root, bit by bit."""
    ix0 = high_word(x)
    ix1 = low_word(x)

    # Take care of inf and NaN.
    if (ix0 & 0x7FF00000) == 0x7FF00000:
        return x * x + x  # sqrt(NaN) = NaN, sqrt(+inf) = +inf, sqrt(-inf) = NaN
    # Take care of zero and negative arguments.
    if ix0 <= 0:
        if ((ix0 & (~SIGN & MASK32)) | ix1) == 0:
            return x  # sqrt(+-0) = +-0
        if ix0 < 0:
            return float("nan")  # sqrt(negative) = NaN
    # Normalize x.
    m = ix0 >> 20
    if m == 0:  # subnormal x
        while ix0 == 0:
            m -= 21
            ix0 |= ix1 >> 11
            ix1 = (ix1 << 21) & MASK32
        i = 0
        while (ix0 & 0x00100000) == 0:
            ix0 = (ix0 << 1) & MASK32
            i += 1
        m -= i - 1
        ix0 |= ix1 >> (32 - i) if i > 0 else 0
        ix1 = (ix1 << i) & MASK32
    m -= 1023  # unbias exponent
    ix0 = (ix0 & 0x000FFFFF) | 0x00100000
    if m & 1:  # odd m, double x to make it even
        ix0 = (ix0 + ix0 + ((ix1 & SIGN) >> 31)) & MASK32
        ix1 = (ix1 + ix1) & MASK32
    m >>= 1  # m = [m/2]

    # Generate sqrt(x) bit by bit.
    ix0 = (ix0 + ix0 + ((ix1 & SIGN) >> 31)) & MASK32
    ix1 = (ix1 + ix1) & MASK32
    q = q1 = s0 = s1 = 0
    r = 0x00200000
    while r != 0:
        t = s0 + r
        if t <= ix0:
            s0 = t + r
            ix0 -= t
            q += r
        ix0 = (ix0 + ix0 + ((ix1 & SIGN) >> 31)) & MASK32
        ix1 = (ix1 + ix1) & MASK32
        r >>= 1
    r = SIGN
    while r != 0:
        t1 = (s1 + r) & MASK32
        t = s0
        if t < ix0 or (t == ix0 and t1 <= ix1):
            s1 = (t1 + r) & MASK32
            if (t1 & SIGN) == SIGN and (s1 & SIGN) == 0:
                s0 += 1
            ix0 -= t
            if ix1 < t1:
                ix0 -= 1
            ix1 = (ix1 - t1) & MASK32
            q1 = (q1 + r) & MASK32
        ix0 = (ix0 + ix0 + ((ix1 & SIGN) >> 31)) & MASK32
        ix1 = (ix1 + ix1) & MASK32
        r >>= 1

    # Use floating add to find out rounding direction.
    if (ix0 | ix1) != 0:
        z = ONE - TINY  # trigger inexact flag
        if z >= ONE:
            z = ONE + TINY
            if q1 == 0xFFFFFFFF:
                q1 = 0
                q += 1
            elif z > ONE:
                if q1 == 0xFFFFFFFE:
                    q += 1
                q1 = (q1 + 2) & MASK32
            else:
                q1 += q1 & 1
    ix0 = (q >> 1) + 0x3FE00000
    ix1 = q1 >> 1
    if (q & 1) == 1:
        ix1 |= SIGN
    ix0 += m << 20
    return from_words(ix0, ix1)
