"""Port of Fdlibm 5.3 ``s_ilogb.c``: binary exponent of x as an int."""

from __future__ import annotations

from repro.fdlibm.bits import high_word, low_word

FP_ILOGB0 = -2147483648  # 0x80000001 in some libms; Fdlibm returns INT_MIN
FP_ILOGBNAN = 0x7FFFFFFF


def fdlibm_ilogb(x: float) -> int:
    """``ilogb(x)``: unbiased exponent, with the original's subnormal loops."""
    hx = high_word(x) & 0x7FFFFFFF
    if hx < 0x00100000:
        lx = low_word(x)
        if (hx | lx) == 0:
            return FP_ILOGB0  # ilogb(0) = INT_MIN
        if hx == 0:  # subnormal x, x < 2**-1042
            ix = -1043
            i = lx
            while i > 0:
                ix -= 1
                i = (i << 1) & 0xFFFFFFFF
                if i >= 0x80000000:
                    break
            return ix
        ix = -1022
        i = hx << 11
        while (i & 0x80000000) == 0 and i != 0:
            ix -= 1
            i = (i << 1) & 0xFFFFFFFF
        return ix
    if hx < 0x7FF00000:
        return (hx >> 20) - 1023
    return FP_ILOGBNAN  # NaN or inf
