"""Port of Fdlibm 5.3 ``e_log.c``: ``__ieee754_log``."""

from __future__ import annotations

import math

from repro.fdlibm.bits import high_word, low_word, set_high_word

LN2_HI = 6.93147180369123816490e-01
LN2_LO = 1.90821492927058770002e-10
TWO54 = 1.80143985094819840000e16
LG1 = 6.666666666666735130e-01
LG2 = 3.999999999940941908e-01
LG3 = 2.857142874366239149e-01
LG4 = 2.222219843214978396e-01
LG5 = 1.818357216161805012e-01
LG6 = 1.531383769920937332e-01
LG7 = 1.479819860511658591e-01
ZERO = 0.0


def ieee754_log(x: float) -> float:
    """``__ieee754_log(x)`` with the original's subnormal/exponent branches."""
    hx = high_word(x)
    lx = low_word(x)
    k = 0
    if hx < 0x00100000:  # x < 2**-1022
        if ((hx & 0x7FFFFFFF) | lx) == 0:
            return -TWO54 / ZERO if False else float("-inf")  # log(+-0) = -inf
        if hx < 0:
            return (x - x) / ZERO if False else float("nan")  # log(-#) = NaN
        k -= 54
        x *= TWO54  # scale up subnormal x
        hx = high_word(x)
    if hx >= 0x7FF00000:  # x is inf or NaN
        return x + x
    k += (hx >> 20) - 1023
    hx &= 0x000FFFFF
    i = (hx + 0x95F64) & 0x100000
    x = set_high_word(x, hx | (i ^ 0x3FF00000))  # normalize x or x/2
    k += i >> 20
    f = x - 1.0
    if (0x000FFFFF & (2 + hx)) < 3:  # |f| < 2**-20
        if f == ZERO:
            if k == 0:
                return ZERO
            dk = float(k)
            return dk * LN2_HI + dk * LN2_LO
        r = f * f * (0.5 - 0.33333333333333333 * f)
        if k == 0:
            return f - r
        dk = float(k)
        return dk * LN2_HI - ((r - dk * LN2_LO) - f)
    s = f / (2.0 + f)
    dk = float(k)
    z = s * s
    i = hx - 0x6147A
    w = z * z
    j = 0x6B851 - hx
    t1 = w * (LG2 + w * (LG4 + w * LG6))
    t2 = z * (LG1 + w * (LG3 + w * (LG5 + w * LG7)))
    i |= j
    r = t2 + t1
    if i > 0:
        hfsq = 0.5 * f * f
        if k == 0:
            return f - (hfsq - s * (hfsq + r))
        return dk * LN2_HI - ((hfsq - (s * (hfsq + r) + dk * LN2_LO)) - f)
    if k == 0:
        return f - s * (f - r)
    return dk * LN2_HI - ((s * (f - r) - dk * LN2_LO) - f)
