"""Port of Fdlibm 5.3 ``s_expm1.c``: ``exp(x) - 1`` with full branch structure."""

from __future__ import annotations

import math

from repro.fdlibm.bits import high_word, low_word, set_high_word

ONE = 1.0
HUGE = 1.0e300
TINY = 1.0e-300
O_THRESHOLD = 7.09782712893383973096e02
LN2_HI = 6.93147180369123816490e-01
LN2_LO = 1.90821492927058770002e-10
INVLN2 = 1.44269504088896338700e00
Q1 = -3.33333333333331316428e-02
Q2 = 1.58730158725481460165e-03
Q3 = -7.93650757867487942473e-05
Q4 = 4.00821782732936239552e-06
Q5 = -2.01099218183624371326e-07


def fdlibm_expm1(x: float) -> float:
    """``expm1(x)`` following the argument-reduction branches of the original."""
    hx = high_word(x)
    xsb = hx & 0x80000000  # sign bit of x
    hx &= 0x7FFFFFFF  # high word of |x|

    # Filter out huge and non-finite arguments.
    if hx >= 0x4043687A:  # |x| >= 56 * ln2
        if hx >= 0x40862E42:  # |x| >= 709.78...
            if hx >= 0x7FF00000:
                if ((hx & 0xFFFFF) | low_word(x)) != 0:
                    return x + x  # NaN
                if xsb == 0:
                    return x  # expm1(+inf) = inf
                return -1.0  # expm1(-inf) = -1
            if x > O_THRESHOLD:
                return HUGE * HUGE  # overflow
        if xsb != 0:  # x < -56*ln2, expm1(x) = -1 with inexact
            if x + TINY < 0.0:  # raise inexact
                return TINY - ONE
    # Argument reduction.
    k = 0
    c = 0.0
    if hx > 0x3FD62E42:  # |x| > 0.5 ln2
        if hx < 0x3FF0A2B2:  # |x| < 1.5 ln2
            if xsb == 0:
                hi = x - LN2_HI
                lo = LN2_LO
                k = 1
            else:
                hi = x + LN2_HI
                lo = -LN2_LO
                k = -1
        else:
            k = int(INVLN2 * x + (0.5 if xsb == 0 else -0.5))
            t = float(k)
            hi = x - t * LN2_HI
            lo = t * LN2_LO
        x = hi - lo
        c = (hi - x) - lo
    elif hx < 0x3C900000:  # |x| < 2**-54, return x itself
        t = HUGE + x  # raise inexact
        return x - (t - (HUGE + x))
    else:
        k = 0
    # x is now in the primary range.
    hfx = 0.5 * x
    hxs = x * hfx
    r1 = ONE + hxs * (Q1 + hxs * (Q2 + hxs * (Q3 + hxs * (Q4 + hxs * Q5))))
    t = 3.0 - r1 * hfx
    e = hxs * ((r1 - t) / (6.0 - x * t))
    if k == 0:
        return x - (x * e - hxs)  # c is 0 in this case
    e = x * (e - c) - c
    e -= hxs
    if k == -1:
        return 0.5 * (x - e) - 0.5
    if k == 1:
        if x < -0.25:
            return -2.0 * (e - (x + 0.5))
        return ONE + 2.0 * (x - e)
    if k <= -2 or k > 56:  # suffices to return exp(x) - 1
        y = ONE - (e - x)
        y = set_high_word(y, high_word(y) + (k << 20))  # add k to y's exponent
        return y - ONE
    t = ONE
    if k < 20:
        t = set_high_word(t, 0x3FF00000 - (0x200000 >> k))  # t = 1 - 2**-k
        y = t - (e - x)
        y = set_high_word(y, high_word(y) + (k << 20))
    else:
        t = set_high_word(t, (0x3FF - k) << 20)  # t = 2**-k
        y = x - (e + t)
        y += ONE
        y = set_high_word(y, high_word(y) + (k << 20))
    return y
