"""Port of Fdlibm 5.3 ``e_asin.c``: ``__ieee754_asin``."""

from __future__ import annotations

from repro.fdlibm.bits import fabs, high_word, low_word, set_low_word
from repro.fdlibm.e_sqrt import ieee754_sqrt

ONE = 1.0
HUGE = 1.0e300
PIO2_HI = 1.57079632679489655800e00
PIO2_LO = 6.12323399573676603587e-17
PIO4_HI = 7.85398163397448278999e-01
PS0 = 1.66666666666666657415e-01
PS1 = -3.25565818622400915405e-01
PS2 = 2.01212532134862925881e-01
PS3 = -4.00555345006794114027e-02
PS4 = 7.91534994289814532176e-04
PS5 = 3.47933107596021167570e-05
QS1 = -2.40339491173441421878e00
QS2 = 2.02094576023350569471e00
QS3 = -6.88283971605453293030e-01
QS4 = 7.70381505559019352791e-02


def _rational(t: float) -> float:
    p = t * (PS0 + t * (PS1 + t * (PS2 + t * (PS3 + t * (PS4 + t * PS5)))))
    q = ONE + t * (QS1 + t * (QS2 + t * (QS3 + t * QS4)))
    return p / q


def ieee754_asin(x: float) -> float:
    """``__ieee754_asin(x)``: arc sine on ``[-1, 1]``."""
    hx = high_word(x)
    ix = hx & 0x7FFFFFFF
    if ix >= 0x3FF00000:  # |x| >= 1
        if ((ix - 0x3FF00000) | low_word(x)) == 0:
            return x * PIO2_HI + x * PIO2_LO  # asin(+-1) = +-pi/2
        return float("nan")  # asin(|x| > 1) is NaN
    if ix < 0x3FE00000:  # |x| < 0.5
        if ix < 0x3E400000:  # |x| < 2**-27
            if HUGE + x > ONE:  # return x with inexact if x != 0
                return x
        t = x * x
        w = _rational(t)
        return x + x * w
    # 1 > |x| >= 0.5
    w = ONE - fabs(x)
    t = w * 0.5
    s = ieee754_sqrt(t)
    if ix >= 0x3FEF3333:  # |x| > 0.975
        w = _rational(t)
        t = PIO2_HI - (2.0 * (s + s * w) - PIO2_LO)
    else:
        w = set_low_word(s, 0)
        c = (t - w * w) / (s + w)
        r = _rational(t)
        p = 2.0 * s * r - (PIO2_LO - 2.0 * c)
        q = PIO4_HI - 2.0 * w
        t = PIO4_HI - (p - q)
    if hx > 0:
        return t
    return -t
