"""Port of Fdlibm 5.3 ``s_asinh.c``: inverse hyperbolic sine."""

from __future__ import annotations

from repro.fdlibm.bits import fabs, high_word
from repro.fdlibm.e_log import ieee754_log
from repro.fdlibm.e_sqrt import ieee754_sqrt
from repro.fdlibm.s_log1p import fdlibm_log1p

ONE = 1.0
HUGE = 1.0e300
LN2 = 6.93147180559945286227e-01


def fdlibm_asinh(x: float) -> float:
    """``asinh(x)`` = sign(x) * log(|x| + sqrt(x*x + 1))."""
    hx = high_word(x)
    ix = hx & 0x7FFFFFFF
    if ix >= 0x7FF00000:  # x is inf or NaN
        return x + x
    if ix < 0x3E300000:  # |x| < 2**-28
        if HUGE + x > ONE:  # return x inexact except 0
            return x
    if ix > 0x41B00000:  # |x| > 2**28
        w = ieee754_log(fabs(x)) + LN2
    elif ix > 0x40000000:  # 2**28 > |x| > 2.0
        t = fabs(x)
        w = ieee754_log(2.0 * t + ONE / (ieee754_sqrt(x * x + ONE) + t))
    else:  # 2.0 > |x| > 2**-28
        t = x * x
        w = fdlibm_log1p(fabs(x) + t / (ONE + ieee754_sqrt(ONE + t)))
    if hx > 0:
        return w
    return -w
