"""The 40-function Fdlibm benchmark suite of the paper (Table 2).

Each :class:`BenchmarkCase` binds one row of Table 2/3/5 to the Python port of
the corresponding entry function, together with the paper's reference numbers
so the experiment harnesses can print paper-vs-measured comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.fdlibm.e_acos import ieee754_acos
from repro.fdlibm.e_acosh import ieee754_acosh
from repro.fdlibm.e_asin import ieee754_asin
from repro.fdlibm.e_atan2 import ieee754_atan2
from repro.fdlibm.e_atanh import ieee754_atanh
from repro.fdlibm.e_cosh import ieee754_cosh
from repro.fdlibm.e_exp import ieee754_exp
from repro.fdlibm.e_fmod import ieee754_fmod
from repro.fdlibm.e_hypot import ieee754_hypot
from repro.fdlibm.e_j0 import ieee754_j0, ieee754_y0
from repro.fdlibm.e_j1 import ieee754_j1, ieee754_y1
from repro.fdlibm.e_log import ieee754_log
from repro.fdlibm.e_log10 import ieee754_log10
from repro.fdlibm.e_pow import ieee754_pow
from repro.fdlibm.e_rem_pio2 import ieee754_rem_pio2
from repro.fdlibm.e_remainder import ieee754_remainder
from repro.fdlibm.e_scalb import ieee754_scalb
from repro.fdlibm.e_sinh import ieee754_sinh
from repro.fdlibm.e_sqrt import ieee754_sqrt
from repro.fdlibm.k_cos import kernel_cos
from repro.fdlibm.k_sin import kernel_sin
from repro.fdlibm.k_tan import kernel_tan
from repro.fdlibm.s_asinh import fdlibm_asinh
from repro.fdlibm.s_atan import fdlibm_atan
from repro.fdlibm.s_cbrt import fdlibm_cbrt
from repro.fdlibm.s_ceil import fdlibm_ceil
from repro.fdlibm.s_cos import fdlibm_cos
from repro.fdlibm.s_erf import fdlibm_erf, fdlibm_erfc
from repro.fdlibm.s_expm1 import fdlibm_expm1
from repro.fdlibm.s_floor import fdlibm_floor
from repro.fdlibm.s_ilogb import fdlibm_ilogb
from repro.fdlibm.s_log1p import fdlibm_log1p
from repro.fdlibm.s_logb import fdlibm_logb
from repro.fdlibm.s_modf import fdlibm_modf
from repro.fdlibm.s_nextafter import fdlibm_nextafter
from repro.fdlibm.s_rint import fdlibm_rint
from repro.fdlibm.s_scalbn import fdlibm_scalbn
from repro.fdlibm.s_sin import fdlibm_sin
from repro.fdlibm.s_tan import fdlibm_tan
from repro.fdlibm.s_tanh import fdlibm_tanh


@dataclass(frozen=True)
class PaperReference:
    """Reference numbers reported by the paper for one benchmark function.

    ``None`` entries correspond to the paper's "timeout", "crash" or "n/a"
    cells of Table 3.
    """

    branches: int
    rand_branch: float
    afl_branch: float
    coverme_branch: float
    coverme_time: float
    austin_branch: Optional[float] = None
    austin_time: Optional[float] = None
    coverme_line: Optional[float] = None


#: Half-width of the default per-dimension input box (the signature box the
#: experiments have always used); cases that do not declare their own domain
#: sample starting points and random inputs from ``[-BOUND, BOUND]``.
DEFAULT_INPUT_BOUND = 1.0e6


@dataclass(frozen=True)
class BenchmarkCase:
    """One row of the paper's benchmark tables bound to its Python port.

    ``extras`` lists the helper callees whose branches the paper's Gcov
    numbers include ("Handling Function Calls", Sect. 5.3); they are handed
    to ``instrument(extra_functions=...)`` so their conditionals are labeled
    after the entry function's and counted in the same program.

    ``low``/``high`` optionally declare a per-case input domain for
    domain-sensitive entries (e.g. ``scalb``'s second argument is a binary
    exponent, ``pow``'s second argument overflows everything outside a
    narrow band); ``None`` keeps the historical
    ``[-DEFAULT_INPUT_BOUND, DEFAULT_INPUT_BOUND]`` box.  The domain reaches
    every sampler that reads the program signature's box: Rand's uniform
    inputs, Austin's random restarts, and CoverMe's ``latin-hypercube`` /
    ``signature-box`` start strategies (``random-normal`` starts and AFL's
    byte-level mutation are box-free by construction).  It is also part of
    the run store's job fingerprint: changing it invalidates cached runs of
    the case.
    """

    file: str
    function: str
    entry: Callable = field(repr=False)
    arity: int
    paper: PaperReference
    extras: tuple[Callable, ...] = field(default=(), repr=False)
    low: Optional[tuple[float, ...]] = None
    high: Optional[tuple[float, ...]] = None

    @property
    def key(self) -> str:
        return f"{self.file}:{self.function}"

    def domain(self) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """Per-dimension ``(low, high)`` sampling bounds for this case."""
        low = self.low if self.low is not None else tuple([-DEFAULT_INPUT_BOUND] * self.arity)
        high = self.high if self.high is not None else tuple([DEFAULT_INPUT_BOUND] * self.arity)
        if len(low) != self.arity or len(high) != self.arity:
            raise ValueError(f"domain bounds of {self.key} must match arity {self.arity}")
        return tuple(float(v) for v in low), tuple(float(v) for v in high)


def _case(file, function, entry, arity, *paper_values, extras=(), low=None, high=None) -> BenchmarkCase:
    return BenchmarkCase(
        file=file,
        function=function,
        entry=entry,
        arity=arity,
        paper=PaperReference(*paper_values),
        extras=tuple(extras),
        low=low,
        high=high,
    )


#: The full benchmark suite, in the order of Table 2.  Reference columns:
#: branches, Rand %, AFL %, CoverMe %, CoverMe time (s), Austin %, Austin
#: time (s), CoverMe line %.
BENCHMARKS: tuple[BenchmarkCase, ...] = (
    _case("e_acos.c", "ieee754_acos(double)", ieee754_acos, 1, 12, 16.7, 100.0, 100.0, 7.8, 16.7, 6058.8, 100.0),
    _case("e_acosh.c", "ieee754_acosh(double)", ieee754_acosh, 1, 10, 40.0, 100.0, 90.0, 2.3, 40.0, 2016.4, 93.3),
    _case("e_asin.c", "ieee754_asin(double)", ieee754_asin, 1, 14, 14.3, 85.7, 92.9, 8.0, 14.3, 6935.6, 100.0),
    _case("e_atan2.c", "ieee754_atan2(double,double)", ieee754_atan2, 2, 44, 34.1, 86.4, 63.6, 17.4, 34.1, 14456.0, 79.5),
    _case("e_atanh.c", "ieee754_atanh(double)", ieee754_atanh, 1, 12, 8.8, 75.0, 91.7, 8.1, 8.3, 4033.8, 100.0),
    _case("e_cosh.c", "ieee754_cosh(double)", ieee754_cosh, 1, 16, 37.5, 81.3, 93.8, 8.2, 37.5, 27334.5, 100.0),
    _case("e_exp.c", "ieee754_exp(double)", ieee754_exp, 1, 24, 20.8, 83.3, 96.7, 8.4, 75.0, 2952.1, 96.8),
    _case("e_fmod.c", "ieee754_fmod(double,double)", ieee754_fmod, 2, 60, 48.3, 53.3, 70.0, 22.1, None, None, 77.1),
    _case("e_hypot.c", "ieee754_hypot(double,double)", ieee754_hypot, 2, 22, 40.9, 54.5, 90.9, 15.6, 36.4, 5456.8, 100.0),
    _case("e_j0.c", "ieee754_j0(double)", ieee754_j0, 1, 18, 33.3, 88.9, 94.4, 9.0, 33.3, 6973.0, 100.0),
    _case("e_j0.c", "ieee754_y0(double)", ieee754_y0, 1, 16, 56.3, 75.0, 100.0, 0.7, 56.3, 5838.3, 100.0),
    _case("e_j1.c", "ieee754_j1(double)", ieee754_j1, 1, 16, 50.0, 75.0, 93.8, 10.2, 50.0, 4131.6, 100.0),
    _case("e_j1.c", "ieee754_y1(double)", ieee754_y1, 1, 16, 56.3, 75.0, 100.0, 0.7, 56.3, 5701.7, 100.0),
    _case("e_log.c", "ieee754_log(double)", ieee754_log, 1, 22, 59.1, 72.7, 90.9, 3.4, 59.1, 5109.0, 100.0),
    _case("e_log10.c", "ieee754_log10(double)", ieee754_log10, 1, 8, 62.5, 75.0, 87.5, 1.1, 62.5, 1175.5, 100.0),
    # pow's second argument is an exponent: |y| beyond ~1100 saturates every
    # finite x to overflow/underflow, so the search box keeps y in the band
    # where the algorithm's case ladder is actually exercised.
    _case("e_pow.c", "ieee754_pow(double,double)", ieee754_pow, 2, 114, 15.8, 88.6, 81.6, 18.8, None, None, 92.7, extras=(ieee754_sqrt,), low=(-1.0e6, -1100.0), high=(1.0e6, 1100.0)),
    _case("e_rem_pio2.c", "ieee754_rem_pio2(double,double*)", ieee754_rem_pio2, 1, 30, 33.3, 86.7, 93.3, 1.1, None, None, 92.2),
    _case("e_remainder.c", "ieee754_remainder(double,double)", ieee754_remainder, 2, 22, 45.5, 50.0, 100.0, 2.2, 45.5, 4629.0, 100.0),
    # scalb's second argument fn is a binary exponent; the guard ladder's
    # interesting thresholds (integrality, |fn| > 65000) all live within
    # +-70000, so the search box stays in that band instead of +-1e6.
    _case("e_scalb.c", "ieee754_scalb(double,double)", ieee754_scalb, 2, 14, 50.0, 42.9, 92.9, 8.5, 57.1, 1989.8, 100.0, extras=(fdlibm_rint, fdlibm_scalbn), low=(-1.0e6, -70000.0), high=(1.0e6, 70000.0)),
    _case("e_sinh.c", "ieee754_sinh(double)", ieee754_sinh, 1, 20, 35.0, 70.0, 95.0, 0.6, 35.0, 5534.8, 100.0),
    _case("e_sqrt.c", "ieee754_sqrt(double)", ieee754_sqrt, 1, 46, 69.6, 71.7, 82.6, 15.6, None, None, 94.1),
    _case("k_cos.c", "kernel_cos(double,double)", kernel_cos, 2, 8, 37.5, 87.5, 87.5, 15.4, 37.5, 1885.1, 100.0),
    _case("s_asinh.c", "asinh(double)", fdlibm_asinh, 1, 12, 41.7, 83.3, 91.7, 8.4, 41.7, 2439.1, 100.0),
    _case("s_atan.c", "atan(double)", fdlibm_atan, 1, 26, 19.2, 15.4, 88.5, 8.5, 26.9, 7584.7, 96.4),
    _case("s_cbrt.c", "cbrt(double)", fdlibm_cbrt, 1, 6, 50.0, 66.7, 83.3, 0.4, 50.0, 3583.4, 91.7),
    _case("s_ceil.c", "ceil(double)", fdlibm_ceil, 1, 30, 10.0, 83.3, 83.3, 8.8, 36.7, 7166.3, 100.0),
    _case("s_cos.c", "cos(double)", fdlibm_cos, 1, 8, 75.0, 87.5, 100.0, 0.4, 75.0, 669.4, 100.0, extras=(kernel_cos, kernel_sin, ieee754_rem_pio2)),
    _case("s_erf.c", "erf(double)", fdlibm_erf, 1, 20, 30.0, 85.0, 100.0, 9.0, 30.0, 28419.8, 100.0),
    _case("s_erf.c", "erfc(double)", fdlibm_erfc, 1, 24, 25.0, 79.2, 100.0, 0.1, 25.0, 6611.8, 100.0),
    _case("s_expm1.c", "expm1(double)", fdlibm_expm1, 1, 42, 21.4, 85.7, 97.6, 1.1, None, None, 100.0),
    _case("s_floor.c", "floor(double)", fdlibm_floor, 1, 30, 10.0, 83.3, 83.3, 10.1, 36.7, 7620.6, 100.0),
    _case("s_ilogb.c", "ilogb(double)", fdlibm_ilogb, 1, 12, 16.7, 16.7, 75.0, 8.3, 16.7, 3654.7, 91.7),
    _case("s_log1p.c", "log1p(double)", fdlibm_log1p, 1, 36, 38.9, 77.8, 88.9, 9.9, 61.1, 11913.7, 100.0),
    _case("s_logb.c", "logb(double)", fdlibm_logb, 1, 6, 50.0, 16.7, 83.3, 0.3, 50.0, 1064.4, 87.5),
    _case("s_modf.c", "modf(double,double*)", fdlibm_modf, 1, 10, 33.3, 80.0, 100.0, 3.5, 50.0, 1795.1, 100.0),
    _case("s_nextafter.c", "nextafter(double,double)", fdlibm_nextafter, 2, 44, 59.1, 65.9, 79.6, 17.5, 50.0, 7777.3, 88.9),
    _case("s_rint.c", "rint(double)", fdlibm_rint, 1, 20, 15.0, 75.0, 90.0, 3.0, 35.0, 5355.8, 100.0),
    _case("s_sin.c", "sin(double)", fdlibm_sin, 1, 8, 75.0, 87.5, 100.0, 0.3, 75.0, 667.1, 100.0, extras=(kernel_sin, kernel_cos, ieee754_rem_pio2)),
    _case("s_tan.c", "tan(double)", fdlibm_tan, 1, 4, 50.0, 75.0, 100.0, 0.3, 50.0, 704.2, 100.0, extras=(kernel_tan, ieee754_rem_pio2)),
    _case("s_tanh.c", "tanh(double)", fdlibm_tanh, 1, 12, 33.3, 75.0, 100.0, 0.7, 33.3, 2805.5, 100.0),
)

_BY_KEY = {case.key: case for case in BENCHMARKS}

# Bare C function name ("ieee754_sqrt", "atan") plus the Python entry point's
# name ("fdlibm_atan"); first registration wins so the C names stay canonical.
_BY_FUNCTION: dict[str, BenchmarkCase] = {}
for _bench_case in BENCHMARKS:
    _BY_FUNCTION.setdefault(_bench_case.function.split("(")[0], _bench_case)
    _BY_FUNCTION.setdefault(_bench_case.entry.__name__, _bench_case)
del _bench_case


def iter_cases(limit: Optional[int] = None) -> Iterator[BenchmarkCase]:
    """Iterate over the suite (optionally only the first ``limit`` cases)."""
    for index, case in enumerate(BENCHMARKS):
        if limit is not None and index >= limit:
            return
        yield case


def get_case(name: str) -> BenchmarkCase:
    """Look up a case by ``"file:function"`` key, bare C name or entry name."""
    if name in _BY_KEY:
        return _BY_KEY[name]
    if name in _BY_FUNCTION:
        return _BY_FUNCTION[name]
    raise KeyError(f"unknown benchmark {name!r}")


def case_by_key(key: str) -> BenchmarkCase:
    """Strict lookup by ``"file:function"`` key (the run store's case id)."""
    try:
        return _BY_KEY[key]
    except KeyError:
        raise KeyError(f"unknown benchmark case key {key!r}") from None


#: Mean values of the paper's headline comparison (last rows of Tables 2/3).
PAPER_MEANS = {
    "rand_branch": 38.0,
    "afl_branch": 72.9,
    "coverme_branch": 90.8,
    "austin_branch": 42.8,
    "coverme_time": 6.9,
    "austin_time": 6058.4,
    "coverme_line": 97.0,
    "afl_line": 87.0,
    "rand_line": 54.2,
}
