"""Port of Fdlibm 5.3 ``s_tanh.c``: the paper's running example (Fig. 1)."""

from __future__ import annotations

from repro.fdlibm.bits import fabs, high_word
from repro.fdlibm.s_expm1 import fdlibm_expm1

ONE = 1.0
TWO = 2.0
TINY = 1.0e-300


def fdlibm_tanh(x: float) -> float:
    """``tanh(x)`` with the exact branch structure of the C original."""
    jx = high_word(x)
    ix = jx & 0x7FFFFFFF
    if ix >= 0x7FF00000:  # x is inf or NaN
        if jx >= 0:
            return ONE / x + ONE  # tanh(+inf) = 1, tanh(NaN) = NaN
        return ONE / x - ONE  # tanh(-inf) = -1
    if ix < 0x40360000:  # |x| < 22
        if ix < 0x3C800000:  # |x| < 2**-55
            return x * (ONE + x)  # tanh(tiny) = tiny with inexact
        if ix >= 0x3FF00000:  # |x| >= 1
            t = fdlibm_expm1(TWO * fabs(x))
            z = ONE - TWO / (t + TWO)
        else:
            t = fdlibm_expm1(-TWO * fabs(x))
            z = -t / (t + TWO)
    else:  # |x| >= 22, tanh(x) = +-1 with inexact
        z = ONE - TINY
    if jx >= 0:
        return z
    return -z
