"""IEEE-754 double bit manipulation used throughout the Fdlibm port.

Fdlibm accesses doubles through their high and low 32-bit words
(``__HI(x)`` / ``__LO(x)`` macros, or ``*(1+(int*)&x)`` as in the paper's
``s_tanh.c`` listing).  These helpers provide the same view of a Python
float.  The high word carries the sign bit, the 11 exponent bits and the top
20 mantissa bits, and is interpreted as a *signed* 32-bit integer, exactly as
in the C code.
"""

from __future__ import annotations

import struct

#: High word of +infinity: sign 0, exponent all ones, mantissa zero.
HI_INF = 0x7FF00000
#: Mask clearing the sign bit of a high word.
HI_ABS_MASK = 0x7FFFFFFF
#: Sign bit of a high word.
HI_SIGN_BIT = 0x80000000

#: Largest finite double and smallest positive normal double.
DBL_MAX = 1.7976931348623157e308
DBL_MIN_NORMAL = 2.2250738585072014e-308

TWO54 = 1.80143985094819840000e16  # 2**54
TWO_M54 = 5.55111512312578270212e-17  # 2**-54
HUGE = 1.0e300
TINY = 1.0e-300


def double_to_bits(x: float) -> int:
    """Raw 64-bit pattern of ``x`` as an unsigned integer."""
    return struct.unpack(">Q", struct.pack(">d", float(x)))[0]


def bits_to_double(bits: int) -> float:
    """Double whose raw 64-bit pattern is ``bits``."""
    return struct.unpack(">d", struct.pack(">Q", bits & 0xFFFFFFFFFFFFFFFF))[0]


def _to_signed32(word: int) -> int:
    word &= 0xFFFFFFFF
    return word - 0x100000000 if word >= 0x80000000 else word


def high_word(x: float) -> int:
    """``__HI(x)``: the high 32-bit word of ``x`` as a signed integer."""
    return _to_signed32(double_to_bits(x) >> 32)


def low_word(x: float) -> int:
    """``__LO(x)``: the low 32-bit word of ``x`` as an unsigned integer."""
    return double_to_bits(x) & 0xFFFFFFFF


def words(x: float) -> tuple[int, int]:
    """``(__HI(x), __LO(x))`` in one call."""
    raw = double_to_bits(x)
    return _to_signed32(raw >> 32), raw & 0xFFFFFFFF


def from_words(hi: int, lo: int) -> float:
    """Build a double from its high and low words (signed or unsigned)."""
    return bits_to_double(((hi & 0xFFFFFFFF) << 32) | (lo & 0xFFFFFFFF))


def set_high_word(x: float, hi: int) -> float:
    """Return ``x`` with its high word replaced (``__HI(x) = hi`` in C)."""
    raw = double_to_bits(x)
    return bits_to_double(((hi & 0xFFFFFFFF) << 32) | (raw & 0xFFFFFFFF))


def set_low_word(x: float, lo: int) -> float:
    """Return ``x`` with its low word replaced (``__LO(x) = lo`` in C)."""
    raw = double_to_bits(x)
    return bits_to_double((raw & 0xFFFFFFFF00000000) | (lo & 0xFFFFFFFF))


def abs_high_word(x: float) -> int:
    """``__HI(x) & 0x7fffffff``: high word with the sign bit cleared."""
    return high_word(x) & HI_ABS_MASK


def copysign_bit(x: float, y: float) -> float:
    """``copysign`` implemented through the sign bit, as Fdlibm does."""
    hx = high_word(x) & HI_ABS_MASK
    hy = high_word(y) & HI_SIGN_BIT
    return set_high_word(x, hx | hy)


def fabs(x: float) -> float:
    """``fabs`` via the sign bit (branch-free, like Fdlibm's ``s_fabs.c``)."""
    return set_high_word(x, high_word(x) & HI_ABS_MASK)
