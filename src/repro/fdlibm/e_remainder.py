"""Port of Fdlibm 5.3 ``e_remainder.c``: ``__ieee754_remainder(x, p)``."""

from __future__ import annotations

from repro.fdlibm.bits import fabs, high_word, low_word, set_high_word
from repro.fdlibm.e_fmod import ieee754_fmod

ZERO = 0.0
ONE = 1.0


def ieee754_remainder(x: float, p: float) -> float:
    """``__ieee754_remainder(x, p)``: IEEE remainder with round-to-nearest."""
    hx = high_word(x)
    lx = low_word(x)
    hp = high_word(p)
    lp = low_word(p)
    sx = hx & 0x80000000
    hp &= 0x7FFFFFFF
    hx &= 0x7FFFFFFF

    # Purge off exception values.
    if (hp | lp) == 0:
        return float("nan")  # p = 0
    if hx >= 0x7FF00000 or (hp >= 0x7FF00000 and (((hp - 0x7FF00000) | lp) != 0)):
        return float("nan")  # x not finite or p is NaN

    if hp <= 0x7FDFFFFF:
        x = ieee754_fmod(x, p + p)  # now x < 2p
    if ((hx - hp) | (lx - lp)) == 0:
        return ZERO * x
    x = fabs(x)
    p = fabs(p)
    if hp < 0x00200000:
        if x + x > p:
            x -= p
            if x + x >= p:
                x -= p
    else:
        p_half = 0.5 * p
        if x > p_half:
            x -= p
            if x >= p_half:
                x -= p
    hx = high_word(x)
    x = set_high_word(x, hx ^ sx)
    return x
