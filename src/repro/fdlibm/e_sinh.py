"""Port of Fdlibm 5.3 ``e_sinh.c``: ``__ieee754_sinh``."""

from __future__ import annotations

from repro.fdlibm.bits import fabs, high_word, low_word
from repro.fdlibm.e_exp import ieee754_exp
from repro.fdlibm.s_expm1 import fdlibm_expm1

ONE = 1.0
SHUGE = 1.0e307


def ieee754_sinh(x: float) -> float:
    """``__ieee754_sinh(x)`` with the original's interval dispatch."""
    jx = high_word(x)
    ix = jx & 0x7FFFFFFF
    if ix >= 0x7FF00000:  # x is inf or NaN
        return x + x
    h = 0.5
    if jx < 0:
        h = -h
    if ix < 0x40360000:  # |x| < 22
        if ix < 0x3E300000:  # |x| < 2**-28
            if SHUGE + x > ONE:  # sinh(tiny) = tiny with inexact
                return x
        t = fdlibm_expm1(fabs(x))
        if ix < 0x3FF00000:  # |x| < 1
            return h * (2.0 * t - t * t / (t + ONE))
        return h * (t + t / (t + ONE))
    if ix < 0x40862E42:  # |x| in [22, log(DBL_MAX)]
        return h * ieee754_exp(fabs(x))
    # |x| in [log(DBL_MAX), overflow threshold].
    lx = low_word(x)
    if ix < 0x408633CE or (ix == 0x408633CE and lx <= 0x8FB9F87D):
        w = ieee754_exp(0.5 * fabs(x))
        t = h * w
        return t * w
    return x * SHUGE  # overflow
