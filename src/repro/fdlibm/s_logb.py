"""Port of Fdlibm 5.3 ``s_logb.c``: binary exponent of x as a double."""

from __future__ import annotations

from repro.fdlibm.bits import high_word, low_word


def fdlibm_logb(x: float) -> float:
    """``logb(x)``: IEEE 754 logb, truncated to the original's behaviour."""
    ix = high_word(x) & 0x7FFFFFFF
    lx = low_word(x)
    if (ix | lx) == 0:
        return float("-inf")  # logb(0) = -inf
    if ix >= 0x7FF00000:
        return x * x  # NaN or inf
    ix >>= 20
    if ix == 0:  # IEEE 754 logb of a subnormal
        return -1022.0
    return float(ix - 1023)
