"""Python port of the Fdlibm 5.3 benchmark programs (Sun Microsystems).

The paper evaluates CoverMe on 40 functions of the Freely Distributable Math
Library.  Each module of this package ports one of the benchmarked C files,
keeping the *branch structure* of the original intact: the same high/low-word
bit tests, the same thresholds and the same nesting of conditionals.  Where
the original evaluates a long polynomial (straight-line code with no
branches), the port may compute the value with an equivalent closed form --
this does not change the coverage problem CoverMe has to solve, which depends
only on the conditionals.

:mod:`repro.fdlibm.suite` registers the 40 benchmark entries of Table 2, and
:mod:`repro.fdlibm.excluded` documents the functions the paper excludes
(Table 4).
"""

from repro.fdlibm import bits
from repro.fdlibm.suite import BENCHMARKS, BenchmarkCase, get_case, iter_cases

__all__ = ["BENCHMARKS", "BenchmarkCase", "bits", "get_case", "iter_cases"]
