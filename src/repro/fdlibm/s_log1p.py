"""Port of Fdlibm 5.3 ``s_log1p.c``: ``log(1 + x)``."""

from __future__ import annotations

from repro.fdlibm.bits import high_word, set_high_word

LN2_HI = 6.93147180369123816490e-01
LN2_LO = 1.90821492927058770002e-10
TWO54 = 1.80143985094819840000e16
LP1 = 6.666666666666735130e-01
LP2 = 3.999999999940941908e-01
LP3 = 2.857142874366239149e-01
LP4 = 2.222219843214978396e-01
LP5 = 1.818357216161805012e-01
LP6 = 1.531383769920937332e-01
LP7 = 1.479819860511658591e-01
ZERO = 0.0
ONE = 1.0
HUGE = 1.0e300
TINY = 1.0e-300


def fdlibm_log1p(x: float) -> float:
    """``log1p(x)`` keeping the original's branch ladder over ``hx``."""
    hx = high_word(x)
    ax = hx & 0x7FFFFFFF
    k = 1
    f = 0.0
    hu = 0
    if hx < 0x3FDA827A:  # x < 0.41422
        if ax >= 0x3FF00000:  # x <= -1.0
            if x == -1.0:
                return -TWO54 / ZERO if False else float("-inf")  # log1p(-1) = -inf
            return float("nan")  # log1p(x < -1) = NaN
        if ax < 0x3E200000:  # |x| < 2**-29
            if HUGE + x > ZERO and ax < 0x3C900000:  # |x| < 2**-54
                return x
            return x - x * x * 0.5
        if hx > 0 or hx <= (0xBFD2BEC3 - 0x100000000):  # -0.2929 < x < 0.41422
            k = 0
            f = x
            hu = 1
    if hx >= 0x7FF00000:  # x is inf or NaN
        return x + x
    if k != 0:
        if hx < 0x43400000:  # x < 2**53
            u = ONE + x
            hu = high_word(u)
            k = (hu >> 20) - 1023
            # Correction term.
            c = (ONE - (u - x)) if k > 0 else (x - (u - ONE))
            c /= u
        else:
            u = x
            hu = high_word(u)
            k = (hu >> 20) - 1023
            c = 0.0
        hu &= 0x000FFFFF
        if hu < 0x6A09E:  # normalize u
            u = set_high_word(u, hu | 0x3FF00000)
        else:  # normalize u/2
            k += 1
            u = set_high_word(u, hu | 0x3FE00000)
            hu = (0x00100000 - hu) >> 2
        f = u - 1.0
    else:
        c = 0.0
    hfsq = 0.5 * f * f
    if hu == 0:  # |f| < 2**-20
        if f == ZERO:
            if k == 0:
                return ZERO
            c += k * LN2_LO
            return k * LN2_HI + c
        r = hfsq * (1.0 - 0.66666666666666666 * f)
        if k == 0:
            return f - r
        return k * LN2_HI - ((r - (k * LN2_LO + c)) - f)
    s = f / (2.0 + f)
    z = s * s
    r = z * (LP1 + z * (LP2 + z * (LP3 + z * (LP4 + z * (LP5 + z * (LP6 + z * LP7))))))
    if k == 0:
        return f - (hfsq - s * (hfsq + r))
    return k * LN2_HI - ((hfsq - (s * (hfsq + r) + (k * LN2_LO + c))) - f)
