"""Port of Fdlibm 5.3 ``e_atan2.c``: ``__ieee754_atan2(y, x)``.

The C original dispatches on ``m = 2*sign(x) + sign(y)`` with ``switch``
statements; the port writes those out as ``if``/``elif`` ladders, which is
what Gcov's branch counting effectively sees as well.
"""

from __future__ import annotations

from repro.fdlibm.bits import fabs, high_word, low_word, set_high_word
from repro.fdlibm.s_atan import fdlibm_atan

TINY = 1.0e-300
ZERO = 0.0
PI_O_4 = 7.8539816339744827900e-01
PI_O_2 = 1.5707963267948965580e00
PI = 3.1415926535897931160e00
PI_LO = 1.2246467991473531772e-16


def ieee754_atan2(y: float, x: float) -> float:
    """``__ieee754_atan2(y, x)``: signed angle of the point ``(x, y)``."""
    hx = high_word(x)
    ix = hx & 0x7FFFFFFF
    lx = low_word(x)
    hy = high_word(y)
    iy = hy & 0x7FFFFFFF
    ly = low_word(y)
    if (ix | (1 if lx != 0 else 0)) > 0x7FF00000 or (
        iy | (1 if ly != 0 else 0)
    ) > 0x7FF00000:  # x or y is NaN
        return x + y
    if ((hx - 0x3FF00000) | lx) == 0:  # x = 1.0
        return fdlibm_atan(y)
    m = ((hy >> 31) & 1) | ((hx >> 30) & 2)  # 2*sign(x) + sign(y)

    # When y = 0.
    if (iy | ly) == 0:
        if m == 0 or m == 1:
            return y  # atan(+-0, +anything) = +-0
        if m == 2:
            return PI + TINY  # atan(+0, -anything) = pi
        return -PI - TINY  # atan(-0, -anything) = -pi
    # When x = 0.
    if (ix | lx) == 0:
        if hy < 0:
            return -PI_O_2 - TINY
        return PI_O_2 + TINY
    # When x is inf.
    if ix == 0x7FF00000:
        if iy == 0x7FF00000:
            if m == 0:
                return PI_O_4 + TINY  # atan(+inf, +inf)
            if m == 1:
                return -PI_O_4 - TINY  # atan(-inf, +inf)
            if m == 2:
                return 3.0 * PI_O_4 + TINY  # atan(+inf, -inf)
            return -3.0 * PI_O_4 - TINY  # atan(-inf, -inf)
        if m == 0:
            return ZERO  # atan(+..., +inf)
        if m == 1:
            return -ZERO  # atan(-..., +inf)
        if m == 2:
            return PI + TINY  # atan(+..., -inf)
        return -PI - TINY  # atan(-..., -inf)
    # When y is inf.
    if iy == 0x7FF00000:
        if hy < 0:
            return -PI_O_2 - TINY
        return PI_O_2 + TINY

    # Compute y/x.
    k = (iy - ix) >> 20
    if k > 60:  # |y/x| > 2**60
        z = PI_O_2 + 0.5 * PI_LO
    elif hx < 0 and k < -60:  # |y|/x < -2**60
        z = 0.0
    else:  # safe to do y/x
        z = fdlibm_atan(fabs(y / x))
    if m == 0:
        return z  # atan(+, +)
    if m == 1:
        z = set_high_word(z, high_word(z) ^ 0x80000000)
        return z  # atan(-, +)
    if m == 2:
        return PI - (z - PI_LO)  # atan(+, -)
    return (z - PI_LO) - PI  # atan(-, -)
