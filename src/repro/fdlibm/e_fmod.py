"""Port of Fdlibm 5.3 ``e_fmod.c``: ``__ieee754_fmod(x, y)``.

This is the benchmark with the most branches (Table 2: 60) and the subject of
the second incompleteness example in Sect. D: the subnormal-input branches at
the ``hx < 0x00100000`` / ``hy < 0x00100000`` tests require subnormal inputs
which the optimization backend rarely produces.  The fix-point remainder loop
relies on 32-bit wraparound, reproduced here with explicit masking.
"""

from __future__ import annotations

from repro.fdlibm.bits import from_words, high_word, low_word

ONE = 1.0
ZERO = (0.0, -0.0)
MASK32 = 0xFFFFFFFF


def _i32(value: int) -> int:
    """Interpret ``value`` as a signed 32-bit integer (C ``int`` semantics)."""
    value &= MASK32
    return value - 0x100000000 if value >= 0x80000000 else value


def ieee754_fmod(x: float, y: float) -> float:
    """``__ieee754_fmod(x, y)``: exact floating-point remainder of x/y."""
    hx = high_word(x)
    lx = low_word(x)
    hy = high_word(y)
    ly = low_word(y)
    sx = hx & 0x80000000  # sign of x
    hx &= 0x7FFFFFFF  # |x| (hx ^ sx in C, which clears the sign bit)
    hy &= 0x7FFFFFFF  # |y|

    # Purge off exception values.
    if (hy | ly) == 0 or hx >= 0x7FF00000 or (hy | (1 if ly != 0 else 0)) > 0x7FF00000:
        return float("nan")  # fmod(x, 0), fmod(inf/NaN, y), fmod(x, NaN)
    if hx <= hy:
        if hx < hy or lx < ly:
            return x  # |x| < |y|, return x
        if lx == ly:
            return ZERO[sx >> 31]  # |x| == |y|, return sign(x)*0

    # Determine ix = ilogb(x).
    if hx < 0x00100000:  # subnormal x
        if hx == 0:
            ix = -1043
            i = _i32(lx)
            while i > 0:
                ix -= 1
                i = _i32(i << 1)
        else:
            ix = -1022
            i = _i32(hx << 11)
            while i > 0:
                ix -= 1
                i = _i32(i << 1)
    else:
        ix = (hx >> 20) - 1023
    # Determine iy = ilogb(y).
    if hy < 0x00100000:  # subnormal y
        if hy == 0:
            iy = -1043
            i = _i32(ly)
            while i > 0:
                iy -= 1
                i = _i32(i << 1)
        else:
            iy = -1022
            i = _i32(hy << 11)
            while i > 0:
                iy -= 1
                i = _i32(i << 1)
    else:
        iy = (hy >> 20) - 1023

    # Set up {hx,lx}, {hy,ly} and align y to x.
    if ix >= -1022:
        hx = 0x00100000 | (0x000FFFFF & hx)
    else:  # subnormal x, shift x to normal
        n = -1022 - ix
        if n <= 31:
            hx = ((hx << n) | (lx >> (32 - n))) & MASK32
            lx = (lx << n) & MASK32
        else:
            hx = (lx << (n - 32)) & MASK32
            lx = 0
    if iy >= -1022:
        hy = 0x00100000 | (0x000FFFFF & hy)
    else:  # subnormal y, shift y to normal
        n = -1022 - iy
        if n <= 31:
            hy = ((hy << n) | (ly >> (32 - n))) & MASK32
            ly = (ly << n) & MASK32
        else:
            hy = (ly << (n - 32)) & MASK32
            ly = 0

    # Fix-point fmod.
    n = ix - iy
    while n > 0:
        n -= 1
        hz = _i32(hx - hy)
        lz = (lx - ly) & MASK32
        if lx < ly:
            hz -= 1
        if hz < 0:
            hx = (hx + hx + (lx >> 31)) & MASK32
            lx = (lx + lx) & MASK32
        else:
            if (hz | lz) == 0:  # return sign(x)*0
                return ZERO[sx >> 31]
            hx = (hz + hz + (lz >> 31)) & MASK32
            lx = (lz + lz) & MASK32
    hz = _i32(hx - hy)
    lz = (lx - ly) & MASK32
    if lx < ly:
        hz -= 1
    if hz >= 0:
        hx = hz
        lx = lz

    # Convert back to floating value and restore the sign.
    if (hx | lx) == 0:  # return sign(x)*0
        return ZERO[sx >> 31]
    while hx < 0x00100000:  # normalize x
        hx = (hx + hx + (lx >> 31)) & MASK32
        lx = (lx + lx) & MASK32
        iy -= 1
    if iy >= -1022:  # normalize output
        hx = (hx - 0x00100000) | ((iy + 1023) << 20)
        return from_words(hx | sx, lx)
    # Subnormal output.
    n = -1022 - iy
    if n <= 20:
        lx = ((lx >> n) | (hx << (32 - n))) & MASK32
        hx >>= n
    elif n <= 31:
        lx = ((hx << (32 - n)) | (lx >> n)) & MASK32
        hx = sx
    else:
        lx = (hx >> (n - 32)) & MASK32
        hx = sx
    result = from_words(hx | sx, lx)
    result *= ONE  # create necessary signal
    return result
