"""Port of Fdlibm 5.3 ``s_ceil.c``: round towards plus infinity."""

from __future__ import annotations

from repro.fdlibm.bits import from_words, high_word, low_word

HUGE = 1.0e300


def fdlibm_ceil(x: float) -> float:
    """``ceil(x)`` by direct manipulation of the mantissa bits."""
    i0 = high_word(x)
    i1 = low_word(x)
    j0 = ((i0 >> 20) & 0x7FF) - 0x3FF
    if j0 < 20:
        if j0 < 0:  # |x| < 1: raise inexact if x != 0
            if HUGE + x > 0.0:
                if i0 < 0:  # return -0 if x < 0
                    i0 = 0x80000000 - 0x100000000
                    i1 = 0
                elif (i0 | i1) != 0:  # return 1 if 0 < x < 1
                    i0 = 0x3FF00000
                    i1 = 0
        else:
            i = 0x000FFFFF >> j0
            if ((i0 & i) | i1) == 0:
                return x  # x is integral
            if HUGE + x > 0.0:  # raise inexact flag
                if i0 > 0:
                    i0 += 0x00100000 >> j0
                i0 &= ~i
                i1 = 0
    elif j0 > 51:
        if j0 == 0x400:
            return x + x  # inf or NaN
        return x  # x is integral
    else:
        i = 0xFFFFFFFF >> (j0 - 20)
        if (i1 & i) == 0:
            return x  # x is integral
        if HUGE + x > 0.0:  # raise inexact flag
            if i0 > 0:
                if j0 == 20:
                    i0 += 1
                else:
                    j = (i1 + (1 << (52 - j0))) & 0xFFFFFFFF
                    if j < i1:
                        i0 += 1  # carry into the high word
                    i1 = j
            i1 &= ~i
    return from_words(i0, i1)
