"""Port of Fdlibm 5.3 ``e_acos.c``: ``__ieee754_acos``."""

from __future__ import annotations

from repro.fdlibm.bits import high_word, low_word, set_low_word
from repro.fdlibm.e_sqrt import ieee754_sqrt

ONE = 1.0
PI = 3.14159265358979311600e00
PIO2_HI = 1.57079632679489655800e00
PIO2_LO = 6.12323399573676603587e-17
PS0 = 1.66666666666666657415e-01
PS1 = -3.25565818622400915405e-01
PS2 = 2.01212532134862925881e-01
PS3 = -4.00555345006794114027e-02
PS4 = 7.91534994289814532176e-04
PS5 = 3.47933107596021167570e-05
QS1 = -2.40339491173441421878e00
QS2 = 2.02094576023350569471e00
QS3 = -6.88283971605453293030e-01
QS4 = 7.70381505559019352791e-02


def _rational(z: float) -> float:
    p = z * (PS0 + z * (PS1 + z * (PS2 + z * (PS3 + z * (PS4 + z * PS5)))))
    q = ONE + z * (QS1 + z * (QS2 + z * (QS3 + z * QS4)))
    return p / q


def ieee754_acos(x: float) -> float:
    """``__ieee754_acos(x)``: arc cosine on ``[-1, 1]``."""
    hx = high_word(x)
    ix = hx & 0x7FFFFFFF
    if ix >= 0x3FF00000:  # |x| >= 1
        if ((ix - 0x3FF00000) | low_word(x)) == 0:  # |x| == 1
            if hx > 0:
                return 0.0  # acos(1) = 0
            return PI + 2.0 * PIO2_LO  # acos(-1) = pi
        return float("nan")  # acos(|x| > 1) is NaN
    if ix < 0x3FE00000:  # |x| < 0.5
        if ix <= 0x3C600000:  # |x| < 2**-57
            return PIO2_HI + PIO2_LO
        z = x * x
        r = _rational(z)
        return PIO2_HI - (x - (PIO2_LO - x * r))
    if hx < 0:  # x < -0.5
        z = (ONE + x) * 0.5
        s = ieee754_sqrt(z)
        r = _rational(z)
        w = r * s - PIO2_LO
        return PI - 2.0 * (s + w)
    # x > 0.5
    z = (ONE - x) * 0.5
    s = ieee754_sqrt(z)
    df = set_low_word(s, 0)
    c = (z - df * df) / (s + df)
    r = _rational(z)
    w = r * s + c
    return 2.0 * (df + w)
