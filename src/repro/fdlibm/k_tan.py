"""Port of Fdlibm 5.3 ``k_tan.c``: the tangent kernel on ``[-pi/4, pi/4]``.

Not itself a benchmark (its third parameter is an ``int``).  The branch
structure of the original kernel is kept; the odd polynomial of the original
is evaluated with a slightly shorter coefficient list, which only affects the
last bits of the result, not any branch decision of the callers.
"""

from __future__ import annotations

from repro.fdlibm.bits import abs_high_word, fabs, high_word, set_high_word, set_low_word

ONE = 1.0
PIO4 = 7.85398163397448278999e-01
PIO4LO = 3.06161699786838301793e-17

_T = (
    3.33333333333334091986e-01,
    1.33333333333201242699e-01,
    5.39682539762260521377e-02,
    2.18694882948595424599e-02,
    8.86323982359930005737e-03,
    3.59207910759131235356e-03,
    1.45620945432529025516e-03,
    5.88041240820264096874e-04,
    2.46463134818469906812e-04,
    7.81794442939557092300e-05,
    7.14072491382608190305e-05,
    -1.85586374855275456654e-05,
    2.59073051863633712884e-05,
)


def kernel_tan(x: float, y: float, iy: int) -> float:
    """``__kernel_tan(x, y, iy)``: tan (``iy == 1``) or -1/tan (``iy == -1``)."""
    hx = high_word(x)
    ix = hx & 0x7FFFFFFF
    if ix < 0x3E300000:  # |x| < 2**-28
        if int(x) == 0:
            if (ix | int(abs(y) > 0)) == 0 and iy == -1:
                return ONE / fabs(x) if x != 0.0 else float("inf")
            if iy == 1:
                return x
            return -ONE / x if x != 0.0 else float("-inf")
    if ix >= 0x3FE59428:  # |x| >= 0.6744
        if hx < 0:
            x = -x
            y = -y
        z = PIO4 - x
        w = PIO4LO - y
        x = z + w
        y = 0.0
    z = x * x
    w = z * z
    r = _T[1] + w * (_T[3] + w * (_T[5] + w * (_T[7] + w * (_T[9] + w * _T[11]))))
    v = z * (_T[2] + w * (_T[4] + w * (_T[6] + w * (_T[8] + w * (_T[10] + w * _T[12])))))
    s = z * x
    r = y + z * (s * (r + v) + y)
    r += _T[0] * s
    w = x + r
    if ix >= 0x3FE59428:
        v = float(iy)
        sign = 1.0 if hx >= 0 else -1.0
        return sign * (v - 2.0 * (x - (w * w / (w + v) - r)))
    if iy == 1:
        return w
    # Compute -1.0 / (x + r) accurately.
    z = w
    z = set_low_word(z, 0)
    v = r - (z - x)
    t = a = -1.0 / w
    t = set_low_word(t, 0)
    s = 1.0 + t * z
    return t + a * (s + t * v)
