"""Port of Fdlibm 5.3 ``e_exp.c``: ``__ieee754_exp``."""

from __future__ import annotations

from repro.fdlibm.bits import high_word, low_word, set_high_word

ONE = 1.0
HALF = (0.5, -0.5)
HUGE = 1.0e300
TWOM1000 = 9.33263618503218878990e-302  # 2**-1000
O_THRESHOLD = 7.09782712893383973096e02
U_THRESHOLD = -7.45133219101941108420e02
LN2_HI = (6.93147180369123816490e-01, -6.93147180369123816490e-01)
LN2_LO = (1.90821492927058770002e-10, -1.90821492927058770002e-10)
INVLN2 = 1.44269504088896338700e00
P1 = 1.66666666666666019037e-01
P2 = -2.77777777770155933842e-03
P3 = 6.61375632143793436117e-05
P4 = -1.65339022054652515390e-06
P5 = 4.13813679705723846039e-08


def ieee754_exp(x: float) -> float:
    """``__ieee754_exp(x)``: exponential with argument reduction ``x = k ln2 + r``."""
    hx = high_word(x)
    xsb = (hx >> 31) & 1  # sign bit of x
    hx &= 0x7FFFFFFF  # high word of |x|

    # Filter out non-finite arguments.
    if hx >= 0x40862E42:  # |x| >= 709.78...
        if hx >= 0x7FF00000:
            if ((hx & 0xFFFFF) | low_word(x)) != 0:
                return x + x  # NaN
            if xsb == 0:
                return x  # exp(+inf) = inf
            return 0.0  # exp(-inf) = 0
        if x > O_THRESHOLD:
            return HUGE * HUGE  # overflow
        if x < U_THRESHOLD:
            return TWOM1000 * TWOM1000  # underflow
    # Argument reduction.
    k = 0
    lo = 0.0
    hi = 0.0
    if hx > 0x3FD62E42:  # |x| > 0.5 ln2
        if hx < 0x3FF0A2B2:  # |x| < 1.5 ln2
            hi = x - LN2_HI[xsb]
            lo = LN2_LO[xsb]
            k = 1 - xsb - xsb
        else:
            k = int(INVLN2 * x + HALF[xsb])
            t = float(k)
            hi = x - t * LN2_HI[0]
            lo = t * LN2_LO[0]
        x = hi - lo
    elif hx < 0x3E300000:  # |x| < 2**-28
        if HUGE + x > ONE:  # trigger inexact
            return ONE + x
    else:
        k = 0
    # x is now in the primary range.
    t = x * x
    c = x - t * (P1 + t * (P2 + t * (P3 + t * (P4 + t * P5))))
    if k == 0:
        return ONE - ((x * c) / (c - 2.0) - x)
    y = ONE - ((lo - (x * c) / (2.0 - c)) - hi)
    if k >= -1021:
        y = set_high_word(y, high_word(y) + (k << 20))  # add k to y's exponent
        return y
    y = set_high_word(y, high_word(y) + ((k + 1000) << 20))
    return y * TWOM1000
