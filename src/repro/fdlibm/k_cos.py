"""Port of Fdlibm 5.3 ``k_cos.c``: the cosine kernel on ``[-pi/4, pi/4]``.

``kernel_cos(x, y)`` is itself one of the paper's benchmark functions
(Table 2, 8 branches) and the subject of the incompleteness discussion in
Sect. D: the branch ``((int) x) == 0`` being false is unreachable because it
is nested under ``|x| < 2**-27``.
"""

from __future__ import annotations

from repro.fdlibm.bits import abs_high_word, set_high_word, set_low_word

ONE = 1.0

C1 = 4.16666666666666019037e-02
C2 = -1.38888888888741095749e-03
C3 = 2.48015872894767294178e-05
C4 = -2.75573143513906633035e-07
C5 = 2.08757232129817482790e-09
C6 = -1.13596475577881948265e-11


def kernel_cos(x: float, y: float) -> float:
    """``__kernel_cos(x, y)``: cosine of ``x + y`` for ``|x| <= pi/4``."""
    ix = abs_high_word(x)
    if ix < 0x3E400000:  # |x| < 2**-27
        if int(x) == 0:  # generate inexact (always true here)
            return ONE
    z = x * x
    r = z * (C1 + z * (C2 + z * (C3 + z * (C4 + z * (C5 + z * C6)))))
    if ix < 0x3FD33333:  # |x| < 0.3
        return ONE - (0.5 * z - (z * r - x * y))
    if ix > 0x3FE90000:  # |x| > 0.78125
        qx = 0.28125
    else:
        qx = 0.0
        qx = set_high_word(qx, ix - 0x00200000)  # x/4
        qx = set_low_word(qx, 0)
    hz = 0.5 * z - qx
    a = ONE - qx
    return a - (hz - (z * r - x * y))
