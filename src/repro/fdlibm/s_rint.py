"""Port of Fdlibm 5.3 ``s_rint.c``: round to nearest integral value."""

from __future__ import annotations

from repro.fdlibm.bits import from_words, high_word, low_word

TWO52 = (4.50359962737049600000e15, -4.50359962737049600000e15)


def fdlibm_rint(x: float) -> float:
    """``rint(x)``: round to integral in the current (to-nearest) mode."""
    i0 = high_word(x)
    i1 = low_word(x)
    sx = (i0 >> 31) & 1
    j0 = ((i0 >> 20) & 0x7FF) - 0x3FF
    if j0 < 20:
        if j0 < 0:
            if ((i0 & 0x7FFFFFFF) | i1) == 0:
                return x  # +-0
            i1 |= i0 & 0x0FFFFF
            i0 &= 0xFFFE0000
            i0 |= ((i1 | -i1) >> 12) & 0x80000
            x = from_words(i0, i1)
            w = TWO52[sx] + x
            t = w - TWO52[sx]
            i0 = high_word(t)
            return from_words((i0 & 0x7FFFFFFF) | (sx << 31), low_word(t))
        i = (0x000FFFFF) >> j0
        if ((i0 & i) | i1) == 0:
            return x  # x is integral
        i >>= 1
        if ((i0 & i) | i1) != 0:
            if j0 == 19:
                i1 = 0x40000000
            else:
                i0 = (i0 & (~i)) | ((0x20000) >> j0)
    elif j0 > 51:
        if j0 == 0x400:
            return x + x  # inf or NaN
        return x  # x is integral
    else:
        i = 0xFFFFFFFF >> (j0 - 20)
        if (i1 & i) == 0:
            return x  # x is integral
        i >>= 1
        if (i1 & i) != 0:
            i1 = (i1 & (~i)) | ((0x40000000) >> (j0 - 20))
    x = from_words(i0, i1)
    w = TWO52[sx] + x
    return w - TWO52[sx]
