"""Port of Fdlibm 5.3 ``s_erf.c``: ``erf`` and ``erfc``.

The interval dispatch (the conditionals CoverMe must cover) follows the C
original exactly.  Inside the two asymptotic intervals the original evaluates
long rational approximations; the port computes those leaf values through the
platform ``math.erf``/``math.erfc`` -- a straight-line substitution that does
not affect any branch decision.
"""

from __future__ import annotations

import math

from repro.fdlibm.bits import fabs, high_word, set_low_word
from repro.fdlibm.e_exp import ieee754_exp

ONE = 1.0
TINY = 1.0e-300
ERX = 8.45062911510467529297e-01
EFX = 1.28379167095512586316e-01
EFX8 = 1.02703333676410069053e00
PP0 = 1.28379167095512558561e-01
PP1 = -3.25042107247001499370e-01
PP2 = -2.84817495755985104766e-02
PP3 = -5.77027029648944159157e-03
PP4 = -2.37630166566501626084e-05
QQ1 = 3.97917223959155352819e-01
QQ2 = 6.50222499887672944485e-02
QQ3 = 5.08130628187576562776e-03
QQ4 = 1.32494738004321644526e-04
QQ5 = -3.96022827877536812320e-06


def fdlibm_erf(x: float) -> float:
    """``erf(x)`` keeping the original's five-interval dispatch."""
    hx = high_word(x)
    ix = hx & 0x7FFFFFFF
    if ix >= 0x7FF00000:  # erf(NaN) = NaN, erf(+-inf) = +-1
        i = ((hx & 0xFFFFFFFF) >> 31) << 1
        return float(1 - i) + ONE / x
    if ix < 0x3FEB0000:  # |x| < 0.84375
        if ix < 0x3E300000:  # |x| < 2**-28
            if ix < 0x00800000:  # avoid underflow
                return 0.125 * (8.0 * x + EFX8 * x)
            return x + EFX * x
        z = x * x
        r = PP0 + z * (PP1 + z * (PP2 + z * (PP3 + z * PP4)))
        s = ONE + z * (QQ1 + z * (QQ2 + z * (QQ3 + z * (QQ4 + z * QQ5))))
        y = r / s
        return x + x * y
    if ix < 0x3FF40000:  # 0.84375 <= |x| < 1.25
        p_over_q = math.erf(fabs(x)) - ERX
        if hx >= 0:
            return ERX + p_over_q
        return -ERX - p_over_q
    if ix >= 0x40180000:  # inf > |x| >= 6
        if hx >= 0:
            return ONE - TINY
        return TINY - ONE
    x = fabs(x)
    s = ONE / (x * x)
    if ix < 0x4006DB6E:  # |x| < 1/0.35
        ratio = math.log(math.erfc(x) * x) + x * x + 0.5625
    else:  # |x| >= 1/0.35
        ratio = math.log(math.erfc(x) * x) + x * x + 0.5625
    z = set_low_word(x, 0)
    r = ieee754_exp(-z * z - 0.5625) * ieee754_exp((z - x) * (z + x) + ratio)
    if hx >= 0:
        return ONE - r / x
    return r / x - ONE


def fdlibm_erfc(x: float) -> float:
    """``erfc(x)`` keeping the original's interval dispatch."""
    hx = high_word(x)
    ix = hx & 0x7FFFFFFF
    if ix >= 0x7FF00000:  # erfc(NaN) = NaN, erfc(+-inf) = 0 or 2
        return float(((hx >> 31) & 1) << 1) + ONE / x
    if ix < 0x3FEB0000:  # |x| < 0.84375
        if ix < 0x3C700000:  # |x| < 2**-56
            return ONE - x
        z = x * x
        r = PP0 + z * (PP1 + z * (PP2 + z * (PP3 + z * PP4)))
        s = ONE + z * (QQ1 + z * (QQ2 + z * (QQ3 + z * (QQ4 + z * QQ5))))
        y = r / s
        if hx < 0x3FD00000:  # x < 1/4
            return ONE - (x + x * y)
        r = x * y
        r += x - 0.5
        return 0.5 - r
    if ix < 0x3FF40000:  # 0.84375 <= |x| < 1.25
        p_over_q = math.erf(fabs(x)) - ERX
        if hx >= 0:
            return ONE - ERX - p_over_q
        return ONE + ERX + p_over_q
    if ix < 0x403C0000:  # |x| < 28
        x = fabs(x)
        s = ONE / (x * x)
        if ix < 0x4006DB6D:  # |x| < 1/0.35 ~ 2.857143
            ratio = math.log(math.erfc(x) * x) + x * x + 0.5625
        else:  # |x| >= 1/0.35
            if hx < 0 and ix >= 0x40180000:  # x < -6
                return 2.0 - TINY  # erfc(x) ~ 2
            ratio = math.log(math.erfc(fabs(x)) * fabs(x)) + x * x + 0.5625
        z = set_low_word(x, 0)
        r = ieee754_exp(-z * z - 0.5625) * ieee754_exp((z - x) * (z + x) + ratio)
        if hx > 0:
            return r / x
        return 2.0 - r / x
    if hx > 0:
        return TINY * TINY  # underflow
    return 2.0 - TINY  # x < -28, erfc = 2
