"""Port of Fdlibm 5.3 ``s_cbrt.c``: cube root."""

from __future__ import annotations

from repro.fdlibm.bits import high_word, low_word, set_high_word, set_low_word

B1 = 715094163  # B1 = (682-0.03306235651)*2**20
B2 = 696219795  # B2 = (664-0.03306235651)*2**20
C = 5.42857142857142815906e-01
D = -7.05306122448979611050e-01
E = 1.41428571428571436819e00
F = 1.60714285714285720630e00
G = 3.57142857142857150787e-01


def fdlibm_cbrt(x: float) -> float:
    """``cbrt(x)``: rough 5-bit estimate then Newton refinement."""
    hx = high_word(x)
    sign = hx & 0x80000000
    hx &= 0x7FFFFFFF  # hx ^ sign in C: clear the sign bit
    if hx >= 0x7FF00000:
        return x + x  # cbrt(NaN, inf) is itself
    if (hx | low_word(x)) == 0:
        return x  # cbrt(0) is itself
    x = set_high_word(x, hx)  # x <- |x|
    # Rough cbrt to 5 bits.
    t = 0.0
    if hx < 0x00100000:  # subnormal number
        t = set_high_word(t, 0x43500000)  # t = 2**54
        t *= x
        t = set_high_word(t, high_word(t) // 3 + B2)
    else:
        t = set_high_word(t, hx // 3 + B1)
    # New cbrt to 23 bits.
    r = t * t / x
    s = C + r * t
    t *= G + F / (s + E + D / s)
    # Chop to 20 bits and make it larger than cbrt(x).
    t = set_low_word(t, 0)
    t = set_high_word(t, high_word(t) + 1)
    # One Newton step to 53 bits.
    s = t * t
    r = x / s
    w = t + t
    r = (r - t) / (w + r)
    t = t + t * r
    # Restore the sign bit.
    t = set_high_word(t, high_word(t) | sign)
    return t
