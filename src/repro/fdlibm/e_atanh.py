"""Port of Fdlibm 5.3 ``e_atanh.c``: ``__ieee754_atanh``."""

from __future__ import annotations

import math

from repro.fdlibm.bits import high_word, low_word, set_high_word
from repro.fdlibm.s_log1p import fdlibm_log1p

ONE = 1.0
HUGE = 1.0e300
ZERO = 0.0


def ieee754_atanh(x: float) -> float:
    """``__ieee754_atanh(x)``: inverse hyperbolic tangent on ``(-1, 1)``."""
    hx = high_word(x)
    lx = low_word(x)
    ix = hx & 0x7FFFFFFF
    if (ix | (1 if lx != 0 else 0)) > 0x3FF00000:  # |x| > 1
        return float("nan")
    if ix == 0x3FF00000:  # |x| == 1
        return math.copysign(math.inf, x)
    if ix < 0x3E300000 and (HUGE + x) > ZERO:  # |x| < 2**-28
        return x
    x = set_high_word(x, ix)  # x <- |x|
    if ix < 0x3FE00000:  # |x| < 0.5
        t = x + x
        t = 0.5 * fdlibm_log1p(t + t * x / (ONE - x))
    else:
        t = 0.5 * fdlibm_log1p((x + x) / (ONE - x))
    if hx >= 0:
        return t
    return -t
