"""Port of Fdlibm 5.3 ``k_sin.c``: the sine kernel on ``[-pi/4, pi/4]``.

Not itself a benchmark (its third parameter is an ``int``, see Table 4), but
required by the ``sin``/``cos``/``tan`` entry points.
"""

from __future__ import annotations

from repro.fdlibm.bits import abs_high_word

HALF = 5.00000000000000000000e-01
S1 = -1.66666666666666324348e-01
S2 = 8.33333333332248946124e-03
S3 = -1.98412698298579331316e-04
S4 = 2.75573137070700676789e-06
S5 = -2.50507602534068634195e-08
S6 = 1.58969099521155010221e-10


def kernel_sin(x: float, y: float, iy: int) -> float:
    """``__kernel_sin(x, y, iy)``: sine of ``x + y``; ``iy`` tells if ``y`` is 0."""
    ix = abs_high_word(x)
    if ix < 0x3E400000:  # |x| < 2**-27
        if int(x) == 0:
            return x
    z = x * x
    v = z * x
    r = S2 + z * (S3 + z * (S4 + z * (S5 + z * S6)))
    if iy == 0:
        return x + v * (S1 + z * r)
    return x - ((z * (HALF * y - v * r) - y) - v * S1)
