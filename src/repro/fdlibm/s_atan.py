"""Port of Fdlibm 5.3 ``s_atan.c``: arc tangent."""

from __future__ import annotations

from repro.fdlibm.bits import fabs, high_word, low_word

ONE = 1.0
HUGE = 1.0e300

ATANHI = (
    4.63647609000806093515e-01,  # atan(0.5) high
    7.85398163397448278999e-01,  # atan(1.0) high
    9.82793723247329054082e-01,  # atan(1.5) high
    1.57079632679489655800e00,  # atan(inf) high
)
ATANLO = (
    2.26987774529616870924e-17,
    3.06161699786838301793e-17,
    1.39033110312309984516e-17,
    6.12323399573676603587e-17,
)
AT = (
    3.33333333333329318027e-01,
    -1.99999999998764832476e-01,
    1.42857142725034663711e-01,
    -1.11111104054623557880e-01,
    9.09088713343650656196e-02,
    -7.69187620504482999495e-02,
    6.66107313738753120669e-02,
    -5.83357013379057348645e-02,
    4.97687799461593236017e-02,
    -3.65315727442169155270e-02,
    1.62858201153657823623e-02,
)


def fdlibm_atan(x: float) -> float:
    """``atan(x)`` with the original's four-interval argument reduction."""
    hx = high_word(x)
    ix = hx & 0x7FFFFFFF
    if ix >= 0x44100000:  # |x| >= 2**66
        if ix > 0x7FF00000 or (ix == 0x7FF00000 and low_word(x) != 0):
            return x + x  # NaN
        if hx > 0:
            return ATANHI[3] + ATANLO[3]
        return -ATANHI[3] - ATANLO[3]
    if ix < 0x3FDC0000:  # |x| < 0.4375
        if ix < 0x3E200000:  # |x| < 2**-29
            if HUGE + x > ONE:  # raise inexact
                return x
        idx = -1
    else:
        x = fabs(x)
        if ix < 0x3FF30000:  # |x| < 1.1875
            if ix < 0x3FE60000:  # 7/16 <= |x| < 11/16
                idx = 0
                x = (2.0 * x - ONE) / (2.0 + x)
            else:  # 11/16 <= |x| < 19/16
                idx = 1
                x = (x - ONE) / (x + ONE)
        else:
            if ix < 0x40038000:  # |x| < 2.4375
                idx = 2
                x = (x - 1.5) / (ONE + 1.5 * x)
            else:  # 2.4375 <= |x| < 2**66
                idx = 3
                x = -1.0 / x
    # End of argument reduction.
    z = x * x
    w = z * z
    s1 = z * (AT[0] + w * (AT[2] + w * (AT[4] + w * (AT[6] + w * (AT[8] + w * AT[10])))))
    s2 = w * (AT[1] + w * (AT[3] + w * (AT[5] + w * (AT[7] + w * AT[9]))))
    if idx < 0:
        return x - x * (s1 + s2)
    z = ATANHI[idx] - ((x * (s1 + s2) - ATANLO[idx]) - x)
    if hx < 0:
        return -z
    return z
