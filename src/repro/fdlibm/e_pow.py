"""Port of Fdlibm 5.3 ``e_pow.c``: ``__ieee754_pow(x, y)``.

The benchmark with the richest special-case ladder (Table 2: 114 branches):
integer-ness of ``y``, signed zeros, infinities, overflow/underflow of
``y*log2(x)`` and the final ``2**(p_h+p_l)`` reconstruction.  All conditionals
of the original are kept.
"""

from __future__ import annotations

import math

from repro.fdlibm.bits import (
    fabs,
    high_word,
    low_word,
    set_high_word,
    set_low_word,
)
from repro.fdlibm.e_sqrt import ieee754_sqrt

BP = (1.0, 1.5)
DP_H = (0.0, 5.84962487220764160156e-01)
DP_L = (0.0, 1.35003920212974897128e-08)
ZERO = 0.0
ONE = 1.0
TWO = 2.0
TWO53 = 9007199254740992.0
HUGE = 1.0e300
TINY = 1.0e-300
L1 = 5.99999999999994648725e-01
L2 = 4.28571428578550184252e-01
L3 = 3.33333329818377432918e-01
L4 = 2.72728123808534006489e-01
L5 = 2.30660745775561754067e-01
L6 = 2.06975017800338417784e-01
P1 = 1.66666666666666019037e-01
P2 = -2.77777777770155933842e-03
P3 = 6.61375632143793436117e-05
P4 = -1.65339022054652515390e-06
P5 = 4.13813679705723846039e-08
LG2 = 6.93147180559945286227e-01
LG2_H = 6.93147182464599609375e-01
LG2_L = -1.90465429995776804525e-09
OVT = 8.0085662595372944372e-0017
CP = 9.61796693925975554329e-01
CP_H = 9.61796700954437255859e-01
CP_L = -7.02846165095275826516e-09
IVLN2 = 1.44269504088896338700e00
IVLN2_H = 1.44269502162933349609e00
IVLN2_L = 1.92596299112661746887e-08


def ieee754_pow(x: float, y: float) -> float:  # noqa: C901 - mirrors the C original
    """``__ieee754_pow(x, y)`` with the full special-case ladder."""
    hx = high_word(x)
    lx = low_word(x)
    hy = high_word(y)
    ly = low_word(y)
    ix = hx & 0x7FFFFFFF
    iy = hy & 0x7FFFFFFF

    # y == 0: x**0 = 1.
    if (iy | ly) == 0:
        return ONE
    # +-NaN returns x + y.
    if (
        ix > 0x7FF00000
        or (ix == 0x7FF00000 and lx != 0)
        or iy > 0x7FF00000
        or (iy == 0x7FF00000 and ly != 0)
    ):
        return x + y

    # Determine if y is an odd integer when x < 0.
    # yisint = 0: y not an integer; 1: odd integer; 2: even integer.
    yisint = 0
    if hx < 0:
        if iy >= 0x43400000:
            yisint = 2  # even integer y (|y| >= 2**52)
        elif iy >= 0x3FF00000:
            k = (iy >> 20) - 0x3FF  # exponent of y
            if k > 20:
                j = ly >> (52 - k)
                if (j << (52 - k)) & 0xFFFFFFFF == ly:
                    yisint = 2 - (j & 1)
            elif ly == 0:
                j = iy >> (20 - k)
                if (j << (20 - k)) == iy:
                    yisint = 2 - (j & 1)

    # Special values of y.
    if ly == 0:
        if iy == 0x7FF00000:  # y is +-inf
            if ((ix - 0x3FF00000) | lx) == 0:
                return y - y  # (+-1)**+-inf is NaN
            if ix >= 0x3FF00000:  # (|x| > 1)**+-inf = inf, 0
                if hy >= 0:
                    return y
                return ZERO
            if hy < 0:  # (|x| < 1)**-inf = inf
                return -y
            return ZERO
        if iy == 0x3FF00000:  # y is +-1
            if hy < 0:
                return ONE / x
            return x
        if hy == 0x40000000:  # y is 2
            return x * x
        if hy == 0x3FE00000:  # y is 0.5
            if hx >= 0:  # x >= +0
                return ieee754_sqrt(x)

    ax = fabs(x)
    # Special values of x.
    if lx == 0:
        if ix == 0x7FF00000 or ix == 0 or ix == 0x3FF00000:
            z = ax  # x is +-0, +-inf, +-1
            if hy < 0:
                z = ONE / z  # z = 1/|x|
            if hx < 0:
                if ((ix - 0x3FF00000) | yisint) == 0:
                    return float("nan")  # (-1)**non-int is NaN
                if yisint == 1:
                    z = -z  # (x < 0)**odd = -(|x|**odd)
            return z

    n = (hx >> 31) + 1
    # (x < 0)**(non-int) is NaN.
    if (n | yisint) == 0:
        return float("nan")
    s = ONE  # sign of the result
    if (n | (yisint - 1)) == 0:
        s = -ONE  # (-ve)**(odd int)

    # |y| is huge.
    if iy > 0x41E00000:  # |y| > 2**31
        if iy > 0x43F00000:  # |y| > 2**64, must over/underflow
            if ix <= 0x3FEFFFFF:
                if hy < 0:
                    return HUGE * HUGE
                return TINY * TINY
            if ix >= 0x3FF00000:
                if hy > 0:
                    return HUGE * HUGE
                return TINY * TINY
        # Over/underflow if x is not close to one.
        if ix < 0x3FEFFFFF:
            if hy < 0:
                return s * HUGE * HUGE
            return s * TINY * TINY
        if ix > 0x3FF00000:
            if hy > 0:
                return s * HUGE * HUGE
            return s * TINY * TINY
        # |1 - x| is tiny: compute log(x) by x - x^2/2 + x^3/3 - x^4/4.
        t = ax - ONE
        w = (t * t) * (0.5 - t * (0.3333333333333333333333 - t * 0.25))
        u = IVLN2_H * t
        v = t * IVLN2_L - w * IVLN2
        t1 = u + v
        t1 = set_low_word(t1, 0)
        t2 = v - (t1 - u)
    else:
        n = 0
        # Take care of subnormal numbers.
        if ix < 0x00100000:
            ax *= TWO53
            n -= 53
            ix = high_word(ax)
        n += (ix >> 20) - 0x3FF
        j = ix & 0x000FFFFF
        # Determine the interval.
        ix = j | 0x3FF00000  # normalize ix
        if j <= 0x3988E:
            k = 0  # |x| < sqrt(3/2)
        elif j < 0xBB67A:
            k = 1  # |x| < sqrt(3)
        else:
            k = 0
            n += 1
            ix -= 0x00100000
        ax = set_high_word(ax, ix)
        # Compute ss = s_h + s_l = (x-1)/(x+1) or (x-1.5)/(x+1.5).
        u = ax - BP[k]
        v = ONE / (ax + BP[k])
        ss = u * v
        s_h = set_low_word(ss, 0)
        # t_h = ax + bp[k] (high part).
        t_h = set_high_word(ZERO, ((ix >> 1) | 0x20000000) + 0x00080000 + (k << 18))
        t_l = ax - (t_h - BP[k])
        s_l = v * ((u - s_h * t_h) - s_h * t_l)
        # Compute log(ax).
        s2 = ss * ss
        r = s2 * s2 * (L1 + s2 * (L2 + s2 * (L3 + s2 * (L4 + s2 * (L5 + s2 * L6)))))
        r += s_l * (s_h + ss)
        s2 = s_h * s_h
        t_h = 3.0 + s2 + r
        t_h = set_low_word(t_h, 0)
        t_l = r - ((t_h - 3.0) - s2)
        # u + v = ss*(1 + ...).
        u = s_h * t_h
        v = s_l * t_h + t_l * ss
        # 2/(3log2)*(ss + ...).
        p_h = u + v
        p_h = set_low_word(p_h, 0)
        p_l = v - (p_h - u)
        z_h = CP_H * p_h
        z_l = CP_L * p_h + p_l * CP + DP_L[k]
        # log2(ax) = (ss + ..)*2/(3*log2) = n + dp_h + z_h + z_l.
        t = float(n)
        t1 = ((z_h + z_l) + DP_H[k]) + t
        t1 = set_low_word(t1, 0)
        t2 = z_l - (((t1 - t) - DP_H[k]) - z_h)

    # Split y into y1 + y2 and compute (y1 + y2)*(t1 + t2).
    y1 = set_low_word(y, 0)
    p_l = (y - y1) * t1 + y * t2
    p_h = y1 * t1
    z = p_l + p_h
    j = high_word(z)
    i = low_word(z)
    if j >= 0x40900000:  # z >= 1024
        if ((j - 0x40900000) | i) != 0:  # z > 1024
            return s * HUGE * HUGE  # overflow
        if p_l + OVT > z - p_h:
            return s * HUGE * HUGE  # overflow
    elif (j & 0x7FFFFFFF) >= 0x4090CC00:  # z <= -1075
        if ((j - (0xC090CC00 - 0x100000000)) | i) != 0:  # z < -1075
            return s * TINY * TINY  # underflow
        if p_l <= z - p_h:
            return s * TINY * TINY  # underflow

    # Compute 2**(p_h + p_l).
    i = j & 0x7FFFFFFF
    k = (i >> 20) - 0x3FF
    n = 0
    if i > 0x3FE00000:  # if |z| > 0.5, set n = [z + 0.5]
        n = j + (0x00100000 >> (k + 1))
        k = ((n & 0x7FFFFFFF) >> 20) - 0x3FF  # new k for n
        t = set_high_word(ZERO, n & ~(0x000FFFFF >> k))
        n = ((n & 0x000FFFFF) | 0x00100000) >> (20 - k)
        if j < 0:
            n = -n
        p_h -= t
    t = p_l + p_h
    t = set_low_word(t, 0)
    u = t * LG2_H
    v = (p_l - (t - p_h)) * LG2 + t * LG2_L
    z = u + v
    w = v - (z - u)
    t = z * z
    t1 = z - t * (P1 + t * (P2 + t * (P3 + t * (P4 + t * P5))))
    r = (z * t1) / (t1 - TWO) - (w + z * w)
    z = ONE - (r - z)
    j = high_word(z)
    j += n << 20
    if (j >> 20) <= 0:  # subnormal output
        z = math.ldexp(z, n)
    else:
        z = set_high_word(z, high_word(z) + (n << 20))
    return s * z
