"""The Fdlibm functions the paper excludes from its evaluation (Table 4).

Three exclusion reasons appear in the paper: functions with no branch,
functions whose input parameters are not floating-point, and static C
functions.  This registry reproduces Table 4 so the exclusion bench can
regenerate it.
"""

from __future__ import annotations

from dataclasses import dataclass

NO_BRANCH = "no branch"
UNSUPPORTED_INPUT = "unsupported input type"
STATIC_FUNCTION = "static C function"


@dataclass(frozen=True)
class ExcludedFunction:
    file: str
    function: str
    reason: str


EXCLUDED: tuple[ExcludedFunction, ...] = (
    ExcludedFunction("e_gamma_r.c", "ieee754_gamma_r(double)", NO_BRANCH),
    ExcludedFunction("e_gamma.c", "ieee754_gamma(double)", NO_BRANCH),
    ExcludedFunction("e_j0.c", "pzero(double)", STATIC_FUNCTION),
    ExcludedFunction("e_j0.c", "qzero(double)", STATIC_FUNCTION),
    ExcludedFunction("e_j1.c", "pone(double)", STATIC_FUNCTION),
    ExcludedFunction("e_j1.c", "qone(double)", STATIC_FUNCTION),
    ExcludedFunction("e_jn.c", "ieee754_jn(int, double)", UNSUPPORTED_INPUT),
    ExcludedFunction("e_jn.c", "ieee754_yn(int, double)", UNSUPPORTED_INPUT),
    ExcludedFunction("e_lgamma_r.c", "sin_pi(double)", STATIC_FUNCTION),
    ExcludedFunction("e_lgamma_r.c", "ieee754_lgammar_r(double, int*)", UNSUPPORTED_INPUT),
    ExcludedFunction("e_lgamma.c", "ieee754_lgamma(double)", NO_BRANCH),
    ExcludedFunction("k_rem_pio2.c", "kernel_rem_pio2(double*, double*, int, int, const int*)", UNSUPPORTED_INPUT),
    ExcludedFunction("k_sin.c", "kernel_sin(double, double, int)", UNSUPPORTED_INPUT),
    ExcludedFunction("k_standard.c", "kernel_standard(double, double, int)", UNSUPPORTED_INPUT),
    ExcludedFunction("k_tan.c", "kernel_tan(double, double, int)", UNSUPPORTED_INPUT),
    ExcludedFunction("s_copysign.c", "copysign(double)", NO_BRANCH),
    ExcludedFunction("s_fabs.c", "fabs(double)", NO_BRANCH),
    ExcludedFunction("s_finite.c", "finite(double)", NO_BRANCH),
    ExcludedFunction("s_frexp.c", "frexp(double, int*)", UNSUPPORTED_INPUT),
    ExcludedFunction("s_isnan.c", "isnan(double)", NO_BRANCH),
    ExcludedFunction("s_ldexp.c", "ldexp(double, int)", UNSUPPORTED_INPUT),
    ExcludedFunction("s_lib_version.c", "lib_versioin(double)", NO_BRANCH),
    ExcludedFunction("s_matherr.c", "matherr(struct exception*)", UNSUPPORTED_INPUT),
    ExcludedFunction("s_scalbn.c", "scalbn(double, int)", UNSUPPORTED_INPUT),
    ExcludedFunction("s_signgam.c", "signgam(double)", NO_BRANCH),
    ExcludedFunction("s_significand.c", "significand(double)", NO_BRANCH),
    ExcludedFunction("w_acos.c", "acos(double)", NO_BRANCH),
    ExcludedFunction("w_acosh.c", "acosh(double)", NO_BRANCH),
    ExcludedFunction("w_asin.c", "asin(double)", NO_BRANCH),
    ExcludedFunction("w_atan2.c", "atan2(double, double)", NO_BRANCH),
    ExcludedFunction("w_atanh.c", "atanh(double)", NO_BRANCH),
    ExcludedFunction("w_cosh.c", "cosh(double)", NO_BRANCH),
    ExcludedFunction("w_exp.c", "exp(double)", NO_BRANCH),
    ExcludedFunction("w_fmod.c", "fmod(double, double)", NO_BRANCH),
    ExcludedFunction("w_gamma_r.c", "gamma_r(double, int*)", NO_BRANCH),
    ExcludedFunction("w_gamma.c", "gamma(double, int*)", NO_BRANCH),
    ExcludedFunction("w_hypot.c", "hypot(double, double)", NO_BRANCH),
    ExcludedFunction("w_j0.c", "j0(double)", NO_BRANCH),
    ExcludedFunction("w_j0.c", "y0(double)", NO_BRANCH),
    ExcludedFunction("w_j1.c", "j1(double)", NO_BRANCH),
    ExcludedFunction("w_j1.c", "y1(double)", NO_BRANCH),
    ExcludedFunction("w_jn.c", "jn(double)", NO_BRANCH),
    ExcludedFunction("w_jn.c", "yn(double)", NO_BRANCH),
    ExcludedFunction("w_lgamma_r.c", "lgamma_r(double, int*)", NO_BRANCH),
    ExcludedFunction("w_lgamma.c", "lgamma(double)", NO_BRANCH),
    ExcludedFunction("w_log.c", "log(double)", NO_BRANCH),
    ExcludedFunction("w_log10.c", "log10(double)", NO_BRANCH),
    ExcludedFunction("w_pow.c", "pow(double, double)", NO_BRANCH),
    ExcludedFunction("w_remainder.c", "remainder(double, double)", NO_BRANCH),
    ExcludedFunction("w_scalb.c", "scalb(double, double)", NO_BRANCH),
    ExcludedFunction("w_sinh.c", "sinh(double)", NO_BRANCH),
    ExcludedFunction("w_sqrt.c", "sqrt(double)", NO_BRANCH),
)


def excluded_by_reason() -> dict[str, list[ExcludedFunction]]:
    """Group the exclusions by reason, as the paper's Sect. A summarizes them."""
    groups: dict[str, list[ExcludedFunction]] = {}
    for item in EXCLUDED:
        groups.setdefault(item.reason, []).append(item)
    return groups
