"""Port of Fdlibm 5.3 ``e_rem_pio2.c``: argument reduction modulo pi/2.

``ieee754_rem_pio2(x)`` returns ``(n, y0, y1)`` where the C original writes
``y0``/``y1`` through its ``double *y`` output parameter (CoverMe reduces
pointer outputs away, Sect. 5.3).  The very large argument path of the C code
calls ``__kernel_rem_pio2``; that helper has non-floating-point parameters and
is excluded from the benchmarks (Table 4), so the port performs the same
reduction with an equivalent extended-precision remainder.
"""

from __future__ import annotations

import math

from repro.fdlibm.bits import fabs, high_word, low_word

TWO24 = 1.67772160000000000000e07
INVPIO2 = 6.36619772367581382433e-01
PIO2_1 = 1.57079632673412561417e00
PIO2_1T = 6.07710050650619224932e-11
PIO2_2 = 6.07710050630396597660e-11
PIO2_2T = 2.02226624879595063154e-21
PIO2_3 = 2.02226624871116645580e-21
PIO2_3T = 8.47842766036889956997e-32
HALF = 0.5

#: High words of n*pi/2 for n = 1..32, used by the medium-size argument path.
NPIO2_HW = tuple(high_word(n * (math.pi / 2.0)) for n in range(1, 33))


def ieee754_rem_pio2(x: float) -> tuple[int, float, float]:
    """``__ieee754_rem_pio2(x, y)``: return ``(n, y[0], y[1])``."""
    hx = high_word(x)
    ix = hx & 0x7FFFFFFF
    if ix <= 0x3FE921FB:  # |x| <= pi/4, no reduction needed
        return 0, x, 0.0
    if ix < 0x4002D97C:  # |x| < 3*pi/4, special-cased for speed
        if hx > 0:
            z = x - PIO2_1
            if ix != 0x3FF921FB:  # 33+53 bits of pi/2 are enough
                y0 = z - PIO2_1T
                y1 = (z - y0) - PIO2_1T
            else:  # near pi/2, use 33+33+53 bits
                z -= PIO2_2
                y0 = z - PIO2_2T
                y1 = (z - y0) - PIO2_2T
            return 1, y0, y1
        z = x + PIO2_1
        if ix != 0x3FF921FB:
            y0 = z + PIO2_1T
            y1 = (z - y0) + PIO2_1T
        else:
            z += PIO2_2
            y0 = z + PIO2_2T
            y1 = (z - y0) + PIO2_2T
        return -1, y0, y1
    if ix <= 0x413921FB:  # |x| <= 2^19 * (pi/2), medium-size arguments
        t = fabs(x)
        n = int(t * INVPIO2 + HALF)
        fn = float(n)
        r = t - fn * PIO2_1
        w = fn * PIO2_1T  # first round, good to 85 bits
        if n < 32 and ix != NPIO2_HW[n - 1]:
            y0 = r - w
        else:
            j = ix >> 20
            y0 = r - w
            i = j - ((high_word(y0) >> 20) & 0x7FF)
            if i > 16:  # second iteration needed, good to 118 bits
                t2 = r
                w = fn * PIO2_2
                r = t2 - w
                w = fn * PIO2_2T - ((t2 - r) - w)
                y0 = r - w
                i = j - ((high_word(y0) >> 20) & 0x7FF)
                if i > 49:  # third iteration, 151 bits accuracy
                    t3 = r
                    w = fn * PIO2_3
                    r = t3 - w
                    w = fn * PIO2_3T - ((t3 - r) - w)
                    y0 = r - w
        y1 = (r - y0) - w
        if hx < 0:
            return -n, -y0, -y1
        return n, y0, y1
    # All other (very large) arguments.
    if ix >= 0x7FF00000:  # x is inf or NaN
        y0 = x - x
        return 0, y0, y0
    # The C original dispatches to __kernel_rem_pio2 here; reproduce the
    # reduction with an extended-precision remainder.
    t = fabs(x)
    n = int(math.floor(t * INVPIO2 + HALF))
    r = math.remainder(t, math.pi / 2.0)
    y0 = r
    y1 = r - y0
    n &= 0x7FFFFFFF
    if hx < 0:
        return -n, -y0, -y1
    return n, y0, y1
