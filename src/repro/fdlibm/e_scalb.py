"""Port of Fdlibm 5.3 ``e_scalb.c``: ``__ieee754_scalb(x, fn)``.

``scalb(x, fn)`` multiplies ``x`` by ``2**fn`` where ``fn`` is itself a
double; non-integral ``fn`` yields NaN.  Uses the ``s_scalbn`` helper port.
"""

from __future__ import annotations

from repro.fdlibm.s_rint import fdlibm_rint
from repro.fdlibm.s_scalbn import fdlibm_scalbn


def _isnan(value: float) -> bool:
    return value != value


def ieee754_scalb(x: float, fn: float) -> float:
    """``__ieee754_scalb(x, fn)`` following the original's guard ladder."""
    if _isnan(x) or _isnan(fn):
        return x * fn
    if not (fn < float("inf") and fn > float("-inf")):  # fn is +-inf
        if fn > 0.0:
            return x * fn
        return x / (-fn)
    if fdlibm_rint(fn) != fn:  # fn is not an integer
        return float("nan")
    if fn > 65000.0:
        return fdlibm_scalbn(x, 65000)
    if -fn > 65000.0:
        return fdlibm_scalbn(x, -65000)
    return fdlibm_scalbn(x, int(fn))
