"""Port of Fdlibm 5.3 ``s_modf.c``: split into integral and fractional parts.

The C original writes the integral part through ``double *iptr``; the port
returns ``(fractional, integral)`` instead (pointer outputs are reduced away,
Sect. 5.3).
"""

from __future__ import annotations

from repro.fdlibm.bits import from_words, high_word, low_word

ONE = 1.0


def fdlibm_modf(x: float) -> tuple[float, float]:
    """``modf(x, iptr)``: return ``(frac, int)`` with both parts signed like x."""
    i0 = high_word(x)
    i1 = low_word(x)
    j0 = ((i0 >> 20) & 0x7FF) - 0x3FF  # exponent of x
    if j0 < 20:  # integer part in the high word
        if j0 < 0:  # |x| < 1
            iptr = from_words(i0 & 0x80000000, 0)  # *iptr = +-0
            return x, iptr
        i = 0x000FFFFF >> j0
        if ((i0 & i) | i1) == 0:  # x is integral
            iptr = x
            return from_words(i0 & 0x80000000, 0), iptr  # return +-0
        iptr = from_words(i0 & (~i), 0)
        return x - iptr, iptr
    if j0 > 51:  # no fraction part
        iptr = x * ONE
        return from_words(i0 & 0x80000000, 0), iptr  # return +-0 (or NaN)
    # Fraction part in the low word.
    i = 0xFFFFFFFF >> (j0 - 20)
    if (i1 & i) == 0:  # x is integral
        iptr = x
        return from_words(i0 & 0x80000000, 0), iptr
    iptr = from_words(i0, i1 & (~i))
    return x - iptr, iptr
