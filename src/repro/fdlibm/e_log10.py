"""Port of Fdlibm 5.3 ``e_log10.c``: ``__ieee754_log10``."""

from __future__ import annotations

from repro.fdlibm.bits import high_word, low_word, set_high_word
from repro.fdlibm.e_log import ieee754_log

TWO54 = 1.80143985094819840000e16
IVLN10 = 4.34294481903251816668e-01
LOG10_2HI = 3.01029995663611771306e-01
LOG10_2LO = 3.69423907715893078616e-13
ZERO = 0.0


def ieee754_log10(x: float) -> float:
    """``__ieee754_log10(x)``: base-10 logarithm via ``ieee754_log``."""
    hx = high_word(x)
    lx = low_word(x)
    k = 0
    if hx < 0x00100000:  # x < 2**-1022
        if ((hx & 0x7FFFFFFF) | lx) == 0:
            return float("-inf")  # log10(+-0) = -inf
        if hx < 0:
            return float("nan")  # log10(-#) = NaN
        k -= 54
        x *= TWO54  # scale up subnormal x
        hx = high_word(x)
    if hx >= 0x7FF00000:  # x is inf or NaN
        return x + x
    k += (hx >> 20) - 1023
    i = (k & 0x80000000) >> 31
    hx = (hx & 0x000FFFFF) | ((0x3FF - i) << 20)
    y = float(k + i)
    x = set_high_word(x, hx)
    z = y * LOG10_2LO + IVLN10 * ieee754_log(x)
    return z + y * LOG10_2HI
