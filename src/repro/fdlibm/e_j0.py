"""Port of Fdlibm 5.3 ``e_j0.c``: Bessel functions ``j0`` and ``y0``.

The interval dispatch and all conditionals of the original are preserved.
The rational-approximation leaves (``pzero``/``qzero`` and the small-argument
polynomials) are straight-line code in the original; the port computes those
leaf values through ``scipy.special``, which does not affect any branch.
"""

from __future__ import annotations

from scipy import special as _special

from repro.fdlibm.bits import fabs, high_word, low_word
from repro.fdlibm.e_log import ieee754_log
from repro.fdlibm.e_sqrt import ieee754_sqrt
from repro.fdlibm.s_cos import fdlibm_cos
from repro.fdlibm.s_sin import fdlibm_sin

ONE = 1.0
ZERO = 0.0
HUGE = 1.0e300
INVSQRTPI = 5.64189583547756279280e-01
TPI = 6.36619772367581382433e-01  # 2/pi


def ieee754_j0(x: float) -> float:
    """``__ieee754_j0(x)``: Bessel function of the first kind, order 0."""
    hx = high_word(x)
    ix = hx & 0x7FFFFFFF
    if ix >= 0x7FF00000:  # j0(NaN) = NaN, j0(+-inf) = 0
        return ONE / (x * x)
    x = fabs(x)
    if ix >= 0x40000000:  # |x| >= 2.0
        s = fdlibm_sin(x)
        c = fdlibm_cos(x)
        ss = s - c
        cc = s + c
        if ix < 0x7FE00000:  # make sure x+x does not overflow
            z = -fdlibm_cos(x + x)
            if (s * c) < ZERO:
                cc = z / ss
            else:
                ss = z / cc
        # j0(x) = 1/sqrt(pi) * (P(0,x)*cc - Q(0,x)*ss) / sqrt(x)
        if ix > 0x48000000:  # |x| > 2**129: P -> 1, Q -> 0
            z = (INVSQRTPI * cc) / ieee754_sqrt(x)
        else:
            z = float(_special.j0(x))  # leaf value of the pzero/qzero formula
        return z
    if ix < 0x3F200000:  # |x| < 2**-13
        if HUGE + x > ONE:  # raise inexact if x != 0
            if ix < 0x3E400000:  # |x| < 2**-27
                return ONE
            return ONE - 0.25 * x * x
    z = x * x
    rational = float(_special.j0(x))  # leaf value of the R/S rational form
    if ix < 0x3FF00000:  # |x| < 1.0
        return rational
    u = 0.5 * x
    return (ONE + u) * (ONE - u) + (rational - (ONE + u) * (ONE - u))


def ieee754_y0(x: float) -> float:
    """``__ieee754_y0(x)``: Bessel function of the second kind, order 0."""
    hx = high_word(x)
    ix = 0x7FFFFFFF & hx
    lx = low_word(x)
    if ix >= 0x7FF00000:  # y0(NaN) = NaN, y0(inf) = 0
        return ONE / (x + x * x)
    if (ix | lx) == 0:  # y0(0) = -inf
        return float("-inf")
    if hx < 0:  # y0(x < 0) = NaN
        return float("nan")
    if ix >= 0x40000000:  # |x| >= 2.0
        s = fdlibm_sin(x)
        c = fdlibm_cos(x)
        ss = s - c
        cc = s + c
        if ix < 0x7FE00000:  # make sure x+x does not overflow
            z = -fdlibm_cos(x + x)
            if (s * c) < ZERO:
                cc = z / ss
            else:
                ss = z / cc
        if ix > 0x48000000:  # |x| > 2**129
            z = (INVSQRTPI * ss) / ieee754_sqrt(x)
        else:
            z = float(_special.y0(x))  # leaf value of the pzero/qzero formula
        return z
    if ix <= 0x3E400000:  # x < 2**-27
        return float(_special.y0(x)) if x > 0.0 else float("-inf")
    rational = float(_special.y0(x)) - TPI * ieee754_j0(x) * ieee754_log(x)
    return rational + TPI * (ieee754_j0(x) * ieee754_log(x))
