"""Port of Fdlibm 5.3 ``e_cosh.c``: ``__ieee754_cosh``."""

from __future__ import annotations

from repro.fdlibm.bits import fabs, high_word, low_word
from repro.fdlibm.e_exp import ieee754_exp
from repro.fdlibm.s_expm1 import fdlibm_expm1

ONE = 1.0
HALF = 0.5
HUGE = 1.0e300


def ieee754_cosh(x: float) -> float:
    """``__ieee754_cosh(x)`` with the original's five-interval dispatch."""
    ix = high_word(x) & 0x7FFFFFFF
    if ix >= 0x7FF00000:  # x is inf or NaN
        return x * x
    if ix < 0x3FD62E43:  # |x| in [0, 0.5*ln2]
        t = fdlibm_expm1(fabs(x))
        w = ONE + t
        if ix < 0x3C800000:  # cosh(tiny) = 1
            return w
        return ONE + (t * t) / (w + w)
    if ix < 0x40360000:  # |x| in [0.5*ln2, 22]
        t = ieee754_exp(fabs(x))
        return HALF * t + HALF / t
    if ix < 0x40862E42:  # |x| in [22, log(DBL_MAX)]
        return HALF * ieee754_exp(fabs(x))
    # |x| in [log(DBL_MAX), overflow threshold].
    lx = low_word(x)
    if ix < 0x408633CE or (ix == 0x408633CE and lx <= 0x8FB9F87D):
        w = ieee754_exp(HALF * fabs(x))
        t = HALF * w
        return t * w
    return HUGE * HUGE  # overflow
