"""Persistent, content-addressed storage for experiment runs.

``repro.store`` is the persistence layer under the experiment pipeline: a
:class:`~repro.store.runstore.RunStore` maps a content-addressed
:class:`~repro.store.runstore.JobKey` -- (instrumented-source hash, tool,
tool/config fingerprint, case key, profile fingerprint, seed, budget,
domain) -- to the versioned record of one completed (case, tool) run.
"""

from repro.store.runstore import JobKey, RunStore
from repro.store.serialize import (
    SCHEMA_VERSION,
    SchemaVersionError,
    canonical_json,
    comparison_row_from_dict,
    comparison_row_to_dict,
    coverme_result_from_dict,
    coverme_result_to_dict,
    fingerprint_of,
    summary_from_dict,
    summary_to_dict,
)

__all__ = [
    "SCHEMA_VERSION",
    "JobKey",
    "RunStore",
    "SchemaVersionError",
    "canonical_json",
    "comparison_row_from_dict",
    "comparison_row_to_dict",
    "coverme_result_from_dict",
    "coverme_result_to_dict",
    "fingerprint_of",
    "summary_from_dict",
    "summary_to_dict",
]
