"""Content-addressed, append-only store for experiment job results.

One *job* is one (benchmark case, tool) run under a fixed configuration; its
identity is a :class:`JobKey` whose fingerprint covers everything that can
change the result:

* the SHA-256 of the **instrumented source** (entry function plus extras,
  post-AST-pass), so editing a benchmark port or the instrumentation pass
  invalidates exactly the affected cases;
* the tool name and a fingerprint of the tool's configuration (seeds,
  CoverMe config, mutation parameters);
* a fingerprint of the execution :class:`~repro.experiments.runner.Profile`
  (minus fields that provably do not change results, see
  :func:`repro.experiments.pipeline.profile_fingerprint`);
* the budget fingerprint (baseline budgets derive from CoverMe's measured
  effort, so the derived budget is part of the baseline job's identity);
* the case key, the seed, the input domain, and whether line coverage was
  measured.

On disk a store is a directory holding ``meta.json`` (schema version) and
``runs.jsonl`` -- one JSON record per completed job, appended and flushed as
each job finishes so an interrupted run loses at most the job in flight.
The directory and ``meta.json`` are materialized lazily on the first
:meth:`RunStore.put`, so read-only consumers (``repro ls``, ``repro
render``, script-only runs) never mutate the path they are pointed at.  A
truncated final line (the process died mid-write) is skipped on load; every
complete record survives.  Constructing a :class:`RunStore` with
``root=None`` gives an in-memory store with identical semantics and no
persistence (used by the legacy one-shot experiment entry points).
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

try:  # advisory inter-process locking; absent on non-POSIX platforms
    import fcntl
except ImportError:  # pragma: no cover - POSIX-only dependency
    fcntl = None

from repro.store.serialize import (
    SCHEMA_VERSION,
    SchemaVersionError,
    canonical_json,
    fingerprint_of,
)


@dataclass(frozen=True)
class JobKey:
    """Identity of one (case, tool) job; the content address of its record.

    ``profile_name`` is carried for human-readable listings only and is
    excluded from the fingerprint -- two profiles with the same *values* and
    different names are the same work.
    """

    case_key: str
    tool: str
    source_hash: str
    tool_fingerprint: str
    profile_fingerprint: str
    budget_fingerprint: str = ""
    seed: Optional[int] = None
    measure_lines: bool = False
    domain: str = ""
    profile_name: str = ""

    def fingerprint(self) -> str:
        payload = dataclasses.asdict(self)
        payload.pop("profile_name")
        return fingerprint_of(payload)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "JobKey":
        return cls(**data)


class RunStore:
    """Append-only JSON-lines store of completed experiment jobs.

    Thread-safe for concurrent :meth:`put`/:meth:`get` (one lock guards the
    in-memory index and the file append), so thread-mode case workers can
    checkpoint jobs as they complete.  Appends are additionally guarded by an
    advisory ``fcntl`` lock on ``runs.jsonl`` (where available), so separate
    *processes* -- a running daemon plus a concurrent ``repro run``, or two
    CLI invocations pointed at the same store -- can append to one store
    without tearing or merging each other's lines.  Each writer's in-memory
    index only reflects records it loaded or wrote itself; cross-process
    visibility requires reopening the store (the service layer therefore
    funnels all writes of one coordinator through one process).
    """

    def __init__(self, root: "Path | str | None" = None):
        self.root = Path(root) if root is not None else None
        self._records: dict[str, dict] = {}
        self._keys: dict[str, JobKey] = {}
        self._lock = threading.Lock()
        self._handle = None
        if self.root is not None:
            self._check_meta()
            self._load()

    # -- disk layout --------------------------------------------------------

    @property
    def persistent(self) -> bool:
        return self.root is not None

    @property
    def runs_path(self) -> Optional[Path]:
        return self.root / "runs.jsonl" if self.root is not None else None

    @property
    def meta_path(self) -> Optional[Path]:
        return self.root / "meta.json" if self.root is not None else None

    def _check_meta(self) -> None:
        """Validate an existing ``meta.json``.  Creation is deferred to the
        first :meth:`put` (see :meth:`_materialize`) so opening a store for
        reading never writes into the target directory."""
        meta_path = self.meta_path
        if not meta_path.exists():
            return
        try:
            meta = json.loads(meta_path.read_text())
        except json.JSONDecodeError as exc:
            raise SchemaVersionError(f"unreadable store metadata at {meta_path}: {exc}") from exc
        version = meta.get("schema")
        if version != SCHEMA_VERSION:
            raise SchemaVersionError(
                f"store at {self.root} has schema version {version!r}; this code "
                f"reads version {SCHEMA_VERSION} (run `repro clean --store {self.root}`)"
            )

    def _materialize(self) -> None:
        """Create the store directory and ``meta.json``, open the append
        handle (first write only).

        Also the only point where a torn tail is physically truncated:
        loading merely skips it, so opening a store for reading never
        writes, while the first append cannot concatenate onto torn bytes.
        Concurrent writers race here safely: the directory create is
        idempotent, ``meta.json`` is written atomically (temp file +
        ``os.replace``, so a reader never sees a half-written file), and the
        torn-tail truncate runs under the append handle's advisory lock.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        if not self.meta_path.exists():
            fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".meta-", suffix=".tmp")
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps({"schema": SCHEMA_VERSION}) + "\n")
            os.replace(tmp, self.meta_path)
        self._handle = self.runs_path.open("a", encoding="utf-8")
        self._flock(self._handle)
        try:
            self._truncate_torn_tail()
        finally:
            self._funlock(self._handle)

    @staticmethod
    def _flock(handle) -> None:
        """Take the advisory inter-process lock on ``handle`` (no-op where
        ``fcntl`` is unavailable; the instance lock still serializes threads)."""
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)

    @staticmethod
    def _funlock(handle) -> None:
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def _truncate_torn_tail(self) -> None:
        """Drop a partial final line left by a process killed mid-append.

        Without this, the next append would concatenate onto the torn tail
        and produce one unparseable merged line -- silently losing the first
        record checkpointed after a resume.  Called from :meth:`_materialize`
        (write path) only; :meth:`_load` tolerates the torn tail in memory.
        """
        runs_path = self.runs_path
        data = runs_path.read_bytes()
        if not data or data.endswith(b"\n"):
            return
        cut = data.rfind(b"\n") + 1  # 0 when no complete line survives
        with runs_path.open("r+b") as handle:
            handle.truncate(cut)

    def _load(self) -> None:
        runs_path = self.runs_path
        if not runs_path.exists():
            return
        with runs_path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A process killed mid-append leaves one truncated final
                    # line; every earlier record is intact.  Skip, do not die:
                    # tolerating the torn tail is what makes resume work.
                    continue
                if record.get("schema") != SCHEMA_VERSION:
                    raise SchemaVersionError(
                        f"record in {runs_path} has schema {record.get('schema')!r}; "
                        f"expected {SCHEMA_VERSION}"
                    )
                key = JobKey.from_dict(record["key"])
                fp = record.get("fingerprint") or key.fingerprint()
                self._records[fp] = record["payload"]
                self._keys[fp] = key

    # -- core API -----------------------------------------------------------

    def get(self, key: JobKey) -> Optional[dict]:
        """The stored payload for exactly this key, or ``None``."""
        return self._records.get(key.fingerprint())

    def get_satisfying(self, key: JobKey) -> Optional[dict]:
        """Like :meth:`get`, but a line-measuring record satisfies a job that
        does not need line coverage (its summary is a strict superset)."""
        payload = self.get(key)
        if payload is None and not key.measure_lines:
            payload = self.get(dataclasses.replace(key, measure_lines=True))
        return payload

    def put(self, key: JobKey, payload: dict) -> None:
        """Record a completed job and checkpoint it to disk immediately."""
        fp = key.fingerprint()
        line = canonical_json(
            {"schema": SCHEMA_VERSION, "fingerprint": fp, "key": key.to_dict(), "payload": payload}
        )
        with self._lock:
            self._records[fp] = payload
            self._keys[fp] = key
            if self.root is not None:
                if self._handle is None:
                    self._materialize()
                # One flock-guarded write+flush per record: the O_APPEND
                # handle always lands at the current end of file, and the
                # advisory lock keeps a concurrent writer in another process
                # from interleaving bytes within our line.
                self._flock(self._handle)
                try:
                    self._handle.write(line + "\n")
                    self._handle.flush()
                    os.fsync(self._handle.fileno())
                finally:
                    self._funlock(self._handle)

    def merge_segments(self, segments) -> dict:
        """Merge per-shard ``runs.jsonl`` segments into this store.

        ``segments`` is an iterable of paths -- each either a ``runs.jsonl``
        file or a store directory containing one.  Designed for collecting
        the per-worker stores of a distributed run back into one canonical
        store, with two guarantees the property tests pin down:

        * **Order independence**: records are deduplicated by fingerprint
          and written in sorted-fingerprint order through the locked
          :meth:`put` path, so merging the same segments in any order (or
          shard partitioning) produces a byte-identical ``runs.jsonl``.
        * **Torn-tail tolerance**: an unparseable line in a segment (a
          worker killed mid-append) is counted and skipped; it can never
          corrupt the merged store because every merged line is
          re-serialized canonically from the parsed record.

        Fingerprints already present in this store are skipped (their
        record exists; re-appending would duplicate lines), which also
        makes the merge idempotent.  Records are content-addressed, so two
        segments disagreeing on one fingerprint's payload cannot happen in
        healthy operation; if it does, the lexicographically smallest
        canonical line wins -- deterministic, whatever the segment order.

        Returns counters: ``segments``, ``records`` (parsed), ``merged``
        (newly written), ``duplicates`` (cross-segment repeats),
        ``present`` (already in this store), ``torn`` (skipped lines).
        """
        stats = {"segments": 0, "records": 0, "merged": 0,
                 "duplicates": 0, "present": 0, "torn": 0}
        chosen: dict[str, tuple[str, JobKey, dict]] = {}
        for segment in segments:
            path = Path(segment)
            if path.is_dir():
                path = path / "runs.jsonl"
            stats["segments"] += 1
            if not path.exists():
                continue
            with path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                        key = JobKey.from_dict(record["key"])
                        payload = record["payload"]
                    except (json.JSONDecodeError, KeyError, TypeError):
                        stats["torn"] += 1
                        continue
                    if record.get("schema") != SCHEMA_VERSION:
                        raise SchemaVersionError(
                            f"record in {path} has schema {record.get('schema')!r}; "
                            f"expected {SCHEMA_VERSION}"
                        )
                    stats["records"] += 1
                    fp = record.get("fingerprint") or key.fingerprint()
                    candidate = (canonical_json(record), key, payload)
                    if fp in chosen:
                        stats["duplicates"] += 1
                        if candidate[0] < chosen[fp][0]:
                            chosen[fp] = candidate
                    else:
                        chosen[fp] = candidate
        for fp in sorted(chosen):
            if fp in self._records:
                stats["present"] += 1
                continue
            _, key, payload = chosen[fp]
            self.put(key, payload)
            stats["merged"] += 1
        return stats

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: JobKey) -> bool:
        return key.fingerprint() in self._records

    def records(self) -> Iterator[tuple[JobKey, dict]]:
        """All (key, payload) pairs, in insertion order."""
        yield from ((self._keys[fp], payload) for fp, payload in self._records.items())

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def clear(self) -> int:
        """Drop every record (and the backing file).  Returns the count dropped."""
        with self._lock:
            dropped = len(self._records)
            self._records.clear()
            self._keys.clear()
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            if self.root is not None and self.runs_path.exists():
                self.runs_path.unlink()
        return dropped

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
