"""Versioned dict serialization for experiment result records.

Every record the :class:`~repro.store.runstore.RunStore` persists goes
through this module: plain-data dictionaries with an explicit ``"schema"``
version so a store written by one version of the code is either readable by
another or rejected loudly (never silently misinterpreted).

Three record types cover the experiment layer:

* :class:`~repro.core.report.ToolRunSummary` -- one (case, tool) run.
* :class:`~repro.core.report.CoverMeResult` -- the driver's result record,
  persisted *without* its per-launch ``traces`` (they are debugging detail,
  unbounded in size, and reconstructible by re-running).
* :class:`~repro.experiments.runner.ComparisonRow` -- one table row; the
  benchmark case itself is stored by its suite key, not by value.
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable, Optional

from repro.core.report import CoverMeResult, ToolRunSummary
from repro.instrument.runtime import BranchId

#: Version of the on-disk record layout.  Bump on any incompatible change to
#: the dictionaries produced below; ``from_dict`` rejects other versions.
SCHEMA_VERSION = 1


class SchemaVersionError(ValueError):
    """A record's schema version does not match :data:`SCHEMA_VERSION`."""


def _check_schema(data: dict, kind: str) -> None:
    version = data.get("schema")
    if version != SCHEMA_VERSION:
        raise SchemaVersionError(
            f"{kind} record has schema version {version!r}; "
            f"this code reads version {SCHEMA_VERSION} (run `repro clean` to rebuild the store)"
        )


def canonical_json(obj) -> str:
    """Canonical JSON used for fingerprints: sorted keys, no whitespace."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def fingerprint_of(obj) -> str:
    """SHA-256 hex digest of ``obj``'s canonical JSON form."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def _inputs_to_lists(inputs) -> list[list[float]]:
    return [[float(v) for v in item] for item in inputs]


def _inputs_from_lists(items) -> list[tuple[float, ...]]:
    return [tuple(float(v) for v in item) for item in items]


def _branches_to_list(branches) -> list[list]:
    """A frozenset of BranchIds as a sorted, JSON-stable list of pairs."""
    return sorted([b.conditional, b.outcome] for b in branches)


def _branches_from_list(items) -> frozenset[BranchId]:
    return frozenset(BranchId(int(label), bool(outcome)) for label, outcome in items)


# ---------------------------------------------------------------------------
# ToolRunSummary
# ---------------------------------------------------------------------------


def summary_to_dict(summary: ToolRunSummary) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "tool": summary.tool,
        "program": summary.program,
        "n_branches": summary.n_branches,
        "covered_branches": summary.covered_branches,
        "wall_time": summary.wall_time,
        "executions": summary.executions,
        "inputs": _inputs_to_lists(summary.inputs),
        "n_lines": summary.n_lines,
        "covered_lines": summary.covered_lines,
    }


def summary_from_dict(data: dict) -> ToolRunSummary:
    _check_schema(data, "ToolRunSummary")
    return ToolRunSummary(
        tool=data["tool"],
        program=data["program"],
        n_branches=int(data["n_branches"]),
        covered_branches=int(data["covered_branches"]),
        wall_time=float(data["wall_time"]),
        executions=int(data["executions"]),
        inputs=_inputs_from_lists(data["inputs"]),
        n_lines=int(data["n_lines"]),
        covered_lines=int(data["covered_lines"]),
    )


# ---------------------------------------------------------------------------
# CoverMeResult (persisted without its traces)
# ---------------------------------------------------------------------------


def coverme_result_to_dict(result: CoverMeResult) -> dict:
    """Serialize a :class:`CoverMeResult`, dropping the ``traces`` list."""
    return {
        "schema": SCHEMA_VERSION,
        "program": result.program,
        "inputs": _inputs_to_lists(result.inputs),
        "n_branches": result.n_branches,
        "covered": _branches_to_list(result.covered),
        "saturated": _branches_to_list(result.saturated),
        "infeasible": _branches_to_list(result.infeasible),
        "evaluations": result.evaluations,
        "wall_time": result.wall_time,
        "n_starts_used": result.n_starts_used,
    }


def coverme_result_from_dict(data: dict) -> CoverMeResult:
    _check_schema(data, "CoverMeResult")
    return CoverMeResult(
        program=data["program"],
        inputs=_inputs_from_lists(data["inputs"]),
        n_branches=int(data["n_branches"]),
        covered=_branches_from_list(data["covered"]),
        saturated=_branches_from_list(data["saturated"]),
        infeasible=_branches_from_list(data["infeasible"]),
        evaluations=int(data["evaluations"]),
        wall_time=float(data["wall_time"]),
        n_starts_used=int(data["n_starts_used"]),
        traces=[],
    )


# ---------------------------------------------------------------------------
# ComparisonRow (the benchmark case is stored by suite key, not by value)
# ---------------------------------------------------------------------------


def comparison_row_to_dict(row) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "case": row.case.key,
        "n_branches": row.n_branches,
        "results": {tool: summary_to_dict(summary) for tool, summary in row.results.items()},
    }


def comparison_row_from_dict(data: dict, case_lookup: Optional[Callable[[str], object]] = None):
    """Rebuild a :class:`ComparisonRow`; cases resolve through the suite by default."""
    from repro.experiments.runner import ComparisonRow
    from repro.fdlibm.suite import case_by_key

    _check_schema(data, "ComparisonRow")
    lookup = case_lookup if case_lookup is not None else case_by_key
    return ComparisonRow(
        case=lookup(data["case"]),
        n_branches=int(data["n_branches"]),
        results={tool: summary_from_dict(item) for tool, item in data["results"].items()},
    )
