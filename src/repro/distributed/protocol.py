"""Wire protocol of the distributed coordinator/worker layer.

Everything that crosses a machine boundary is JSON, and everything that
must survive the round trip *bit-exactly* is encoded losslessly:

* floats travel as ``float.hex()`` strings (``h2f``/``f2h``), which
  round-trip every finite value, ``inf``/``-inf`` and ``nan`` -- JSON
  number formatting would neither guarantee the last ulp nor carry the
  non-finite values at all;
* branch sets travel as integer masks (:func:`~repro.instrument.runtime.
  branch_mask` / ``branches_from_mask``, bit = ``(conditional << 1) |
  outcome``), an exact round trip;
* the per-lease saturation snapshot uses a **delta scheme** modeled on the
  native tier's ``CovAccumulator``: covered/infeasible sets only grow
  within a run, so the coordinator tracks which bits each worker has
  already seen (:class:`MaskSender`) and ships only the newly-set ones,
  plus a digest of the full mask.  The worker ORs the delta into its
  accumulator (:class:`MaskReceiver`) and verifies the digest; any
  mismatch (worker restart, a stolen lease carrying an older snapshot the
  sender could not express as a delta) raises :class:`MaskResync`, and the
  worker re-acquires with ``resync=true`` -- the coordinator then resets
  its sender state and re-sends the full mask.  Correctness never depends
  on the delta path: the digest gates every decode.

The coordinator keys result validation on its *own* lease objects (which
hold the original frozensets), so wire fidelity matters only for
worker-side execution -- but execution is exactly where bit-identity is
earned, hence the hex floats.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Optional

from repro.engine.worker import StartParams, StartResult, StartTask
from repro.instrument.runtime import BranchId, branch_mask, branches_from_mask

#: StartParams fields that are floats on the wire (hex-encoded).
_PARAM_FLOATS = ("step_size", "temperature", "zero_tolerance", "epsilon", "deadline")


class MaskResync(Exception):
    """A mask delta did not reproduce the sender's full mask (digest
    mismatch).  The receiver must re-acquire with ``resync`` set."""


def f2h(value: float) -> str:
    """Lossless float -> string (handles nan and +/-inf)."""
    return float(value).hex()


def h2f(text: str) -> float:
    """Inverse of :func:`f2h`."""
    return float.fromhex(text)


def mask_digest(mask: int) -> str:
    """Short content digest of a branch mask (gates every delta decode)."""
    return hashlib.sha256(hex(mask).encode("ascii")).hexdigest()[:16]


# ---------------------------------------------------------------------------
# StartParams / StartResult
# ---------------------------------------------------------------------------


def encode_params(params: StartParams) -> dict:
    data = dataclasses.asdict(params)
    for name in _PARAM_FLOATS:
        if data[name] is not None:
            data[name] = f2h(data[name])
    return data


def decode_params(data: dict) -> StartParams:
    fields = dict(data)
    for name in _PARAM_FLOATS:
        if fields.get(name) is not None:
            fields[name] = h2f(fields[name])
    return StartParams(**fields)


def encode_result(result: StartResult) -> dict:
    return {
        "index": result.index,
        "x0": [f2h(v) for v in result.x0],
        "x_star": [f2h(v) for v in result.x_star],
        "value": f2h(result.value),
        "covered": hex(branch_mask(result.covered)),
        "last_conditional": result.last_conditional,
        "last_outcome": result.last_outcome,
        "evaluations": result.evaluations,
        "skipped": result.skipped,
    }


def decode_result(data: dict) -> StartResult:
    return StartResult(
        index=int(data["index"]),
        x0=tuple(h2f(v) for v in data["x0"]),
        x_star=tuple(h2f(v) for v in data["x_star"]),
        value=h2f(data["value"]),
        covered=branches_from_mask(int(data["covered"], 16)),
        last_conditional=data.get("last_conditional"),
        last_outcome=data.get("last_outcome"),
        evaluations=int(data.get("evaluations", 0)),
        skipped=bool(data.get("skipped", False)),
    )


# ---------------------------------------------------------------------------
# Mask delta scheme (CovAccumulator-style: send only newly-set bits)
# ---------------------------------------------------------------------------


class MaskSender:
    """Coordinator-side per-(worker, run, kind) delta encoder.

    Tracks the bits the peer is known to hold; a mask that is a superset of
    them ships as a delta, anything else (only possible when a stolen lease
    carries an older snapshot) falls back to the full mask.
    """

    def __init__(self) -> None:
        self.known = 0

    def encode(self, mask: int) -> dict:
        if self.known & ~mask:
            payload = {"full": hex(mask), "new": None, "digest": mask_digest(mask)}
        else:
            payload = {"full": None, "new": hex(mask & ~self.known), "digest": mask_digest(mask)}
        self.known = mask
        return payload

    def reset(self) -> None:
        self.known = 0


class MaskReceiver:
    """Worker-side accumulator; the digest check gates every decode."""

    def __init__(self) -> None:
        self.acc = 0

    def decode(self, payload: dict) -> int:
        if payload.get("full") is not None:
            self.acc = int(payload["full"], 16)
        else:
            self.acc |= int(payload["new"], 16)
        if mask_digest(self.acc) != payload["digest"]:
            raise MaskResync("mask delta did not reproduce the sender's snapshot")
        return self.acc

    def reset(self) -> None:
        self.acc = 0


# ---------------------------------------------------------------------------
# Lease payloads
# ---------------------------------------------------------------------------


def encode_lease(
    lease,
    params: StartParams,
    covered_payload: dict,
    infeasible_payload: dict,
    case_key: Optional[str],
    ttl: float,
) -> dict:
    """The acquire-response body handed to a worker.

    Tasks share the lease's snapshot, so the masks are encoded once at
    lease level; tasks carry only their index and hex-encoded start point.
    """
    return {
        "lease": lease.id,
        "run": lease.run_id,
        "batch": lease.batch_index,
        "case": case_key,
        "ttl": ttl,
        "params": encode_params(params),
        "covered": covered_payload,
        "infeasible": infeasible_payload,
        "tasks": [{"index": t.index, "x0": [f2h(v) for v in t.x0]} for t in lease.tasks],
    }


def decode_lease_tasks(
    payload: dict,
    covered: frozenset[BranchId],
    infeasible: frozenset[BranchId],
) -> list[StartTask]:
    """Rebuild the lease's :class:`StartTask` list from the wire form.

    ``covered``/``infeasible`` are the snapshot sets already decoded from
    the lease's mask payloads (the caller owns the :class:`MaskReceiver`
    state, which is per run and kind).
    """
    return [
        StartTask(
            index=int(t["index"]),
            x0=tuple(h2f(v) for v in t["x0"]),
            covered=covered,
            infeasible=infeasible,
        )
        for t in payload["tasks"]
    ]
