"""The coordinator's lease table: the unit of distributed work dispatch.

A *lease* is one engine batch -- ``batch_size`` contiguous start indices
that share a frozen saturation snapshot.  Leases move through three
states:

* ``pending`` -- created (by the engine reaching the batch, or
  speculatively ahead of it) and waiting for a worker;
* ``active`` -- acquired by a worker, with a deadline; heartbeats extend
  it, and an expired deadline returns the lease to ``pending`` so an idle
  worker can reclaim ("steal") it -- a slow or dead machine never stalls
  the run;
* ``done`` -- results attached.

Completion is deliberately tolerant of steal races: the results of a lease
are a pure function of its tasks (same snapshot, same seeded start points
=> same :class:`StartResult`s), so a completion from a worker the lease
was stolen *from* is accepted just like one from the thief -- whichever
lands first wins, and both are bit-identical.  The determinism guarantee
therefore never depends on which worker ran what; only the coordinator's
in-order reduction does.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.engine.worker import StartResult, StartTask
from repro.instrument.runtime import BranchId

PENDING = "pending"
ACTIVE = "active"
DONE = "done"


@dataclass
class Lease:
    """One batch of starts offered to the worker fleet."""

    id: str
    run_id: str
    batch_index: int
    first_index: int
    tasks: list[StartTask]
    covered: frozenset[BranchId]
    infeasible: frozenset[BranchId]
    speculative: bool = False
    state: str = PENDING
    worker_id: Optional[str] = None
    deadline: Optional[float] = None
    attempts: int = 0
    steals: int = 0
    results: Optional[list[StartResult]] = field(default=None, repr=False)

    def matches(self, covered: frozenset, infeasible: frozenset) -> bool:
        """Whether this lease's snapshot equals the engine's actual one."""
        return self.covered == covered and self.infeasible == infeasible


class LeaseTable:
    """Thread-safe lease registry shared by the coordinator and its pools.

    All waiting happens on one condition variable: workers' acquires are
    non-blocking (pull-based polling over HTTP), while the coordinator's
    lease pools block in :meth:`wait` until their batch completes.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._leases: dict[str, Lease] = {}
        self._by_batch: dict[tuple[str, int], str] = {}
        self.total_steals = 0
        self.total_completed = 0
        self.total_cancelled = 0

    # -- mutation ----------------------------------------------------------

    def add(self, lease: Lease) -> None:
        with self._cond:
            if (lease.run_id, lease.batch_index) in self._by_batch:
                raise ValueError(
                    f"lease for run {lease.run_id} batch {lease.batch_index} already exists"
                )
            self._leases[lease.id] = lease
            self._by_batch[(lease.run_id, lease.batch_index)] = lease.id
            self._cond.notify_all()

    def cancel(self, lease_id: str) -> None:
        with self._cond:
            lease = self._leases.pop(lease_id, None)
            if lease is not None:
                self._by_batch.pop((lease.run_id, lease.batch_index), None)
                self.total_cancelled += 1
                self._cond.notify_all()

    def cancel_run(self, run_id: str) -> int:
        """Drop every lease of a finished run (its pool is going away)."""
        with self._cond:
            doomed = [lease.id for lease in self._leases.values() if lease.run_id == run_id]
            for lease_id in doomed:
                lease = self._leases.pop(lease_id)
                self._by_batch.pop((lease.run_id, lease.batch_index), None)
            if doomed:
                self._cond.notify_all()
            return len(doomed)

    def reclaim_expired(self, now: float) -> int:
        """Return expired active leases to pending (the steal mechanism)."""
        with self._cond:
            reclaimed = 0
            for lease in self._leases.values():
                if lease.state == ACTIVE and lease.deadline is not None and now >= lease.deadline:
                    lease.state = PENDING
                    lease.worker_id = None
                    lease.deadline = None
                    lease.steals += 1
                    self.total_steals += 1
                    reclaimed += 1
            if reclaimed:
                self._cond.notify_all()
            return reclaimed

    def acquire(
        self,
        worker_id: str,
        now: float,
        ttl: float,
        accept: Optional[Callable[[Lease], bool]] = None,
    ) -> Optional[Lease]:
        """Hand the oldest acceptable pending lease to ``worker_id``.

        Expired active leases are reclaimed first, so an idle worker's poll
        is also the moment stalled work gets stolen.  ``accept`` filters
        leases the caller cannot execute (e.g. a remote worker cannot run a
        lease whose run has no suite case to re-instrument from).
        """
        self.reclaim_expired(now)
        with self._cond:
            candidates = [
                lease
                for lease in self._leases.values()
                if lease.state == PENDING and (accept is None or accept(lease))
            ]
            if not candidates:
                return None
            lease = min(candidates, key=lambda item: (item.run_id, item.batch_index))
            lease.state = ACTIVE
            lease.worker_id = worker_id
            lease.deadline = now + ttl
            lease.attempts += 1
            return lease

    def heartbeat(self, lease_id: str, worker_id: str, now: float, ttl: float) -> bool:
        """Extend an active lease's deadline; False when no longer held."""
        with self._cond:
            lease = self._leases.get(lease_id)
            if lease is None or lease.state != ACTIVE or lease.worker_id != worker_id:
                return False
            lease.deadline = now + ttl
            return True

    def complete(self, lease_id: str, worker_id: str, results: list[StartResult]) -> bool:
        """Attach results; idempotent and steal-tolerant (see module doc)."""
        with self._cond:
            lease = self._leases.get(lease_id)
            if lease is None or lease.state == DONE:
                return False
            lease.state = DONE
            lease.worker_id = worker_id
            lease.results = sorted(results, key=lambda r: r.index)
            self.total_completed += 1
            self._cond.notify_all()
            return True

    def claim_local(self, lease_id: str) -> bool:
        """Atomically take a *pending* lease for synchronous local execution."""
        with self._cond:
            lease = self._leases.get(lease_id)
            if lease is None or lease.state != PENDING:
                return False
            lease.state = ACTIVE
            lease.worker_id = "local"
            lease.deadline = None  # synchronous: cannot be stolen mid-run
            lease.attempts += 1
            return True

    # -- queries -----------------------------------------------------------

    def get(self, lease_id: str) -> Optional[Lease]:
        with self._cond:
            return self._leases.get(lease_id)

    def find(self, run_id: str, batch_index: int) -> Optional[Lease]:
        with self._cond:
            lease_id = self._by_batch.get((run_id, batch_index))
            return self._leases.get(lease_id) if lease_id is not None else None

    def held_by(self, worker_id: str) -> Optional[Lease]:
        """The active lease a worker currently holds (resync re-encode)."""
        with self._cond:
            for lease in self._leases.values():
                if lease.state == ACTIVE and lease.worker_id == worker_id:
                    return lease
            return None

    def wait(self, lease_id: str, timeout: float) -> Optional[Lease]:
        """Block up to ``timeout`` for any table change; return the lease."""
        with self._cond:
            lease = self._leases.get(lease_id)
            if lease is not None and lease.state == DONE:
                return lease
            self._cond.wait(timeout)
            return self._leases.get(lease_id)

    def stats(self) -> dict:
        with self._cond:
            by_state = {PENDING: 0, ACTIVE: 0, DONE: 0}
            for lease in self._leases.values():
                by_state[lease.state] += 1
            return {
                "leases": dict(by_state),
                "steals": self.total_steals,
                "completed": self.total_completed,
                "cancelled": self.total_cancelled,
            }
