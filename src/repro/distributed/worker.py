"""The distributed worker: pull leases, execute starts, submit results.

A worker is a *client* of the coordinator -- pull-based, so work stealing
needs no server-side pushing: an idle worker's next poll is what reclaims
an expired lease.  The same loop body serves two transports:

* :class:`HTTPTransport` -- a remote process (``repro serve --role worker
  --coordinator URL``) speaking the daemon's ``/distributed/*`` endpoints
  through :class:`~repro.service.client.ServiceClient`.  Programs are
  re-instrumented from the lease's suite case, so the per-process
  instrumentation/specialization/native caches stay warm across leases.
* :class:`InlineTransport` -- an in-process thread used by the tests and
  the bit-identity property suite.  It exchanges the *same encoded JSON
  payloads* as the HTTP path (exercising hex floats, mask deltas and
  resync), only skipping the socket; programs are cloned from the
  coordinator's live engine, which also lets non-suite targets run
  distributed.

Execution itself is the engine's own serial :class:`StartPool` over the
lease's decoded tasks -- the identical ``run_start`` path a single-machine
run uses, against the identical frozen snapshot, which is where the
bit-identity guarantee bottoms out.

While executing, a daemon thread heartbeats the lease at a third of its
TTL; a worker that dies (or is ``kill -9``-ed) simply stops heartbeating
and its lease expires into stealable state.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.distributed.coordinator import LeaseCoordinator
from repro.distributed.protocol import (
    MaskReceiver,
    MaskResync,
    branches_from_mask,
    decode_lease_tasks,
    decode_params,
    decode_result,
    encode_result,
)
from repro.engine.pool import StartPool


def submit_payload(coordinator: LeaseCoordinator, body: dict) -> bool:
    """Decode one result submission and apply it (shared by HTTP + inline)."""
    results = [decode_result(item) for item in body.get("results", [])]
    return coordinator.submit_results(body["worker"], body["lease"], results)


class InlineTransport:
    """Direct coordinator calls carrying the encoded wire payloads."""

    def __init__(self, coordinator: LeaseCoordinator):
        self.coordinator = coordinator
        self._clones: dict[str, object] = {}

    def register(self, worker_id: str) -> dict:
        return self.coordinator.register_worker(worker_id)

    def acquire(self, worker_id: str, resync: bool = False) -> Optional[dict]:
        return self.coordinator.acquire(worker_id, inline_ok=True, resync=resync)

    def heartbeat(self, worker_id: str, lease_id: str) -> bool:
        return self.coordinator.heartbeat(worker_id, lease_id)

    def submit(self, body: dict) -> bool:
        return submit_payload(self.coordinator, body)

    def program_for(self, payload: dict):
        run_id = payload["run"]
        program = self._clones.get(run_id)
        if program is None:
            source = self.coordinator.inline_program(run_id)
            if source is None:
                return None
            # Clone: the compiled namespace's runtime handle is per-program
            # mutable state, and the engine's own thread is using the
            # original.
            program = source.clone()
            self._clones[run_id] = program
        return program


class HTTPTransport:
    """The remote worker's view of a coordinator daemon."""

    def __init__(self, client):
        self.client = client
        self._programs: dict[str, object] = {}

    def register(self, worker_id: str) -> dict:
        return self.client.register_worker(worker_id)

    def acquire(self, worker_id: str, resync: bool = False) -> Optional[dict]:
        return self.client.acquire_lease(worker_id, resync=resync).get("lease")

    def heartbeat(self, worker_id: str, lease_id: str) -> bool:
        return bool(self.client.lease_heartbeat(worker_id, lease_id).get("ok"))

    def submit(self, body: dict) -> bool:
        return bool(self.client.submit_lease(body).get("accepted"))

    def program_for(self, payload: dict):
        case_key = payload.get("case")
        if case_key is None:
            return None
        program = self._programs.get(case_key)
        if program is None:
            # Imported lazily so lifting client.py alone stays possible.
            from repro.fdlibm.suite import case_by_key
            from repro.service.jobs import instrument_for_lookup

            program = instrument_for_lookup(case_by_key(case_key))
            self._programs[case_key] = program
        return program


def _decode_lease(payload: dict, receivers: dict[tuple[str, str], MaskReceiver]):
    run_id = payload["run"]
    covered_mask = receivers.setdefault((run_id, "covered"), MaskReceiver()).decode(
        payload["covered"]
    )
    infeasible_mask = receivers.setdefault((run_id, "infeasible"), MaskReceiver()).decode(
        payload["infeasible"]
    )
    params = decode_params(payload["params"])
    tasks = decode_lease_tasks(
        payload, branches_from_mask(covered_mask), branches_from_mask(infeasible_mask)
    )
    return params, tasks


def execute_lease(program, payload: dict, receivers: dict) -> dict:
    """Run every start of one decoded lease; returns the submission body."""
    params, tasks = _decode_lease(payload, receivers)
    with StartPool(program, "serial", 1) as pool:
        results = list(pool.run_batch(params, tasks))
    return {
        "worker": payload.get("worker"),
        "lease": payload["lease"],
        "run": payload["run"],
        "results": [encode_result(r) for r in results],
    }


def run_worker(
    transport,
    worker_id: str,
    poll_interval: float = 0.25,
    stop_event: Optional[threading.Event] = None,
    max_leases: Optional[int] = None,
    announce=None,
) -> int:
    """The worker main loop; returns the number of leases completed.

    Stops when ``stop_event`` is set or ``max_leases`` is reached; a plain
    ``KeyboardInterrupt`` also exits cleanly (the in-flight lease simply
    expires and gets stolen).
    """
    info = transport.register(worker_id)
    heartbeat_interval = float(info.get("heartbeat_interval", 1.0))
    if announce is not None:
        announce(f"repro worker {worker_id}: registered (ttl {info.get('lease_ttl')}s)")
    receivers: dict[tuple[str, str], MaskReceiver] = {}
    completed = 0
    while not (stop_event is not None and stop_event.is_set()):
        if max_leases is not None and completed >= max_leases:
            break
        payload = transport.acquire(worker_id)
        if payload is None:
            # Re-register opportunistically so a coordinator restart (or a
            # worker_ttl lapse while idle) does not strand the worker.
            transport.register(worker_id)
            if stop_event is not None:
                stop_event.wait(poll_interval)
            else:
                time.sleep(poll_interval)
            continue
        program = transport.program_for(payload)
        if program is None:
            # A lease this transport cannot execute; let it expire for
            # someone who can (should not happen: acquire filters on it).
            time.sleep(poll_interval)
            continue
        payload["worker"] = worker_id
        lease_id = payload["lease"]
        done = threading.Event()

        def _beat(lease=lease_id, stop=done) -> None:
            while not stop.wait(heartbeat_interval):
                try:
                    if not transport.heartbeat(worker_id, lease):
                        return
                except Exception:  # noqa: BLE001 - a lost beat just risks a steal
                    return

        beater = threading.Thread(target=_beat, name=f"{worker_id}-heartbeat", daemon=True)
        beater.start()
        try:
            try:
                body = execute_lease(program, payload, receivers)
            except MaskResync:
                for receiver in receivers.values():
                    receiver.reset()
                fresh = transport.acquire(worker_id, resync=True)
                if fresh is None:
                    continue
                fresh["worker"] = worker_id
                body = execute_lease(program, fresh, receivers)
            transport.submit(body)
            completed += 1
        finally:
            done.set()
            beater.join(timeout=heartbeat_interval * 2)
    return completed


def start_inline_workers(
    coordinator: LeaseCoordinator, count: int, name_prefix: str = "inline"
) -> tuple[threading.Event, list[threading.Thread]]:
    """Spawn ``count`` in-process worker threads (test/embedding helper).

    Returns ``(stop_event, threads)``; set the event and join the threads
    to retire the fleet.
    """
    stop = threading.Event()
    threads = []
    for index in range(count):
        transport = InlineTransport(coordinator)
        thread = threading.Thread(
            target=run_worker,
            args=(transport, f"{name_prefix}-{index}"),
            kwargs={"poll_interval": 0.02, "stop_event": stop},
            name=f"repro-lease-worker-{index}",
            daemon=True,
        )
        threads.append(thread)
        thread.start()
    return stop, threads
