"""The lease coordinator: scale-out's counterpart to the service's scale-up.

One :class:`LeaseCoordinator` serves a whole daemon.  Each CoverMe job that
executes under it plugs a :class:`LeasePool` into the engine through
``CoverMeConfig.pool_factory``; the pool turns every engine batch into a
lease on the shared :class:`~repro.distributed.leases.LeaseTable`, where
registered workers (remote processes polling over HTTP, or in-process
worker threads in tests) pull, execute and complete them.

**Determinism.**  The engine's reduction loop is untouched: ``run_batch``
still returns batch results in start order, and the engine folds them with
the same ``_reduce`` as a single-machine run.  Workers only ever compute
:class:`StartResult`s, which are pure functions of (params, task) -- so
for any worker count, any steal interleaving, and any mix of remote/local
execution, the reduced result is bit-identical to serial execution.

**Speculation.**  Batch ``k+1``'s snapshot depends on batch ``k``'s
reduction, which would serialize the fleet.  The pool therefore issues
*speculative* leases for the next ``speculate`` batches under the latest
known snapshot (the common case: saturation stabilizes after the early
batches).  When the engine actually reaches a batch, the speculative lease
is validated against the real snapshot -- a match is adopted (its results,
possibly already computed, are exactly what the engine would have
requested), a mismatch is cancelled and re-issued.  Mispredicted remote
work is wasted wall-clock, never wrong bytes.

**Degradation.**  A lease that stays pending with no live workers (none
registered, or all presumed dead) is claimed by the pool itself and run on
a local serial :class:`StartPool` -- a coordinator with no fleet behaves
exactly like a single machine.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.distributed.leases import DONE, PENDING, Lease, LeaseTable
from repro.distributed.protocol import MaskSender, branch_mask, encode_lease
from repro.engine.pool import StartPool
from repro.engine.worker import StartParams, StartResult, StartTask

#: Default seconds before an unheartbeated active lease is stealable.
DEFAULT_LEASE_TTL = 10.0
#: Default seconds of silence before a registered worker is presumed dead.
DEFAULT_WORKER_TTL = 30.0
#: Default number of future batches leased speculatively.
DEFAULT_SPECULATE = 2


@dataclass
class RunHandle:
    """Coordinator-side state of one engine run executing under lease."""

    run_id: str
    engine: object = field(repr=False)
    case_key: Optional[str] = None
    params: Optional[StartParams] = field(default=None, repr=False)


class LeaseCoordinator:
    """Worker registry + lease table + the pool factory the service wires in.

    Args:
        lease_ttl: Seconds an acquired lease stays unstealable without a
            heartbeat.  Small values steal aggressively (tests force expiry
            this way); large values tolerate slow starts.
        worker_ttl: Seconds of silence before a registered worker stops
            counting as live (gates the local-execution fallback).
        speculate: Future batches leased ahead under the predicted snapshot.
        local_grace: Seconds a lease may sit pending *despite* live workers
            before the coordinator runs it locally; ``None`` (default) only
            falls back when no live workers remain.
        poll_interval: Coordinator-side wait granularity.
    """

    def __init__(
        self,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        worker_ttl: float = DEFAULT_WORKER_TTL,
        speculate: int = DEFAULT_SPECULATE,
        local_grace: Optional[float] = None,
        poll_interval: float = 0.05,
    ):
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be > 0")
        if speculate < 0:
            raise ValueError("speculate must be >= 0")
        self.lease_ttl = lease_ttl
        self.worker_ttl = worker_ttl
        self.speculate = speculate
        self.local_grace = local_grace
        self.poll_interval = poll_interval
        self.table = LeaseTable()
        self._lock = threading.Lock()
        self._runs: dict[str, RunHandle] = {}
        self._workers: dict[str, float] = {}
        self._senders: dict[tuple[str, str, str], MaskSender] = {}
        self._next_lease = 0
        self._next_run = 0
        self._counters = {"acquired": 0, "submitted": 0, "rejected": 0, "local_batches": 0}

    # -- worker registry ----------------------------------------------------

    def register_worker(self, worker_id: str) -> dict:
        with self._lock:
            self._workers[worker_id] = time.monotonic()
        return {
            "ok": True,
            "worker": worker_id,
            "lease_ttl": self.lease_ttl,
            "heartbeat_interval": self.lease_ttl / 3.0,
        }

    def touch(self, worker_id: str) -> None:
        with self._lock:
            if worker_id in self._workers:
                self._workers[worker_id] = time.monotonic()

    def live_workers(self, now: Optional[float] = None) -> list[str]:
        now = time.monotonic() if now is None else now
        with self._lock:
            return [w for w, seen in self._workers.items() if now - seen <= self.worker_ttl]

    # -- run registry (called by LeasePool) ---------------------------------

    def register_run(self, engine, case_key: Optional[str]) -> RunHandle:
        with self._lock:
            self._next_run += 1
            handle = RunHandle(run_id=f"r{self._next_run:08d}", engine=engine, case_key=case_key)
            self._runs[handle.run_id] = handle
            return handle

    def finish_run(self, run_id: str) -> None:
        self.table.cancel_run(run_id)
        with self._lock:
            self._runs.pop(run_id, None)
            for key in [k for k in self._senders if k[1] == run_id]:
                del self._senders[key]

    def run_handle(self, run_id: str) -> Optional[RunHandle]:
        with self._lock:
            return self._runs.get(run_id)

    def inline_program(self, run_id: str):
        """The run's live program object (in-process workers clone it)."""
        handle = self.run_handle(run_id)
        return None if handle is None else handle.engine.program

    def _new_lease_id(self) -> str:
        with self._lock:
            self._next_lease += 1
            return f"L{self._next_lease:08d}"

    def _sender(self, worker_id: str, run_id: str, kind: str) -> MaskSender:
        with self._lock:
            return self._senders.setdefault((worker_id, run_id, kind), MaskSender())

    def _reset_senders(self, worker_id: str) -> None:
        with self._lock:
            for key in [k for k in self._senders if k[0] == worker_id]:
                del self._senders[key]

    # -- worker-facing protocol (the HTTP handlers call these) ---------------

    def acquire(self, worker_id: str, inline_ok: bool = False, resync: bool = False) -> Optional[dict]:
        """Assign (or, under ``resync``, re-encode) a lease for a worker.

        Remote workers re-instrument the program from the run's suite case,
        so runs without a ``case_key`` are only offered when ``inline_ok``
        (in-process workers reading the program through the coordinator).
        """
        self.touch(worker_id)
        if resync:
            # The worker's mask accumulators desynced (restart, stolen lease
            # with an older snapshot): drop the delta state so every mask in
            # the next payload ships in full, and re-offer the lease the
            # worker already holds rather than assigning a second one.
            self._reset_senders(worker_id)
            held = self.table.held_by(worker_id)
            if held is not None:
                return self._encode_for(worker_id, held)

        def acceptable(lease: Lease) -> bool:
            handle = self.run_handle(lease.run_id)
            if handle is None or handle.params is None:
                return False
            return inline_ok or handle.case_key is not None

        lease = self.table.acquire(worker_id, time.monotonic(), self.lease_ttl, accept=acceptable)
        if lease is None:
            return None
        with self._lock:
            self._counters["acquired"] += 1
        return self._encode_for(worker_id, lease)

    def _encode_for(self, worker_id: str, lease: Lease) -> dict:
        handle = self.run_handle(lease.run_id)
        covered = self._sender(worker_id, lease.run_id, "covered").encode(
            branch_mask(lease.covered)
        )
        infeasible = self._sender(worker_id, lease.run_id, "infeasible").encode(
            branch_mask(lease.infeasible)
        )
        return encode_lease(
            lease, handle.params, covered, infeasible, handle.case_key, self.lease_ttl
        )

    def heartbeat(self, worker_id: str, lease_id: str) -> bool:
        self.touch(worker_id)
        return self.table.heartbeat(lease_id, worker_id, time.monotonic(), self.lease_ttl)

    def submit_results(self, worker_id: str, lease_id: str, results: list[StartResult]) -> bool:
        """Accept a completed lease; False for cancelled/already-done leases."""
        self.touch(worker_id)
        accepted = self.table.complete(lease_id, worker_id, results)
        with self._lock:
            self._counters["submitted" if accepted else "rejected"] += 1
        return accepted

    # -- engine-facing API (called by LeasePool) -----------------------------

    def ensure_lease(
        self, handle: RunHandle, batch_index: int, tasks: list[StartTask]
    ) -> Lease:
        """The lease for the batch the engine just scheduled.

        Validates a speculative lease against the engine's actual snapshot:
        match -> adopt (its tasks are bit-identical by construction, and its
        results may already be in), mismatch -> cancel and re-issue.
        """
        covered, infeasible = tasks[0].covered, tasks[0].infeasible
        existing = self.table.find(handle.run_id, batch_index)
        if existing is not None:
            if existing.matches(covered, infeasible):
                existing.speculative = False
                return existing
            self.table.cancel(existing.id)
        lease = Lease(
            id=self._new_lease_id(),
            run_id=handle.run_id,
            batch_index=batch_index,
            first_index=tasks[0].index,
            tasks=list(tasks),
            covered=covered,
            infeasible=infeasible,
        )
        self.table.add(lease)
        return lease

    def speculate_ahead(self, handle: RunHandle, batch_index: int, tasks: list[StartTask]) -> None:
        """Lease the next ``speculate`` batches under the current snapshot."""
        covered, infeasible = tasks[0].covered, tasks[0].infeasible
        engine = handle.engine
        for future_index in range(batch_index + 1, batch_index + 1 + self.speculate):
            _, count = engine.batch_plan(future_index)
            if count <= 0:
                break
            existing = self.table.find(handle.run_id, future_index)
            if existing is not None:
                if existing.matches(covered, infeasible):
                    continue
                if existing.state == PENDING or existing.speculative:
                    self.table.cancel(existing.id)
                else:
                    continue
            future_tasks = engine.tasks_for_batch(future_index, covered, infeasible)
            self.table.add(
                Lease(
                    id=self._new_lease_id(),
                    run_id=handle.run_id,
                    batch_index=future_index,
                    first_index=future_tasks[0].index,
                    tasks=future_tasks,
                    covered=covered,
                    infeasible=infeasible,
                    speculative=True,
                )
            )

    def note_local_batch(self) -> None:
        with self._lock:
            self._counters["local_batches"] += 1

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        now = time.monotonic()
        with self._lock:
            workers = {
                w: round(now - seen, 3) for w, seen in sorted(self._workers.items())
            }
            counters = dict(self._counters)
            n_runs = len(self._runs)
        return {
            "workers": workers,
            "live_workers": self.live_workers(now),
            "runs": n_runs,
            "counters": counters,
            **self.table.stats(),
            "lease_ttl": self.lease_ttl,
            "speculate": self.speculate,
        }

    # -- the seam into the engine -------------------------------------------

    def pool_factory(self, case_key: Optional[str] = None) -> Callable:
        """A ``CoverMeConfig.pool_factory`` running the engine on this fleet."""

        def factory(engine) -> "LeasePool":
            return LeasePool(self, engine, case_key=case_key)

        return factory


class LeasePool:
    """The engine-side pool adapter: batches in, leases out.

    Declares ``streams_lazily`` because results are yielded to the engine
    one at a time from the completed lease -- a consumer that stops early
    never observes (or accounts for) the tail, exactly like the serial
    pool.  Remote workers may have computed those abandoned results; that
    cost is wall-clock already spent elsewhere, never part of this run's
    ``evaluations``, which therefore matches the serial baseline bit for
    bit.
    """

    streams_lazily = True

    def __init__(self, coordinator: LeaseCoordinator, engine, case_key: Optional[str] = None):
        self.coordinator = coordinator
        self.engine = engine
        self.case_key = case_key
        self.handle: Optional[RunHandle] = None
        self._local: Optional[StartPool] = None

    # -- context management --------------------------------------------------

    def __enter__(self) -> "LeasePool":
        self.handle = self.coordinator.register_run(self.engine, self.case_key)
        return self

    def __exit__(self, *exc) -> None:
        if self.handle is not None:
            self.coordinator.finish_run(self.handle.run_id)
            self.handle = None
        if self._local is not None:
            self._local.close()
            self._local = None

    # -- the StartPool contract ----------------------------------------------

    def run_batch(self, params: StartParams, tasks: list[StartTask]):
        if self.handle.params is None:
            self.handle.params = params
        batch_index = tasks[0].index // self.engine.config.effective_batch_size()
        lease = self.coordinator.ensure_lease(self.handle, batch_index, tasks)
        self.coordinator.speculate_ahead(self.handle, batch_index, tasks)
        results = self._await(lease, params)
        yield from results

    def _await(self, lease: Lease, params: StartParams) -> list[StartResult]:
        """Block until the batch's lease completes, stealing/falling back."""
        table = self.coordinator.table
        wait_started = time.monotonic()
        while True:
            now = time.monotonic()
            table.reclaim_expired(now)
            current = table.get(lease.id)
            if current is None:
                raise RuntimeError(f"lease {lease.id} vanished while awaited")
            if current.state == DONE:
                return current.results
            if current.state == PENDING and self._should_run_locally(now, wait_started):
                if table.claim_local(lease.id):
                    self.coordinator.note_local_batch()
                    results = sorted(
                        self._local_pool().run_batch(params, current.tasks),
                        key=lambda r: r.index,
                    )
                    table.complete(lease.id, "local", results)
                    return results
            table.wait(lease.id, timeout=self.coordinator.poll_interval)

    def _should_run_locally(self, now: float, wait_started: float) -> bool:
        if not self.coordinator.live_workers(now):
            return True
        grace = self.coordinator.local_grace
        return grace is not None and (now - wait_started) >= grace

    def _local_pool(self) -> StartPool:
        if self._local is None:
            self._local = StartPool(self.engine.program, "serial", 1)
        return self._local
