"""Run the experiment pipeline against a remote coordinator daemon.

:class:`RemoteServiceAdapter` implements the two-method surface the
pipeline actually uses (``submit(request, budget=, resume=)`` /
``wait(job)``) on top of the daemon's HTTP API, so ``repro run
--coordinator URL`` drives the exact same two-wave submission logic as a
local run -- the only difference is *where* jobs execute.

Budgets are derived server-side by the same
:func:`~repro.service.jobs.derive_budget` rule the pipeline's explicit
budgets follow: CoverMe gets the profile's wall-clock budget, and because
the pipeline submits a case's baselines only after its CoverMe result
landed (and was stored server-side), the server derives the identical
"10x CoverMe effort" baseline budget the pipeline would have passed.
Stored records are therefore bit-identical between local and remote runs.

A 429 (admission queue full, or the daemon's rate limit) is retried with
backoff honoring ``Retry-After`` -- backpressure is flow control here, not
an error.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Optional

from repro.experiments.runner import Profile
from repro.service.client import ClientError, ServiceClient
from repro.store import summary_from_dict


class RemoteJob:
    """A submitted job's handle: its fingerprint plus the last seen view."""

    def __init__(self, fingerprint: str, view: dict):
        self.fingerprint = fingerprint
        self.view = view


class RemoteOutcome:
    """Duck-typed :class:`~repro.service.core.JobOutcome` built from a view."""

    def __init__(self, view: dict):
        self.view = view
        self.cached = bool(view.get("cached"))
        self.payload = view.get("payload") or {}
        self.warnings = list(view.get("warnings") or [])

    @property
    def summary(self):
        return summary_from_dict(self.payload["summary"])

    @property
    def evaluations(self) -> Optional[int]:
        return self.payload.get("tool_evaluations")


class RemoteServiceAdapter:
    """The pipeline's service seam, over HTTP.

    Args:
        client: A :class:`ServiceClient` pointed at the daemon (carrying
            the auth token, if the daemon requires one).
        wait_timeout: Per-job completion timeout.
        max_submit_wait: Total seconds to keep retrying 429 responses.
    """

    def __init__(
        self,
        client: ServiceClient,
        wait_timeout: float = 3600.0,
        max_submit_wait: float = 600.0,
    ):
        self.client = client
        self.wait_timeout = wait_timeout
        self.max_submit_wait = max_submit_wait

    def _overrides_for(self, profile: Profile) -> dict:
        # Ship every profile field as an override: the server-side base
        # profile then cannot matter, so client and server never need to
        # agree on named-profile definitions.
        data = dataclasses.asdict(profile)
        data.pop("name")
        return data

    def submit(self, request, budget=None, resume: Optional[bool] = None) -> RemoteJob:
        """Submit one job; ``budget`` is re-derived server-side (see module
        docstring) and ``resume=False`` is not supported remotely."""
        if resume is not None and not resume:
            raise ValueError(
                "remote runs always resume from the daemon's store; "
                "use `repro clean` on the daemon's store for a fresh run"
            )
        del budget  # derived server-side from the same rule
        profile = request.profile
        deadline = time.monotonic() + self.max_submit_wait
        delay = 0.25
        while True:
            try:
                view = self.client.submit(
                    request.case.key,
                    tool=request.tool,
                    profile=profile.name if profile.name in ("smoke", "default", "full") else "smoke",
                    overrides=self._overrides_for(profile),
                    measure_lines=request.measure_lines,
                )
                return RemoteJob(view["job"], view)
            except ClientError as exc:
                if exc.status != 429 or time.monotonic() >= deadline:
                    raise
                retry_after = exc.payload.get("retry_after")
                time.sleep(float(retry_after) if retry_after else delay)
                delay = min(delay * 2, 5.0)

    def wait(self, job: RemoteJob, timeout: Optional[float] = None) -> RemoteOutcome:
        if job.view.get("state") == "done":
            return RemoteOutcome(job.view)
        view = self.client.wait_for(
            job.fingerprint, timeout=timeout if timeout is not None else self.wait_timeout
        )
        job.view = view
        return RemoteOutcome(view)

    def close(self, close_store: Optional[bool] = None) -> None:
        """No-op (the daemon owns its resources); present for seam parity."""
