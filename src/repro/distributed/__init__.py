"""Distributed work-stealing multi-start: shard the start space across
machines while preserving the engine's seeded bit-identity guarantee.

Layering (all over the existing service/engine seams):

* :mod:`repro.distributed.protocol` -- lossless JSON wire forms (hex
  floats, branch masks, CovAccumulator-style mask deltas with digests);
* :mod:`repro.distributed.leases` -- the lease table (one lease per
  engine batch) with TTL expiry and steal-on-reclaim;
* :mod:`repro.distributed.coordinator` -- :class:`LeaseCoordinator` (the
  worker registry + speculative lease issue) and :class:`LeasePool` (the
  ``CoverMeConfig.pool_factory`` adapter the engine runs on);
* :mod:`repro.distributed.worker` -- the pull-based worker loop over
  either transport (HTTP subprocess or in-process thread);
* :mod:`repro.distributed.remote` -- the pipeline's HTTP service adapter
  (``repro run --coordinator URL``).
"""

from repro.distributed.coordinator import LeaseCoordinator, LeasePool
from repro.distributed.leases import Lease, LeaseTable
from repro.distributed.protocol import MaskReceiver, MaskResync, MaskSender
from repro.distributed.remote import RemoteServiceAdapter
from repro.distributed.worker import (
    HTTPTransport,
    InlineTransport,
    run_worker,
    start_inline_workers,
)

__all__ = [
    "LeaseCoordinator",
    "LeasePool",
    "Lease",
    "LeaseTable",
    "MaskReceiver",
    "MaskResync",
    "MaskSender",
    "RemoteServiceAdapter",
    "HTTPTransport",
    "InlineTransport",
    "run_worker",
    "start_inline_workers",
]
