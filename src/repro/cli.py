"""The unified ``repro`` command line: run, render, inspect and clean
experiment pipelines.

::

    python -m repro run table2 --profile smoke --store .repro-store --resume
    python -m repro run table2 table5 figure5 --profile smoke --store .repro-store
    python -m repro render table2 --profile smoke --store .repro-store
    python -m repro serve --store .repro-store --port 8642
    python -m repro serve --role coordinator --store .repro-store --token T
    python -m repro serve --role worker --coordinator http://coord:8642 --token T
    python -m repro run table2 --profile smoke --coordinator http://coord:8642
    python -m repro merge --store .repro-store shard-a/ shard-b/
    python -m repro ls --store .repro-store
    python -m repro clean --store .repro-store

``run`` plans the requested specs as one deduplicated job batch, loads
completed (case, tool) jobs from the store, executes and checkpoints the
rest, and prints each spec's rendered artifact.  ``render`` is the read-only
view: it renders purely from stored records and fails (listing the missing
jobs) rather than executing anything.  ``serve`` exposes the same service
layer as a long-running HTTP daemon over the same store (see
:mod:`repro.service.http` for the endpoints); ``--role coordinator`` also
leases engine batches to registered shard workers, ``--role worker`` pulls
and executes leases from a coordinator, and ``run --coordinator URL``
drives the pipeline through a remote daemon.  ``merge`` collects per-shard
``runs.jsonl`` segments into one canonical store (see
:mod:`repro.distributed`).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path
from typing import Optional

from repro.experiments.runner import PROFILES
from repro.instrument.runtime import EXECUTION_PROFILES
from repro.store import RunStore

DEFAULT_STORE = ".repro-store"


def build_parser() -> argparse.ArgumentParser:
    from repro.experiments.pipeline import available_specs

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the paper's tables and figures through the persistent "
        "experiment pipeline.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_store_arg(p):
        p.add_argument(
            "--store",
            default=DEFAULT_STORE,
            help=f"run-store directory (default: {DEFAULT_STORE})",
        )

    def add_profile_args(p):
        p.add_argument("--profile", choices=sorted(PROFILES), default="smoke")
        p.add_argument("--seed", type=int, default=None, help="override the profile's seed")
        p.add_argument(
            "--cases", type=int, default=None, metavar="N",
            help="limit the run to the first N suite cases",
        )
        p.add_argument(
            "--eval-profile", choices=sorted(EXECUTION_PROFILES), default=None,
            help="override the optimizer inner-loop execution profile "
            "(e.g. penalty-specialized for the compiled tier)",
        )
        p.add_argument(
            "--batch-starts",
            action=argparse.BooleanOptionalAction,
            default=None,
            help="prime each chunk of starts with one batched kernel call "
            "(penalty-specialized profile only; --no-batch-starts forces "
            "scalar first evaluations)",
        )
        p.add_argument(
            "--proposal-population", type=int, default=None, metavar="K",
            help="basin-hopping perturbation candidates screened per hop "
            "(default 1 = the paper's single-proposal trajectory)",
        )
        p.add_argument(
            "--native-threads", type=int, default=None, metavar="K",
            help="C threads per native batched evaluation (penalty-native "
            "profile; results are bit-identical for every value)",
        )

    run_p = sub.add_parser("run", help="execute specs (resuming from the store) and render them")
    run_p.add_argument("specs", nargs="+", choices=available_specs(), metavar="SPEC")
    add_profile_args(run_p)
    store_group = run_p.add_mutually_exclusive_group()
    store_group.add_argument(
        "--store",
        default=DEFAULT_STORE,
        help=f"run-store directory (default: {DEFAULT_STORE})",
    )
    store_group.add_argument(
        "--ephemeral", action="store_true",
        help="use an in-memory store (no persistence; the legacy one-shot behavior)",
    )
    run_p.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="load completed jobs from the store (the default; --no-resume == --fresh)",
    )
    run_p.add_argument(
        "--fresh", action="store_true",
        help="ignore stored records and re-execute every job (new records overwrite old)",
    )
    run_p.add_argument("--jobs", type=int, default=1, metavar="N", help="case-level workers")
    run_p.add_argument(
        "--mode", choices=("serial", "thread", "process"), default="thread",
        help="worker dispatch mode for --jobs > 1 (all modes, including "
        "process, checkpoint into persistent stores via the service layer)",
    )
    run_p.add_argument(
        "--out", default=None, metavar="DIR",
        help="also write each rendered artifact to DIR/<spec>_<profile>.txt",
    )
    run_p.add_argument(
        "--coordinator", default=None, metavar="URL",
        help="execute jobs on a remote coordinator daemon (repro serve "
        "--role coordinator) instead of locally; records land in the "
        "daemon's store",
    )
    run_p.add_argument(
        "--token", default=None,
        help="bearer token for a coordinator that requires one",
    )

    render_p = sub.add_parser("render", help="render specs purely from stored records")
    render_p.add_argument("specs", nargs="+", choices=available_specs(), metavar="SPEC")
    add_profile_args(render_p)
    add_store_arg(render_p)
    render_p.add_argument("--out", default=None, metavar="DIR")

    ls_p = sub.add_parser("ls", help="list the records in a run store")
    add_store_arg(ls_p)

    clean_p = sub.add_parser("clean", help="drop every record from a run store")
    add_store_arg(clean_p)

    serve_p = sub.add_parser(
        "serve",
        help="run the coverage service as an HTTP daemon (stdlib asyncio)",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument(
        "--port", type=int, default=8642,
        help="listen port (0 picks an ephemeral port; the actual one is "
        "printed in the 'listening on' line)",
    )
    serve_store = serve_p.add_mutually_exclusive_group()
    serve_store.add_argument(
        "--store",
        default=DEFAULT_STORE,
        help=f"shared result-cache directory (default: {DEFAULT_STORE})",
    )
    serve_store.add_argument(
        "--ephemeral", action="store_true",
        help="serve over an in-memory store (nothing persists across restarts)",
    )
    serve_p.add_argument(
        "--workers", type=int, default=1, metavar="N", help="warm service workers"
    )
    serve_p.add_argument(
        "--worker-mode", choices=("thread", "process"), default="thread",
        help="how workers execute jobs (process = persistent worker processes)",
    )
    serve_p.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="shard count for the job router (default: worker count; results "
        "are bit-identical for every value)",
    )
    serve_p.add_argument(
        "--queue-limit", type=int, default=64, metavar="N",
        help="max pending admissions before submissions get HTTP 429",
    )
    serve_p.add_argument(
        "--role", choices=("standalone", "coordinator", "worker"), default="standalone",
        help="standalone: plain service daemon; coordinator: also lease "
        "engine batches to registered shard workers; worker: pull and "
        "execute leases from --coordinator (no local daemon)",
    )
    serve_p.add_argument(
        "--coordinator", default=None, metavar="URL",
        help="coordinator base URL (required for --role worker)",
    )
    serve_p.add_argument(
        "--token", default=None,
        help="bearer token: required from clients when serving, presented "
        "to the coordinator when --role worker",
    )
    serve_p.add_argument(
        "--rate-limit", default=None, metavar="N[/SECONDS]",
        help="per-client sliding-window rate limit, e.g. 100/10 "
        "(100 requests per 10 s); excess requests get 429 + Retry-After",
    )
    serve_p.add_argument(
        "--lease-ttl", type=float, default=None, metavar="SECONDS",
        help="coordinator: seconds before an unheartbeated lease becomes "
        "stealable (default 10)",
    )
    serve_p.add_argument(
        "--worker-ttl", type=float, default=None, metavar="SECONDS",
        help="coordinator: seconds of silence before a worker is presumed "
        "dead and pending leases fall back to local execution (default 30)",
    )
    serve_p.add_argument(
        "--speculate", type=int, default=None, metavar="K",
        help="coordinator: lease up to K future batches speculatively "
        "under the current snapshot (mispredictions cost wall-clock, "
        "never correctness; default 2)",
    )
    serve_p.add_argument(
        "--worker-id", default=None,
        help="worker: stable identity to register under (default: "
        "host+pid derived)",
    )
    serve_p.add_argument(
        "--max-leases", type=int, default=None, metavar="N",
        help="worker: exit after completing N leases (smoke tests)",
    )

    merge_p = sub.add_parser(
        "merge",
        help="merge per-shard runs.jsonl segments into one store "
        "(order-independent, torn-tail tolerant, idempotent)",
    )
    add_store_arg(merge_p)
    merge_p.add_argument(
        "segments", nargs="+", metavar="SEGMENT",
        help="runs.jsonl files or store directories to merge in",
    )

    native_p = sub.add_parser(
        "native-cache",
        help="inspect or clean the on-disk native-kernel (.so) cache",
    )
    native_sub = native_p.add_subparsers(dest="native_command", required=True)
    native_sub.add_parser("ls", help="list cached native kernels, newest first")
    native_sub.add_parser("clean", help="remove every cached native kernel")

    return parser


def _resolve_profile(args):
    profile = PROFILES[args.profile]
    overrides = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.cases is not None:
        overrides["max_cases"] = args.cases
    if getattr(args, "eval_profile", None) is not None:
        overrides["eval_profile"] = args.eval_profile
    if getattr(args, "batch_starts", None) is not None:
        overrides["batch_starts"] = args.batch_starts
    if getattr(args, "proposal_population", None) is not None:
        overrides["proposal_population"] = args.proposal_population
    if getattr(args, "native_threads", None) is not None:
        overrides["native_threads"] = args.native_threads
    return dataclasses.replace(profile, **overrides) if overrides else profile


def _write_out(out_dir: str, name: str, profile_name: str, text: str) -> Path:
    path = Path(out_dir)
    path.mkdir(parents=True, exist_ok=True)
    target = path / f"{name}_{profile_name}.txt"
    target.write_text(text + "\n")
    return target


def _run_or_render(args, execute: bool) -> int:
    from repro.experiments.pipeline import get_spec, run_specs

    profile = _resolve_profile(args)
    ephemeral = execute and getattr(args, "ephemeral", False)
    if not execute and not Path(args.store).exists():
        # render is read-only: do not materialize a store directory for a
        # path that holds no records (likely a typo).
        print(f"error: store {args.store!r} does not exist; run the specs first", file=sys.stderr)
        return 1
    explicit_resume = getattr(args, "resume", None)
    fresh = getattr(args, "fresh", False)
    if explicit_resume and fresh:
        print("error: --resume and --fresh contradict each other", file=sys.stderr)
        return 2
    resume = not fresh if explicit_resume is None else explicit_resume
    coordinator = getattr(args, "coordinator", None)
    service = None
    if coordinator is not None and execute:
        from repro.distributed import RemoteServiceAdapter
        from repro.service.client import ServiceClient

        service = RemoteServiceAdapter(
            ServiceClient(coordinator, token=getattr(args, "token", None))
        )
    store = RunStore(None if ephemeral else args.store)
    specs = [get_spec(name) for name in args.specs]
    try:
        report = run_specs(
            specs,
            profile,
            store=store,
            resume=resume,
            execute=execute,
            n_workers=getattr(args, "jobs", 1),
            worker_mode=getattr(args, "mode", "thread"),
            service=service,
        )
    finally:
        store.close()
    # Rendering is gated per spec, so complete specs still print even when a
    # sibling spec's jobs are absent from the store (render mode).
    for spec in specs:
        if spec.name not in report.rendered:
            continue
        print(report.rendered[spec.name])
        print()
        if args.out:
            _write_out(args.out, spec.name, profile.name, report.rendered[spec.name])
    if report.missing_jobs:
        print(
            f"error: {len(report.missing_jobs)} jobs missing from store "
            f"{args.store!r} for profile {profile.name!r}:",
            file=sys.stderr,
        )
        for job in report.missing_jobs:
            print(f"  {job}", file=sys.stderr)
        print("run them first: repro run " + " ".join(args.specs), file=sys.stderr)
        return 1
    if any(spec.is_suite for spec in specs):
        location = "ephemeral" if not store.persistent else str(store.root)
        print(f"[store: {location}] {report.stats.describe()}")
    return 0


def _ls(args) -> int:
    if not Path(args.store).exists():
        print(f"store {args.store}: does not exist")
        return 0
    store = RunStore(args.store)
    try:
        if len(store) == 0:
            print(f"store {args.store}: empty")
            return 0
        print(f"store {args.store}: {len(store)} records")
        header = f"{'case':<42s}{'tool':<10s}{'profile':<10s}{'seed':>5s}{'lines':>6s}  {'coverage':>8s}  fingerprint"
        print(header)
        for key, payload in store.records():
            summary = payload.get("summary", {})
            n_branches = summary.get("n_branches", 0)
            covered = summary.get("covered_branches", 0)
            percent = 100.0 * covered / n_branches if n_branches else 100.0
            print(
                f"{key.case_key:<42s}{key.tool:<10s}{key.profile_name or '-':<10s}"
                f"{key.seed if key.seed is not None else '-':>5}"
                f"{'yes' if key.measure_lines else 'no':>6s}  {percent:>7.1f}%  "
                f"{key.fingerprint()[:12]}"
            )
    finally:
        store.close()
    return 0


def _clean(args) -> int:
    # Deletes the store files directly (no RunStore) so `clean` also works
    # on stores written by an older/newer schema version.
    root = Path(args.store)
    if not root.exists():
        print(f"store {args.store}: nothing to clean")
        return 0
    dropped = 0
    runs = root / "runs.jsonl"
    if runs.exists():
        dropped = sum(1 for line in runs.read_text(encoding="utf-8").splitlines() if line.strip())
        runs.unlink()
    meta = root / "meta.json"
    if meta.exists():
        meta.unlink()
    print(f"store {args.store}: dropped {dropped} records")
    return 0


def _parse_rate_limit(spec: Optional[str]) -> Optional[tuple[int, float]]:
    if spec is None:
        return None
    count, _, window = spec.partition("/")
    try:
        return int(count), float(window) if window else 1.0
    except ValueError:
        raise SystemExit(f"error: bad --rate-limit {spec!r} (expected N or N/SECONDS)") from None


def _serve_worker(args) -> int:
    """``repro serve --role worker``: a lease-pulling shard worker."""
    import os
    import socket

    from repro.distributed import HTTPTransport, run_worker
    from repro.service.client import ClientError, ServiceClient

    if args.coordinator is None:
        print("error: --role worker requires --coordinator URL", file=sys.stderr)
        return 2
    worker_id = args.worker_id or f"{socket.gethostname()}-{os.getpid()}"
    transport = HTTPTransport(ServiceClient(args.coordinator, token=args.token))
    try:
        completed = run_worker(
            transport, worker_id, announce=print, max_leases=args.max_leases
        )
    except KeyboardInterrupt:
        # The in-flight lease (if any) stops heartbeating and gets stolen.
        print(f"repro worker {worker_id}: interrupted")
        return 0
    except (ClientError, OSError) as exc:
        print(f"error: worker {worker_id} lost the coordinator: {exc}", file=sys.stderr)
        return 1
    print(f"repro worker {worker_id}: done ({completed} leases)")
    return 0


def _serve(args) -> int:
    # Imported lazily: the service stack (and its instrumentation imports)
    # should not tax `repro ls`-style invocations.
    if args.role == "worker":
        return _serve_worker(args)
    from repro.service import CoverageService
    from repro.service.http import serve

    distributed = None
    if args.role == "coordinator":
        if args.worker_mode == "process":
            print(
                "error: --role coordinator requires --worker-mode thread "
                "(leases are issued by this process)",
                file=sys.stderr,
            )
            return 2
        from repro.distributed import LeaseCoordinator

        kwargs = {}
        if args.lease_ttl is not None:
            kwargs["lease_ttl"] = args.lease_ttl
        if args.worker_ttl is not None:
            kwargs["worker_ttl"] = args.worker_ttl
        if args.speculate is not None:
            kwargs["speculate"] = args.speculate
        distributed = LeaseCoordinator(**kwargs)
    store = None if args.ephemeral else args.store
    # The daemon always uses real workers: inline execution would run jobs
    # on the asyncio thread and freeze every other client mid-job.
    service = CoverageService(
        store=store,
        worker_mode=args.worker_mode,
        n_workers=args.workers,
        n_shards=args.shards,
        queue_limit=args.queue_limit,
        resume=True,
        distributed=distributed,
    )
    try:
        serve(
            service,
            host=args.host,
            port=args.port,
            token=args.token,
            rate_limit=_parse_rate_limit(args.rate_limit),
        )
    finally:
        service.close()
    return 0


def _merge(args) -> int:
    store = RunStore(args.store)
    try:
        stats = store.merge_segments(args.segments)
    finally:
        store.close()
    print(
        f"store {args.store}: merged {stats['merged']} of {stats['records']} records "
        f"from {stats['segments']} segments "
        f"({stats['present']} already present, {stats['duplicates']} cross-segment "
        f"duplicates, {stats['torn']} torn lines skipped)"
    )
    return 0


def _native_cache(args) -> int:
    from repro.instrument.native.cache import (
        disk_cache_max,
        native_cache_dir,
        native_cache_entries,
        native_clean_disk_cache,
    )

    directory = native_cache_dir()
    if args.native_command == "clean":
        removed = native_clean_disk_cache()
        print(f"native cache {directory}: removed {removed} kernels")
        return 0
    bound = disk_cache_max()
    entries = native_cache_entries()
    if not entries:
        print(f"native cache {directory}: empty (bound {bound})")
        return 0
    total = sum(entry["size"] for entry in entries)
    print(
        f"native cache {directory}: {len(entries)} kernels, "
        f"{total} bytes total (bound {bound})"
    )
    print(f"{'digest':<18s}{'size':>10s}  source")
    for entry in entries:
        print(
            f"{entry['digest'][:16]:<18s}{entry['size']:>10d}  "
            f"{'yes' if entry['has_source'] else 'no'}"
        )
    return 0


def deprecated_main(spec_name: str, argv: Optional[list[str]] = None) -> int:
    """Shared shim behind the legacy ``python -m repro.experiments.<spec>``
    entry points: warn, then delegate to ``repro run <spec>``.  Without an
    explicit ``--store`` the run is in-memory (the historical one-shot
    semantics); passing ``--store`` opts into persistence as the warning
    suggests."""
    import warnings

    warnings.warn(
        f"`python -m repro.experiments.{spec_name}` is deprecated; use "
        f"`python -m repro run {spec_name}` (add --store for resumable runs)",
        DeprecationWarning,
        stacklevel=3,
    )
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if not any(arg == "--store" or arg.startswith("--store=") for arg in argv):
        argv = ["--ephemeral", *argv]
    return main(["run", spec_name, *argv])


def main(argv: Optional[list[str]] = None) -> int:
    from repro.store import SchemaVersionError

    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _run_or_render(args, execute=True)
        if args.command == "render":
            return _run_or_render(args, execute=False)
        if args.command == "ls":
            return _ls(args)
        if args.command == "clean":
            return _clean(args)
        if args.command == "serve":
            return _serve(args)
        if args.command == "merge":
            return _merge(args)
        if args.command == "native-cache":
            return _native_cache(args)
    except SchemaVersionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
