"""The ``pen`` penalty function (Def. 4.2, Algorithm 1 lines 14-23).

``pen`` decides, at each conditional ``l_i`` with condition ``a op b``, what
value the injected register ``r`` takes:

* if **neither** branch of ``l_i`` is saturated, ``pen`` returns 0 -- whatever
  the program does next saturates a new branch, so this input is already a
  minimum point of the representing function;
* if exactly **one** branch is saturated, ``pen`` returns the branch distance
  towards the *unsaturated* branch, steering the optimizer there;
* if **both** branches are saturated, ``pen`` keeps the previous value of
  ``r`` -- the conditional contributes nothing and the value propagates from
  earlier, unsaturated conditionals (or stays at the initial 1).

The class implements :class:`repro.instrument.runtime.PenaltyPolicy`, so it
plugs directly into the instrumentation runtime.
"""

from __future__ import annotations

from typing import Optional

from repro.core.branch_distance import DEFAULT_EPSILON
from repro.core.saturation import SaturationTracker
from repro.instrument.runtime import BranchId


class CoverMePenalty:
    """Def. 4.2 penalty policy bound to a saturation tracker."""

    def __init__(self, tracker: SaturationTracker, epsilon: float = DEFAULT_EPSILON):
        self.tracker = tracker
        self.epsilon = epsilon

    def penalty(
        self,
        conditional: int,
        distance_true: Optional[float],
        distance_false: Optional[float],
        outcome: bool,
        current_r: float,
    ) -> float:
        """Return the new value of ``r`` at conditional ``conditional``."""
        saturated = self.tracker.saturated
        true_branch = BranchId(conditional, True)
        false_branch = BranchId(conditional, False)
        true_saturated = true_branch in saturated
        false_saturated = false_branch in saturated

        if not true_saturated and not false_saturated:
            # Def. 4.2(a): any outcome saturates a new branch.
            return 0.0
        if not true_saturated and false_saturated:
            # Def. 4.2(b): steer towards the true branch.
            return _guarded(distance_true, current_r)
        if true_saturated and not false_saturated:
            # Def. 4.2(b): steer towards the false branch.
            return _guarded(distance_false, current_r)
        # Def. 4.2(c): both saturated, keep the previous r.
        return current_r


def _guarded(distance: Optional[float], current_r: float) -> float:
    """Fall back to the previous ``r`` when no usable distance exists.

    This happens only for conditions CoverMe cannot compare numerically
    (Sect. 5.3); the paper's implementation does not inject ``pen`` there at
    all, which is equivalent to keeping the previous value.
    """
    if distance is None:
        return current_r
    return float(distance)
