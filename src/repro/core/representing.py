"""The representing function ``FOO_R`` (Sect. 3.2, Step 2; Thm. 4.3).

``FOO_R(x)`` initializes the injected register ``r`` to 1, executes the
instrumented program on ``x`` and returns the final value of ``r``.  With the
``pen`` policy of Def. 4.2 installed, the two key conditions hold:

* **C1**: ``FOO_R(x) >= 0`` for all ``x`` -- ``r`` is only ever assigned
  branch distances (non-negative), zero, or its previous value starting at 1.
* **C2**: ``FOO_R(x) == 0`` iff ``x`` saturates a branch not yet saturated
  (Thm. 4.3).

The object is a plain callable ``R^n -> R`` so that any unconstrained
programming backend can minimize it as a black box.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.core.branch_distance import DEFAULT_EPSILON
from repro.core.pen import CoverMePenalty
from repro.core.saturation import SaturationTracker
from repro.instrument.program import InstrumentedProgram
from repro.instrument.runtime import ExecutionRecord, Runtime


class RepresentingFunction:
    """Callable wrapper computing ``FOO_R`` for an instrumented program."""

    def __init__(
        self,
        program: InstrumentedProgram,
        tracker: Optional[SaturationTracker] = None,
        epsilon: float = DEFAULT_EPSILON,
    ):
        self.program = program
        self.tracker = tracker if tracker is not None else SaturationTracker(program)
        self.epsilon = epsilon
        self._runtime = Runtime(policy=CoverMePenalty(self.tracker, epsilon), epsilon=epsilon)
        self.evaluations = 0
        self.last_record: Optional[ExecutionRecord] = None
        self.last_value: Optional[float] = None

    @property
    def arity(self) -> int:
        return self.program.arity

    def __call__(self, x) -> float:
        """Evaluate ``FOO_R`` at ``x`` (a scalar or a length-``arity`` vector)."""
        args = self._coerce(x)
        self.evaluations += 1
        _, r, record = self.program.run(args, runtime=self._runtime)
        self.last_record = record
        if not math.isfinite(r):
            # NaN carries no gradient, and +/-inf (e.g. summed overflow-guard
            # distances of an ``and`` test) would poison any optimizer that
            # compares or subtracts objective values; clamp all three to the
            # same large finite penalty so C1 (FOO_R >= 0) holds numerically.
            r = 1.0e300
        self.last_value = r
        return r

    def evaluate_with_record(self, x) -> tuple[float, ExecutionRecord]:
        """Evaluate and also return the execution record (used by the driver)."""
        value = self(x)
        assert self.last_record is not None
        return value, self.last_record

    # -- helpers -------------------------------------------------------------------

    def _coerce(self, x) -> tuple[float, ...]:
        if isinstance(x, (int, float)) and not isinstance(x, bool):
            values = [float(x)]
        elif isinstance(x, np.ndarray):
            values = [float(v) for v in np.atleast_1d(x).ravel()]
        elif isinstance(x, Sequence):
            values = [float(v) for v in x]
        else:
            values = [float(x)]
        if len(values) != self.program.arity:
            raise ValueError(
                f"{self.program.name} expects {self.program.arity} inputs, got {len(values)}"
            )
        return tuple(values)
