"""The representing function ``FOO_R`` (Sect. 3.2, Step 2; Thm. 4.3).

``FOO_R(x)`` initializes the injected register ``r`` to 1, executes the
instrumented program on ``x`` and returns the final value of ``r``.  With the
``pen`` policy of Def. 4.2 installed, the two key conditions hold:

* **C1**: ``FOO_R(x) >= 0`` for all ``x`` -- ``r`` is only ever assigned
  branch distances (non-negative), zero, or its previous value starting at 1.
* **C2**: ``FOO_R(x) == 0`` iff ``x`` saturates a branch not yet saturated
  (Thm. 4.3).

The object is a plain callable ``R^n -> R`` so that any unconstrained
programming backend can minimize it as a black box.

Evaluation runs under a configurable
:class:`~repro.instrument.runtime.ExecutionProfile`.  ``FULL_TRACE`` (the
default) keeps today's recording behavior: every call leaves a complete
:class:`ExecutionRecord` in :attr:`RepresentingFunction.last_record`.  The
``PENALTY_ONLY`` and ``COVERAGE`` profiles run on the allocation-free
:class:`~repro.instrument.runtime.FastRuntime` -- the optimizer inner loop
only consumes the scalar ``r``, so per-conditional trace objects are pure
overhead there.  ``PENALTY_SPECIALIZED`` goes one tier further: the program
is re-compiled with the saturation mask resolved per probe site
(:mod:`repro.instrument.specialize`), and this wrapper implements the *epoch
protocol* -- the compiled variant is reused verbatim while the tracker's
``saturated_mask`` is unchanged and transparently re-specialized (a cached
lookup when the mask was seen before) only when saturation actually flips a
bit.  ``PENALTY_NATIVE`` applies the same protocol to machine code: the
specialized lowering is compiled to a shared object
(:mod:`repro.instrument.native`) and both ``__call__`` and
``evaluate_batch`` dispatch to it, degrading to ``PENALTY_SPECIALIZED``
with a one-time per-instance warning when no C compiler is present or the
program cannot be emitted.  Cold compiles do not block: the build runs on
the background worker while calls are served by the specialized tier (no
warning — that state is transient, counted in ``native_pending_calls``)
and the kernel swaps in at the next call/batch boundary once the build
lands.  All profiles compute bit-identical values;
callers that need coverage
from a specific point (e.g. an accepted minimum) re-execute it via
:meth:`RepresentingFunction.evaluate_with_coverage`, which under the
specialized tier runs the generic fast runtime so the coverage outcome stays
complete and identical across profiles.
"""

from __future__ import annotations

import math
import warnings
from typing import Optional, Sequence

import numpy as np

from repro.core.branch_distance import DEFAULT_EPSILON
from repro.core.pen import CoverMePenalty
from repro.core.saturation import SaturationTracker
from repro.instrument.batch import numpy_available as _batch_numpy_available
from repro.instrument.native.cache import (
    NativeCompiling,
    NativeUnavailable,
    background_ready,
)
from repro.instrument.program import InstrumentedProgram
from repro.instrument.runtime import (
    CoverageOutcome,
    ExecutionProfile,
    ExecutionRecord,
    FastRuntime,
    Runtime,
)

#: Large finite stand-in for non-finite register values; see __call__.
_CLAMP = 1.0e300

#: Exceptions the program under test may raise that must not escape FOO_R.
_SWALLOWED = (ArithmeticError, ValueError, OverflowError)

_INF = math.inf
_F64 = np.dtype(np.float64)


class RepresentingFunction:
    """Callable wrapper computing ``FOO_R`` for an instrumented program."""

    def __init__(
        self,
        program: InstrumentedProgram,
        tracker: Optional[SaturationTracker] = None,
        epsilon: float = DEFAULT_EPSILON,
        profile: ExecutionProfile | str = ExecutionProfile.FULL_TRACE,
        native_threads: int = 1,
    ):
        self.program = program
        self.tracker = tracker if tracker is not None else SaturationTracker(program)
        self.epsilon = epsilon
        self.profile = ExecutionProfile(profile)
        self.native_threads = max(1, int(native_threads))
        self.evaluations = 0
        self.last_record: Optional[ExecutionRecord] = None
        self.last_value: Optional[float] = None
        # Epoch protocol state for the specialized tier: the active compiled
        # variant plus a counter of variant switches (a switch is a cached
        # lookup unless the mask is new to the program -- see
        # ``InstrumentedProgram.specialization_builds`` for true compiles).
        self._variant = None
        self.respecializations = 0
        # Batched-kernel epoch state: mirrors the scalar variant protocol but
        # with its own counters so the two tiers stay independently auditable.
        self._batch_kernel = None
        self.batch_respecializations = 0
        self.batched_calls = 0
        # Native-kernel epoch state.  ``_native_ok`` latches False on the
        # first NativeUnavailable (no compiler, non-emittable program): the
        # instance degrades to the scalar specialized tier permanently, with
        # one warning.  A cold compile is *transient* instead: it runs on
        # the background worker (NativeCompiling), ``_native_pending`` holds
        # its digest, and calls are served by the specialized tier — no
        # warning — until the poll sees the build land and the kernel swaps
        # in at the next call/batch boundary.  Warn-once bookkeeping is
        # per-instance so a fresh RepresentingFunction (or a cleared cache)
        # warns again.
        self._native_kernel = None
        self.native_respecializations = 0
        self._native_ok = True
        self._native_pending: Optional[str] = None
        self.native_pending_calls = 0
        # Caller-held accumulator for the native tier's incremental covered
        # reduction, keyed to the kernel it feeds; ``last_new_covered_mask``
        # is the newly-set bits of the most recent native batch, in the form
        # SaturationTracker.add_covered_mask consumes.
        self._native_acc = None
        self._native_acc_kernel = None
        self.last_new_covered_mask = 0
        self._warned: set[str] = set()
        self._arity = program.arity
        self._native = self.profile is ExecutionProfile.PENALTY_NATIVE
        self._specialized = self.profile in (
            ExecutionProfile.PENALTY_SPECIALIZED,
            ExecutionProfile.PENALTY_NATIVE,
        )
        if self.profile is ExecutionProfile.FULL_TRACE:
            self._fast: Optional[FastRuntime] = None
            self._runtime = Runtime(policy=CoverMePenalty(self.tracker, epsilon), epsilon=epsilon)
        else:
            # The specialized tier keeps a fast runtime too: it backs
            # evaluate_with_coverage(), whose outcome must stay complete.
            self._fast = FastRuntime(program.n_conditionals, epsilon=epsilon)
            self._runtime = None

    @property
    def arity(self) -> int:
        return self.program.arity

    def __call__(self, x) -> float:
        """Evaluate ``FOO_R`` at ``x`` (a scalar or a length-``arity`` vector)."""
        args = self._coerce(x)
        self.evaluations += 1
        if self._specialized:
            # Specialized tier: re-read the mask every call (like the fast
            # profiles resynchronize at begin()), but only touch the compiler
            # when saturation actually flipped a bit.  Mid-epoch calls are a
            # single int comparison away from the compiled variant (or the
            # loaded machine-code kernel under the native tier).
            mask = self.tracker.saturated_mask
            r = None
            if self._native and self._native_ok:
                kernel = self._native_kernel
                if kernel is None or kernel.saturated_mask != mask:
                    kernel = self._native_kernel_for(mask)
                if kernel is not None:
                    r, _cov = kernel.scalar(args)
            if r is None:
                variant = self._variant
                if variant is None or variant.saturated_mask != mask:
                    variant = self.program.specialize(mask, self.epsilon)
                    self._variant = variant
                    self.respecializations += 1
                _, r = variant.run(args)
            self.last_record = None
        elif self._fast is not None:
            r = self._run_fast(args)
            self.last_record = None
        else:
            _, r, record = self.program.run(args, runtime=self._runtime)
            self.last_record = record
        if r != r or r == _INF or r == -_INF:
            # NaN carries no gradient, and +/-inf (e.g. summed overflow-guard
            # distances of an ``and`` test) would poison any optimizer that
            # compares or subtracts objective values; clamp all three to the
            # same large finite penalty so C1 (FOO_R >= 0) holds numerically.
            # (Spelled as three comparisons rather than math.isfinite so the
            # overwhelmingly common finite case pays no call.)
            r = _CLAMP
        self.last_value = r
        return r

    def evaluate_batch(self, X) -> np.ndarray:
        """Evaluate ``FOO_R`` at every row of an ``(N, arity)`` array at once.

        Under the ``PENALTY_SPECIALIZED`` profile (with numpy available) the
        whole batch goes through one
        :class:`~repro.instrument.batch.BatchKernel` call, following the same
        epoch protocol as ``__call__``: the kernel is reused verbatim while
        the tracker's ``saturated_mask`` is unchanged and rebuilt (a cached
        per-program lookup when the mask was seen before) only when a bit
        flips.  Every other profile -- and the specialized profile when numpy
        is missing -- degrades to a per-row loop over ``__call__``, so the
        returned vector is bit-identical to N sequential scalar calls in all
        configurations.  Non-finite register values clamp to the same large
        finite penalty as the scalar path.
        """
        X = np.ascontiguousarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(-1, 1) if self._arity == 1 else X.reshape(1, -1)
        if X.ndim != 2 or X.shape[1] != self._arity:
            raise ValueError(
                f"{self.program.name} expects (N, {self._arity}) batches, got shape {X.shape}"
            )
        n = X.shape[0]
        if n == 0:
            return np.empty(0, dtype=np.float64)
        if self._specialized and _batch_numpy_available():
            mask = self.tracker.saturated_mask
            native = None
            if self._native and self._native_ok:
                native = self._native_kernel
                if native is None or native.saturated_mask != mask:
                    native = self._native_kernel_for(mask)
            if native is not None:
                # Incremental reduction: the accumulator carries covered
                # words across calls, so each batch reports only newly-set
                # bits (ready for SaturationTracker.add_covered_mask).
                acc = self._native_acc
                if acc is None or self._native_acc_kernel is not native:
                    acc = native.new_accumulator()
                    self._native_acc = acc
                    self._native_acc_kernel = native
                raw, new_mask = native(
                    X, n_threads=self.native_threads, accumulator=acc
                )
                self.last_new_covered_mask = new_mask
            else:
                kernel = self._batch_kernel
                if kernel is None or kernel.saturated_mask != mask:
                    kernel = self.program.batch_kernel(mask, self.epsilon)
                    self._batch_kernel = kernel
                    self.batch_respecializations += 1
                raw, _cov = kernel(X)
            out = np.where(np.isfinite(raw), raw, _CLAMP)
            self.evaluations += n
            self.batched_calls += 1
            self.last_record = None
            self.last_value = float(out[-1])
            return out
        if self._specialized:
            self._warn_instance(
                "evaluate-batch-degraded",
                "numpy is unavailable: evaluate_batch() degrades to per-row "
                "scalar evaluation (install the [batch] extra for vectorized "
                "kernels)",
            )
        out = np.empty(n, dtype=np.float64)
        for i in range(n):
            out[i] = self(X[i])
        return out

    def evaluate_with_record(self, x) -> tuple[float, ExecutionRecord]:
        """Evaluate and also return the full execution record.

        Always runs under ``FULL_TRACE`` semantics regardless of the
        configured profile, so trace consumers keep working; prefer
        :meth:`evaluate_with_coverage` when the path is not needed.
        """
        if self._fast is None:
            value = self(x)
            assert self.last_record is not None
            return value, self.last_record
        args = self._coerce(x)
        self.evaluations += 1
        runtime = Runtime(policy=CoverMePenalty(self.tracker, self.epsilon), epsilon=self.epsilon)
        _, r, record = self.program.run(args, runtime=runtime)
        if not math.isfinite(r):
            r = _CLAMP
        self.last_record = record
        self.last_value = r
        return r, record

    def evaluate_with_coverage(self, x) -> tuple[float, CoverageOutcome]:
        """Evaluate and return the coverage-profile outcome.

        This is what the engine calls on an accepted minimum: the covered
        branches plus the last executed conditional (for the
        infeasible-branch heuristic), without materializing the path.  Under
        ``FULL_TRACE`` the same data is distilled from the record so every
        profile returns identical outcomes.
        """
        if self._fast is None:
            value, record = self.evaluate_with_record(x)
            last = record.last
            return value, CoverageOutcome(
                covered=frozenset(record.covered),
                last_conditional=None if last is None else last.conditional,
                last_outcome=None if last is None else last.outcome,
            )
        if self._specialized:
            # The specialized variant's covered bitset is partial (stripped
            # probes record nothing) and it tracks no last conditional, so
            # coverage harvesting runs the generic fast runtime against the
            # same mask -- values stay bit-identical, outcomes complete.
            args = self._coerce(x)
            self.evaluations += 1
            r = self._run_fast(args)
            if r != r or r == _INF or r == -_INF:
                r = _CLAMP
            self.last_record = None
            self.last_value = r
            return r, self._fast.snapshot()
        value = self(x)
        return value, self._fast.snapshot()

    # -- helpers -------------------------------------------------------------------

    def _native_kernel_for(self, mask):
        """Fetch/build the native kernel for ``mask``, degrading on failure.

        Returns ``None`` when the native tier cannot serve this call; the
        caller falls through to the scalar specialized tier.  The two
        failure states are reported distinctly: a *permanent*
        ``NativeUnavailable`` (no compiler, non-emittable program, failed
        build) latches ``_native_ok`` False and warns once, while a
        *transient* ``NativeCompiling`` (the background ``cc`` is still
        running) never warns — ``native_pending_calls`` counts the calls
        the specialized tier absorbed, and the kernel swaps in at the next
        boundary once :func:`background_ready` sees the build land.
        """
        pending = self._native_pending
        if pending is not None and not background_ready(pending):
            # Cheap poll: the background build is still running; don't
            # re-enter the emitter on every evaluation.
            self.native_pending_calls += 1
            return None
        try:
            kernel = self.program.native_kernel(mask, self.epsilon, wait=False)
        except NativeCompiling as exc:
            self._native_pending = exc.digest
            self.native_pending_calls += 1
            return None
        except NativeUnavailable as exc:
            self._native_ok = False
            self._native_pending = None
            self._warn_instance(
                "native-degraded",
                f"native tier permanently unavailable ({exc}); degrading to "
                "the scalar specialized tier",
            )
            return None
        self._native_pending = None
        self._native_kernel = kernel
        self.native_respecializations += 1
        return kernel

    def _warn_instance(self, key: str, message: str) -> None:
        """Emit ``message`` at most once per RepresentingFunction instance."""
        if key in self._warned:
            return
        self._warned.add(key)
        warnings.warn(message, RuntimeWarning, stacklevel=3)

    def _run_fast(self, args) -> float:
        """One generic fast-runtime execution against the current mask.

        install + begin resynchronize the saturation snapshot from the
        (possibly updated) tracker, then the program body runs with zero
        per-conditional allocations.  Shared by the penalty/coverage call
        path and the specialized tier's coverage harvest so the bit-sensitive
        execution body exists exactly once.
        """
        fast = self._fast
        program = self.program
        program.handle.install(fast)
        fast.begin(self.tracker.saturated_mask)
        try:
            program.entry(*args)
        except _SWALLOWED:
            pass
        return fast.r

    def _coerce(self, x) -> Sequence[float]:
        if x.__class__ is np.ndarray:
            # The optimizer hot path: a 1-d float64 vector of the right
            # length.  tolist() yields Python floats in one C call; the
            # generic reshaping/conversion below is kept for exotic inputs.
            if x.dtype is _F64 and x.ndim == 1:
                values = x.tolist()
            else:
                arr = np.atleast_1d(x).ravel()
                values = arr.tolist() if arr.dtype == np.float64 else [float(v) for v in arr]
        elif isinstance(x, np.ndarray):
            arr = np.atleast_1d(x).ravel()
            values = arr.tolist() if arr.dtype == np.float64 else [float(v) for v in arr]
        elif isinstance(x, (int, float)) and not isinstance(x, bool):
            values = [float(x)]
        elif isinstance(x, Sequence):
            values = [float(v) for v in x]
        else:
            values = [float(x)]
        if len(values) != self._arity:
            raise ValueError(
                f"{self.program.name} expects {self._arity} inputs, got {len(values)}"
            )
        # Returned as the list itself: every consumer star-unpacks or
        # iterates, so the historical tuple() copy was pure allocation.
        return values
