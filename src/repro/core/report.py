"""Result records produced by the CoverMe driver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.instrument.runtime import BranchId


@dataclass
class MinimizationTrace:
    """Outcome of one basin-hopping launch (one iteration of Algorithm 1's loop)."""

    start: tuple[float, ...]
    minimum_point: tuple[float, ...]
    minimum_value: float
    accepted: bool
    newly_covered: frozenset[BranchId] = frozenset()
    marked_infeasible: Optional[BranchId] = None
    evaluations: int = 0


@dataclass
class CoverMeResult:
    """Everything Algorithm 1 produced for one program under test."""

    program: str
    inputs: list[tuple[float, ...]]
    n_branches: int
    covered: frozenset[BranchId]
    saturated: frozenset[BranchId]
    infeasible: frozenset[BranchId]
    evaluations: int
    wall_time: float
    n_starts_used: int
    traces: list[MinimizationTrace] = field(default_factory=list)

    @property
    def covered_branches(self) -> int:
        return len(self.covered)

    @property
    def branch_coverage(self) -> float:
        """Covered fraction of branches in ``[0, 1]``."""
        if self.n_branches == 0:
            return 1.0
        return len(self.covered) / self.n_branches

    @property
    def branch_coverage_percent(self) -> float:
        return 100.0 * self.branch_coverage

    @property
    def fully_covered(self) -> bool:
        return len(self.covered) >= self.n_branches

    def coverage_report(self) -> "CoverageReport":
        return CoverageReport(
            name=self.program,
            n_branches=self.n_branches,
            covered_branches=len(self.covered),
        )


@dataclass
class CoverageReport:
    """Branch (and optionally line) coverage summary in Gcov-like percentages."""

    name: str
    n_branches: int
    covered_branches: int
    n_lines: int = 0
    covered_lines: int = 0

    @property
    def branch_percent(self) -> float:
        if self.n_branches == 0:
            return 100.0
        return 100.0 * self.covered_branches / self.n_branches

    @property
    def line_percent(self) -> float:
        if self.n_lines == 0:
            return 100.0
        return 100.0 * self.covered_lines / self.n_lines

    def merged_with(self, other: "CoverageReport") -> "CoverageReport":
        """Combine two reports of the same program (used when pooling tools)."""
        if other.name != self.name:
            raise ValueError("cannot merge coverage reports of different programs")
        return CoverageReport(
            name=self.name,
            n_branches=max(self.n_branches, other.n_branches),
            covered_branches=max(self.covered_branches, other.covered_branches),
            n_lines=max(self.n_lines, other.n_lines),
            covered_lines=max(self.covered_lines, other.covered_lines),
        )


@dataclass
class ToolRunSummary:
    """Aggregate statistics of one testing-tool run on one program.

    Shared by CoverMe and the baseline tools so the experiment harnesses can
    tabulate them uniformly (Tables 2, 3 and 5).

    Zero-denominator convention: a program with no branches (or a run that
    measured no lines) is *vacuously* fully covered, so both percentage
    properties return 100.0 when their denominator is zero -- the same
    convention as :class:`CoverageReport` and
    :attr:`CoverMeResult.branch_coverage`.  Callers that want "lines were
    never measured" as a distinct state must test ``n_lines == 0``
    themselves (as the Table 5 renderer does).
    """

    tool: str
    program: str
    n_branches: int
    covered_branches: int
    wall_time: float
    executions: int
    inputs: list[tuple[float, ...]] = field(default_factory=list)
    n_lines: int = 0
    covered_lines: int = 0

    @property
    def branch_coverage_percent(self) -> float:
        if self.n_branches == 0:
            return 100.0
        return 100.0 * self.covered_branches / self.n_branches

    @property
    def line_coverage_percent(self) -> float:
        if self.n_lines == 0:
            return 100.0
        return 100.0 * self.covered_lines / self.n_lines
