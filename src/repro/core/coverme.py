"""The CoverMe driver: Algorithm 1 (branch coverage-based testing).

The driver is a thin façade over the search-engine subsystem; it owns the
three steps of the approach:

1. instrument the program under test (delegated to :mod:`repro.instrument`),
2. build the representing function ``FOO_R`` (Step 2, :mod:`repro.core.representing`),
3. hand the multi-start minimization of ``FOO_R`` (Step 3) to
   :class:`~repro.engine.core.SearchEngine`, which schedules seeded starting
   points, runs basin-hopping launches on the configured worker pool, and
   reduces the results deterministically -- collecting every zero-valued
   minimum point as a test input and applying the infeasible-branch
   heuristic of Sect. 5.3 when a minimization bottoms out above zero.
   The inner loop's execution tier is ``CoverMeConfig.eval_profile``; with
   ``"penalty-specialized"`` the saturation mask is compiled into the
   instrumented source per batch epoch (:mod:`repro.instrument.specialize`)
   while results stay bit-identical to every other profile.

The optimization backend is resolved by name through the registry of
:mod:`repro.optimize.registry`; any registered unconstrained-programming
algorithm can drive Step 3.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.core.config import CoverMeConfig
from repro.core.report import CoverMeResult
from repro.core.representing import RepresentingFunction
from repro.core.saturation import SaturationTracker
from repro.engine.core import SearchEngine
from repro.instrument.program import InstrumentedProgram, instrument
from repro.instrument.signature import ProgramSignature

__all__ = ["CoverMe", "CoverMeResult", "cover"]


class CoverMe:
    """Branch coverage-based testing through unconstrained programming.

    Args:
        target: The program under test -- a Python callable over floating-point
            inputs, or an already-built :class:`InstrumentedProgram`.
        config: Algorithm parameters; defaults to :class:`CoverMeConfig`.
        extra_functions: Helper functions called by ``target`` that should be
            instrumented too (Sect. 5.3, "Handling Function Calls").
        signature: Optional explicit input-domain description.
    """

    def __init__(
        self,
        target: Callable | InstrumentedProgram,
        config: Optional[CoverMeConfig] = None,
        extra_functions: Iterable[Callable] = (),
        signature: Optional[ProgramSignature] = None,
    ):
        self.config = config if config is not None else CoverMeConfig()
        if isinstance(target, InstrumentedProgram):
            self.program = target
        else:
            self.program = instrument(target, extra_functions=extra_functions, signature=signature)
        self.tracker = SaturationTracker(self.program)
        # The Step-2 object, exposed for direct evaluation of FOO_R against
        # the driver's tracker.  The engine builds its own per-start
        # RepresentingFunction instances, so this one's evaluation counter
        # does not advance during run(); read ``result.evaluations`` instead.
        self.representing = RepresentingFunction(
            self.program, self.tracker, epsilon=self.config.epsilon
        )

    def run(self) -> CoverMeResult:
        """Execute Algorithm 1 and return the generated inputs plus coverage."""
        engine = SearchEngine(self.program, self.config, tracker=self.tracker)
        return engine.run()


def cover(
    target: Callable,
    config: Optional[CoverMeConfig] = None,
    extra_functions: Iterable[Callable] = (),
    signature: Optional[ProgramSignature] = None,
) -> CoverMeResult:
    """Convenience wrapper: instrument ``target``, run CoverMe, return the result."""
    return CoverMe(
        target, config=config, extra_functions=extra_functions, signature=signature
    ).run()
