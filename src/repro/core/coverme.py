"""The CoverMe driver: Algorithm 1 (branch coverage-based testing).

The driver owns the three steps of the approach:

1. instrument the program under test (delegated to :mod:`repro.instrument`),
2. build the representing function ``FOO_R`` (Step 2, :mod:`repro.core.representing`),
3. repeatedly minimize ``FOO_R`` with a basin-hopping backend from random
   starting points (Step 3), collecting every zero-valued minimum point as a
   test input and applying the infeasible-branch heuristic of Sect. 5.3 when a
   minimization bottoms out above zero.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from repro.core.config import CoverMeConfig
from repro.core.report import CoverageReport, MinimizationTrace
from repro.core.representing import RepresentingFunction
from repro.core.saturation import SaturationTracker
from repro.instrument.program import InstrumentedProgram, instrument
from repro.instrument.runtime import BranchId
from repro.instrument.signature import ProgramSignature
from repro.optimize.basinhopping import basinhopping
from repro.optimize.scipy_backend import scipy_basinhopping


@dataclass
class CoverMeResult:
    """Everything Algorithm 1 produced for one program under test."""

    program: str
    inputs: list[tuple[float, ...]]
    n_branches: int
    covered: frozenset[BranchId]
    saturated: frozenset[BranchId]
    infeasible: frozenset[BranchId]
    evaluations: int
    wall_time: float
    n_starts_used: int
    traces: list[MinimizationTrace] = field(default_factory=list)

    @property
    def covered_branches(self) -> int:
        return len(self.covered)

    @property
    def branch_coverage(self) -> float:
        """Covered fraction of branches in ``[0, 1]``."""
        if self.n_branches == 0:
            return 1.0
        return len(self.covered) / self.n_branches

    @property
    def branch_coverage_percent(self) -> float:
        return 100.0 * self.branch_coverage

    @property
    def fully_covered(self) -> bool:
        return len(self.covered) >= self.n_branches

    def coverage_report(self) -> CoverageReport:
        return CoverageReport(
            name=self.program,
            n_branches=self.n_branches,
            covered_branches=len(self.covered),
        )


class CoverMe:
    """Branch coverage-based testing through unconstrained programming.

    Args:
        target: The program under test -- a Python callable over floating-point
            inputs, or an already-built :class:`InstrumentedProgram`.
        config: Algorithm parameters; defaults to :class:`CoverMeConfig`.
        extra_functions: Helper functions called by ``target`` that should be
            instrumented too (Sect. 5.3, "Handling Function Calls").
        signature: Optional explicit input-domain description.
    """

    def __init__(
        self,
        target: Callable | InstrumentedProgram,
        config: Optional[CoverMeConfig] = None,
        extra_functions: Iterable[Callable] = (),
        signature: Optional[ProgramSignature] = None,
    ):
        self.config = config if config is not None else CoverMeConfig()
        if isinstance(target, InstrumentedProgram):
            self.program = target
        else:
            self.program = instrument(target, extra_functions=extra_functions, signature=signature)
        self.tracker = SaturationTracker(self.program)
        self.representing = RepresentingFunction(
            self.program, self.tracker, epsilon=self.config.epsilon
        )

    # -- public API -----------------------------------------------------------------

    def run(self) -> CoverMeResult:
        """Execute Algorithm 1 and return the generated inputs plus coverage."""
        config = self.config
        rng = np.random.default_rng(config.seed)
        inputs: list[tuple[float, ...]] = []
        traces: list[MinimizationTrace] = []
        start_time = time.perf_counter()
        starts_used = 0

        for _ in range(config.n_start):
            if self.tracker.all_saturated():
                break
            if self._budget_exhausted(start_time):
                break
            starts_used += 1
            x0 = rng.normal(scale=config.start_scale, size=self.program.arity)
            evaluations_before = self.representing.evaluations
            x_star, value = self._minimize_once(x0, rng)
            value, record = self.representing.evaluate_with_record(x_star)
            evaluations_used = self.representing.evaluations - evaluations_before

            if value <= config.zero_tolerance:
                newly = self.tracker.add_execution(record)
                point = tuple(float(v) for v in np.atleast_1d(x_star))
                inputs.append(point)
                traces.append(
                    MinimizationTrace(
                        start=tuple(float(v) for v in x0),
                        minimum_point=point,
                        minimum_value=value,
                        accepted=True,
                        newly_covered=frozenset(newly),
                        evaluations=evaluations_used,
                    )
                )
            else:
                marked = self._apply_infeasible_heuristic(record)
                traces.append(
                    MinimizationTrace(
                        start=tuple(float(v) for v in x0),
                        minimum_point=tuple(float(v) for v in np.atleast_1d(x_star)),
                        minimum_value=value,
                        accepted=False,
                        marked_infeasible=marked,
                        evaluations=evaluations_used,
                    )
                )

        wall_time = time.perf_counter() - start_time
        return CoverMeResult(
            program=self.program.name,
            inputs=inputs,
            n_branches=self.program.n_branches,
            covered=frozenset(self.tracker.covered & self.program.all_branches),
            saturated=self.tracker.saturated,
            infeasible=frozenset(self.tracker.infeasible),
            evaluations=self.representing.evaluations,
            wall_time=wall_time,
            n_starts_used=starts_used,
            traces=traces,
        )

    # -- internals --------------------------------------------------------------------

    def _minimize_once(self, x0: np.ndarray, rng: np.random.Generator):
        """One basin-hopping launch (Algorithm 1, line 10) with early stopping."""
        config = self.config
        found: dict[str, np.ndarray] = {}

        def callback(x: np.ndarray, f: float, _accepted: bool) -> bool:
            if f <= config.zero_tolerance:
                found["x"] = np.array(x, dtype=float, copy=True)
                return True
            return False

        backend = basinhopping if config.backend == "builtin" else scipy_basinhopping
        result = backend(
            self.representing,
            x0,
            n_iter=config.n_iter,
            local_minimizer=config.local_minimizer,
            step_size=config.step_size,
            temperature=config.temperature,
            rng=rng,
            callback=callback,
            local_options={"max_iterations": config.local_max_iterations},
        )
        if "x" in found:
            return found["x"], 0.0
        return result.x, result.fun

    def _apply_infeasible_heuristic(self, record) -> Optional[BranchId]:
        """Sect. 5.3: deem the unvisited branch of the last conditional infeasible."""
        if not self.config.mark_infeasible:
            return None
        last = record.last
        if last is None:
            return None
        candidate = BranchId(last.conditional, not last.outcome)
        if candidate in self.tracker.covered or candidate in self.tracker.infeasible:
            return None
        self.tracker.mark_infeasible(candidate)
        return candidate

    def _budget_exhausted(self, start_time: float) -> bool:
        config = self.config
        if config.max_evaluations is not None:
            if self.representing.evaluations >= config.max_evaluations:
                return True
        if config.time_budget is not None:
            if time.perf_counter() - start_time >= config.time_budget:
                return True
        return False


def cover(
    target: Callable,
    config: Optional[CoverMeConfig] = None,
    extra_functions: Iterable[Callable] = (),
    signature: Optional[ProgramSignature] = None,
) -> CoverMeResult:
    """Convenience wrapper: instrument ``target``, run CoverMe, return the result."""
    return CoverMe(
        target, config=config, extra_functions=extra_functions, signature=signature
    ).run()
