"""Configuration for the CoverMe driver (the inputs of Algorithm 1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.branch_distance import DEFAULT_EPSILON
from repro.instrument.runtime import EXECUTION_PROFILES, ExecutionProfile

#: Fixed default batch size of the search engine.  The batch is the unit of
#: snapshot freshness *and* the unit of parallel dispatch; it is a constant
#: (never derived from ``n_workers``) so that seeded runs produce identical
#: results for any worker count.
DEFAULT_BATCH_SIZE = 8


@dataclass
class CoverMeConfig:
    """Parameters of Algorithm 1 plus implementation knobs.

    Attributes:
        n_start: Number of random starting points (``n_start`` in Algorithm 1).
            The paper's evaluation uses 500; the default here is smaller so a
            typical laptop run finishes quickly, and the experiments' "full"
            profile restores the paper's value.
        n_iter: Number of Monte-Carlo iterations per basin-hopping run
            (``n_iter`` in Algorithm 1; the paper uses 5).
        local_minimizer: Name of the local optimization algorithm ``LM``;
            the paper uses Powell.  With the ``builtin`` backend this must
            be a registered local minimizer ("powell", "nelder-mead",
            "compass", or anything added via
            :func:`repro.optimize.local.register_local_minimizer`); other
            backends interpret the name themselves (e.g. ``scipy`` accepts
            any ``scipy.optimize.minimize`` method such as "L-BFGS-B").
        backend: Which basin-hopping implementation drives Step 3.  Any name
            in :func:`repro.optimize.registry.available_backends`; the
            defaults are ``"builtin"`` (our MCMC implementation of
            Algorithm 1 lines 24-34) and ``"scipy"`` (the paper's
            off-the-shelf SciPy Basinhopping).
        epsilon: The small positive constant of Def. 4.1.
        step_size: Scale of the Monte-Carlo perturbation ``delta``.
        temperature: Metropolis annealing temperature ``T`` (the paper uses 1).
        start_scale: Standard deviation of the random starting points.
        seed: Seed for all pseudo-randomness (None for nondeterministic runs).
        mark_infeasible: Enable the infeasible-branch heuristic of Sect. 5.3.
        zero_tolerance: Threshold below which ``FOO_R(x*)`` counts as zero.
            Exact zeros are produced by construction, so 0.0 is faithful; a
            tiny positive tolerance guards against backend round-off.
        max_evaluations: Optional cap on representing-function evaluations.
        time_budget: Optional wall-clock cap in seconds.
        n_workers: Number of workers running basin-hopping starts in
            parallel.  1 (the default) runs everything in-process; seeded
            results are identical for every value.
        worker_mode: How parallel starts execute -- ``"auto"`` (process
            workers when the program's origin is picklable, else thread
            clones, else serial), ``"process"``, ``"thread"`` or ``"serial"``.
        start_strategy: Start-point strategy of the scheduler
            (``"random-normal"``, ``"latin-hypercube"``, ``"signature-box"``).
        batch_size: Starts per scheduling batch; all starts of a batch share
            one saturation snapshot.  ``None`` selects the engine default.
            Must not depend on ``n_workers`` or seeded runs lose their
            worker-count independence.
        eval_profile: Execution profile of the optimizer inner loop --
            ``"penalty-native"`` (the machine-code tier: the specialized
            lowering is emitted as C, compiled with the system ``cc`` and
            called through ctypes; degrades to ``penalty-specialized`` with
            a one-time warning when no compiler is present),
            ``"penalty-specialized"`` (the compile-time tier: the saturation
            mask is baked into re-generated instrumented source, re-compiled
            only when saturation flips a bit), ``"penalty"`` (allocation-free
            fast runtime, the default), ``"coverage"`` or ``"full-trace"``
            (the recording runtime).  All profiles compute bit-identical
            representing-function values and produce identical seeded
            results; richer profiles only retain more per-execution data
            (and run slower).  Accepted minima are always re-executed under
            at least the coverage profile, so the reduction sees the same
            branch sets regardless of this setting.
        memoize: Serve repeated objective evaluations at bit-identical
            inputs from a per-start memo cache instead of re-executing the
            program.  Values and seeded trajectories are unchanged; only the
            execution count drops.
        batch_starts: Under the ``penalty-specialized`` profile (with numpy
            available and ``memoize`` on), prime each chunk of starts with
            one batched-kernel call over the chunk's start vectors instead
            of N scalar first evaluations.  Values, seeded trajectories and
            per-start evaluation counts are unchanged for any worker count;
            only the Python-dispatch overhead drops.
        proposal_population: Perturbation candidates screened per
            basin-hopping Monte-Carlo move (builtin backend).  1 (the
            default) reproduces the historical single-proposal trajectory
            exactly; larger values batch-evaluate the whole population per
            hop and descend from the best candidate.
        native_threads: Native-tier batch threads.  Under the
            ``penalty-native`` profile, batched evaluations run the emitted
            ``sp_batch_mt`` entry with this many C threads (private
            covered-bit partials merged in fixed thread-index order, so
            ``r`` and the covered set are bit-identical for any value).  1
            (the default) keeps the serial row loop.  Result-neutral, like
            ``n_workers``, and therefore excluded from store fingerprints.
        progress: Optional observer called by the engine after each batch
            reduction with a dict of running counters (batch index, starts
            issued/used, evaluations, covered/saturated branch counts).  It
            is strictly an observer -- it must not mutate engine state, and
            it cannot change results (the service layer uses it to stream
            job progress to daemon clients); it is excluded from store
            fingerprints for the same reason.  The callback runs on the
            engine's reduction thread and should return quickly.
        pool_factory: Optional factory substituting the engine's execution
            pool.  Called with the :class:`~repro.engine.core.SearchEngine`
            and must return a context manager yielding an object with the
            ``run_batch(params, tasks)`` / ``streams_lazily`` contract of
            :class:`~repro.engine.pool.StartPool`.  The distributed
            coordinator injects its lease pool here.  Like ``n_workers``,
            any conforming pool is result-neutral by contract, so the field
            is excluded from store fingerprints.
    """

    n_start: int = 100
    n_iter: int = 5
    local_minimizer: str = "powell"
    backend: str = "builtin"
    epsilon: float = DEFAULT_EPSILON
    step_size: float = 1.0
    temperature: float = 1.0
    start_scale: float = 10.0
    seed: Optional[int] = None
    mark_infeasible: bool = True
    zero_tolerance: float = 0.0
    max_evaluations: Optional[int] = None
    time_budget: Optional[float] = None
    local_max_iterations: int = 40
    verbose: bool = False
    n_workers: int = 1
    worker_mode: str = "auto"
    start_strategy: str = "random-normal"
    batch_size: Optional[int] = None
    eval_profile: str = ExecutionProfile.PENALTY_ONLY.value
    memoize: bool = True
    batch_starts: bool = True
    proposal_population: int = 1
    native_threads: int = 1
    progress: Optional[Callable[[dict], None]] = field(default=None, repr=False, compare=False)
    pool_factory: Optional[Callable] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        # Imported lazily: the registries live above repro.core in the layer
        # diagram and pulling them in at module-import time would be cyclic.
        from repro.engine.pool import available_worker_modes
        from repro.engine.scheduler import available_strategies
        from repro.optimize.registry import available_backends, get_local_minimizer

        if self.n_start < 1:
            raise ValueError("n_start must be >= 1")
        if self.n_iter < 0:
            raise ValueError("n_iter must be >= 0")
        if self.epsilon <= 0:
            raise ValueError("epsilon must be > 0")
        if self.step_size <= 0:
            raise ValueError("step_size must be > 0")
        if self.start_scale <= 0:
            raise ValueError("start_scale must be > 0")
        if self.backend.lower() not in available_backends():
            known = ", ".join(available_backends())
            raise ValueError(f"unknown backend {self.backend!r}; known: {known}")
        if not isinstance(self.local_minimizer, str) or not self.local_minimizer:
            raise ValueError("local_minimizer must be a non-empty string")
        if self.backend.lower() == "builtin":
            # Only the builtin backend resolves LM through our registry;
            # other backends (e.g. scipy) accept their own method names
            # ("L-BFGS-B", ...) and validate them at run time.
            get_local_minimizer(self.local_minimizer)  # raises ValueError on unknown names
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.worker_mode not in available_worker_modes():
            known = ", ".join(available_worker_modes())
            raise ValueError(f"unknown worker mode {self.worker_mode!r}; known: {known}")
        if self.start_strategy not in available_strategies():
            known = ", ".join(available_strategies())
            raise ValueError(f"unknown start strategy {self.start_strategy!r}; known: {known}")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.eval_profile not in EXECUTION_PROFILES:
            known = ", ".join(EXECUTION_PROFILES)
            raise ValueError(f"unknown eval profile {self.eval_profile!r}; known: {known}")
        if self.proposal_population < 1:
            raise ValueError("proposal_population must be >= 1")
        if self.native_threads < 1:
            raise ValueError("native_threads must be >= 1")
        if self.progress is not None and not callable(self.progress):
            raise ValueError("progress must be a callable (or None)")
        if self.pool_factory is not None and not callable(self.pool_factory):
            raise ValueError("pool_factory must be a callable (or None)")

    def effective_batch_size(self) -> int:
        """The batch size the engine actually uses."""
        return self.batch_size if self.batch_size is not None else DEFAULT_BATCH_SIZE

    @classmethod
    def paper(cls, **overrides) -> "CoverMeConfig":
        """The exact parameter settings of the paper's evaluation (Sect. 6.1)."""
        defaults = dict(n_start=500, n_iter=5, local_minimizer="powell")
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def smoke(cls, **overrides) -> "CoverMeConfig":
        """A fast profile for unit tests and CI."""
        defaults = dict(n_start=30, n_iter=3, local_minimizer="powell", seed=0)
        defaults.update(overrides)
        return cls(**defaults)
