"""Configuration for the CoverMe driver (the inputs of Algorithm 1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.branch_distance import DEFAULT_EPSILON


@dataclass
class CoverMeConfig:
    """Parameters of Algorithm 1 plus implementation knobs.

    Attributes:
        n_start: Number of random starting points (``n_start`` in Algorithm 1).
            The paper's evaluation uses 500; the default here is smaller so a
            typical laptop run finishes quickly, and the experiments' "full"
            profile restores the paper's value.
        n_iter: Number of Monte-Carlo iterations per basin-hopping run
            (``n_iter`` in Algorithm 1; the paper uses 5).
        local_minimizer: Name of the local optimization algorithm ``LM``
            ("powell", "nelder-mead", "compass"); the paper uses Powell.
        backend: Which basin-hopping implementation drives Step 3:
            ``"builtin"`` (our MCMC implementation of Algorithm 1 lines 24-34)
            or ``"scipy"`` (the paper's off-the-shelf SciPy Basinhopping).
        epsilon: The small positive constant of Def. 4.1.
        step_size: Scale of the Monte-Carlo perturbation ``delta``.
        temperature: Metropolis annealing temperature ``T`` (the paper uses 1).
        start_scale: Standard deviation of the random starting points.
        seed: Seed for all pseudo-randomness (None for nondeterministic runs).
        mark_infeasible: Enable the infeasible-branch heuristic of Sect. 5.3.
        zero_tolerance: Threshold below which ``FOO_R(x*)`` counts as zero.
            Exact zeros are produced by construction, so 0.0 is faithful; a
            tiny positive tolerance guards against backend round-off.
        max_evaluations: Optional cap on representing-function evaluations.
        time_budget: Optional wall-clock cap in seconds.
    """

    n_start: int = 100
    n_iter: int = 5
    local_minimizer: str = "powell"
    backend: str = "builtin"
    epsilon: float = DEFAULT_EPSILON
    step_size: float = 1.0
    temperature: float = 1.0
    start_scale: float = 10.0
    seed: Optional[int] = None
    mark_infeasible: bool = True
    zero_tolerance: float = 0.0
    max_evaluations: Optional[int] = None
    time_budget: Optional[float] = None
    local_max_iterations: int = 40
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.n_start < 1:
            raise ValueError("n_start must be >= 1")
        if self.n_iter < 0:
            raise ValueError("n_iter must be >= 0")
        if self.epsilon <= 0:
            raise ValueError("epsilon must be > 0")
        if self.backend not in ("builtin", "scipy"):
            raise ValueError(f"unknown backend {self.backend!r}")

    @classmethod
    def paper(cls, **overrides) -> "CoverMeConfig":
        """The exact parameter settings of the paper's evaluation (Sect. 6.1)."""
        defaults = dict(n_start=500, n_iter=5, local_minimizer="powell")
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def smoke(cls, **overrides) -> "CoverMeConfig":
        """A fast profile for unit tests and CI."""
        defaults = dict(n_start=30, n_iter=3, local_minimizer="powell", seed=0)
        defaults.update(overrides)
        return cls(**defaults)
