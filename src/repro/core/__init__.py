"""CoverMe core: the paper's primary contribution.

Modules:

* :mod:`repro.core.branch_distance` -- Def. 4.1 branch distances.
* :mod:`repro.core.pen` -- Def. 4.2 penalty function over the saturation set.
* :mod:`repro.core.saturation` -- Def. 3.2 saturation tracking.
* :mod:`repro.core.representing` -- the representing function ``FOO_R``.
* :mod:`repro.core.coverme` -- Algorithm 1 driver.
* :mod:`repro.core.config` / :mod:`repro.core.report` -- configuration and
  result records.
"""

from repro.core.branch_distance import DEFAULT_EPSILON, branch_distance, negate_op
from repro.core.config import CoverMeConfig
from repro.core.coverme import CoverMe, CoverMeResult
from repro.core.pen import CoverMePenalty
from repro.core.report import CoverageReport, MinimizationTrace
from repro.core.representing import RepresentingFunction
from repro.core.saturation import SaturationTracker

__all__ = [
    "DEFAULT_EPSILON",
    "CoverMe",
    "CoverMeConfig",
    "CoverMePenalty",
    "CoverMeResult",
    "CoverageReport",
    "MinimizationTrace",
    "RepresentingFunction",
    "SaturationTracker",
    "branch_distance",
    "negate_op",
]
