"""Saturation tracking (Def. 3.2 and Lemma 3.3).

A branch is *saturated* by a set of test inputs ``X`` when the branch itself
and every descendant branch is covered by ``X``.  By Lemma 3.3, saturating
every branch is equivalent to covering every branch, which is why CoverMe can
drive its search entirely with the saturation set: the penalty function
(Def. 4.2) only pulls towards branches that are not yet saturated, so every
zero of the representing function makes progress.

The tracker also records branches *deemed infeasible* by the heuristic of
Sect. 5.3: those are treated as saturated (they stop attracting the search)
but are never counted as covered in the reported coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.instrument.program import InstrumentedProgram
from repro.instrument.runtime import BranchId, ExecutionRecord, branch_mask, branches_from_mask


@dataclass
class SaturationTracker:
    """Tracks covered, saturated and deemed-infeasible branches of a program."""

    program: InstrumentedProgram
    covered: set[BranchId] = field(default_factory=set)
    infeasible: set[BranchId] = field(default_factory=set)
    _saturated: frozenset[BranchId] = field(default_factory=frozenset)
    _saturated_mask: int = 0

    def __post_init__(self) -> None:
        self._recompute()

    # -- updates -----------------------------------------------------------------

    def add_execution(self, record: ExecutionRecord) -> set[BranchId]:
        """Record the branches covered by one accepted test input.

        Returns the set of newly covered branches.
        """
        new = record.covered - self.covered
        if new:
            self.covered |= new
            self._recompute()
        return new

    def add_covered(self, branches: set[BranchId]) -> set[BranchId]:
        """Mark branches as covered directly (used by replaying stored inputs)."""
        new = branches - self.covered
        if new:
            self.covered |= new
            self._recompute()
        return new

    def add_covered_mask(self, mask: int) -> set[BranchId]:
        """Mark the branches of a flat bitmask as covered.

        Convenience for mask-based consumers, e.g. feeding back the bitset a
        ``PENALTY_ONLY`` :meth:`~repro.instrument.program.InstrumentedProgram.run_profiled`
        call returned.  The engine's reduction itself folds ``BranchId`` sets
        from :class:`~repro.instrument.runtime.CoverageOutcome` via
        :meth:`add_covered`.
        """
        return self.add_covered(set(branches_from_mask(mask)))

    def mark_infeasible(self, branch: BranchId) -> None:
        """Apply the infeasible-branch heuristic: treat ``branch`` as saturated."""
        if branch not in self.infeasible:
            self.infeasible.add(branch)
            self._recompute()

    # -- queries -----------------------------------------------------------------

    @property
    def saturated(self) -> frozenset[BranchId]:
        """The set ``Saturate`` used by the penalty function."""
        return self._saturated

    @property
    def saturated_mask(self) -> int:
        """``Saturate`` as a flat bitmask, maintained incrementally.

        This is what the allocation-free runtime's inlined penalty consumes
        (:class:`~repro.instrument.runtime.FastRuntime`); it is recomputed
        only when the tracker's state changes, never per evaluation.
        """
        return self._saturated_mask

    def is_saturated(self, branch: BranchId) -> bool:
        return branch in self._saturated

    def all_saturated(self) -> bool:
        """True when every branch of the program is saturated (Lemma 3.3)."""
        return len(self._saturated) >= self.program.n_branches

    def all_covered(self) -> bool:
        return self.covered >= self.program.all_branches

    @property
    def n_branches(self) -> int:
        return self.program.n_branches

    @property
    def n_covered(self) -> int:
        return len(self.covered & self.program.all_branches)

    def branch_coverage(self) -> float:
        """Fraction of branches genuinely covered (infeasible marks excluded)."""
        if self.program.n_branches == 0:
            return 1.0
        return self.n_covered / self.program.n_branches

    def uncovered(self) -> frozenset[BranchId]:
        return frozenset(self.program.all_branches - self.covered)

    # -- internals ---------------------------------------------------------------

    def _recompute(self) -> None:
        """Recompute the saturation set from covered and infeasible branches.

        A branch is saturated when it is covered (or deemed infeasible) and
        all its descendant branches are covered or deemed infeasible.
        Branches deemed infeasible are saturated outright, matching how
        CoverMe adds them to ``Saturate`` (Sect. 5.3).
        """
        effective = self.covered | self.infeasible
        saturated: set[BranchId] = set(self.infeasible)
        for branch in effective:
            descendants = self.program.descendant_branches(branch)
            if descendants <= effective:
                saturated.add(branch)
        self._saturated = frozenset(saturated)
        self._saturated_mask = branch_mask(saturated)
