"""Branch distances (Def. 4.1 of the paper).

The branch distance ``d_eps(op, a, b)`` quantifies how far the operands
``a`` and ``b`` are from satisfying ``a op b``:

* ``d(==, a, b) = (a - b)^2``
* ``d(<=, a, b) = 0`` if ``a <= b`` else ``(a - b)^2``
* ``d(<,  a, b) = 0`` if ``a < b``  else ``(a - b)^2 + eps``
* ``d(!=, a, b) = 0`` if ``a != b`` else ``eps``
* ``d(>=, a, b) = d(<=, b, a)`` and ``d(>, a, b) = d(<, b, a)``

The key property (Eq. 8) is ``d(op, a, b) >= 0`` and
``d(op, a, b) == 0  iff  a op b`` -- it is what makes the representing
function's zeros coincide with branch-saturating inputs (Thm. 4.3).
"""

from __future__ import annotations

import math

#: Default value of the small positive constant ``eps`` of Def. 4.1.  The
#: paper describes it as "a small positive floating-point close to machine
#: epsilon".
DEFAULT_EPSILON: float = 2.0 ** -42

_NEGATIONS = {
    "==": "!=",
    "!=": "==",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
}


def negate_op(op: str) -> str:
    """Return the logical negation of a comparison operator (``op`` bar)."""
    try:
        return _NEGATIONS[op]
    except KeyError:
        raise ValueError(f"unsupported comparison operator {op!r}") from None


def _squared_gap(a: float, b: float) -> float:
    """``min((a - b)^2, 1e300)``: saturated so large gaps stay finite.

    Saturating *every* value at the ceiling (not just the overflowing ones)
    keeps the distance monotone in the gap -- a finite square like
    ``(1e150)^2 > 1e300`` must not exceed the clamp an overflowing gap
    receives.
    """
    gap = a - b
    if math.isinf(gap):
        return 1.0e300
    return min(gap * gap, 1.0e300)


def branch_distance(op: str, a: float, b: float, epsilon: float = DEFAULT_EPSILON) -> float:
    """Branch distance ``d_eps(op, a, b)`` of Def. 4.1.

    Args:
        op: One of ``==  !=  <  <=  >  >=``.
        a: Left operand.
        b: Right operand.
        epsilon: The small positive constant used for strict comparisons and
            disequality.

    Returns:
        A non-negative float that is zero exactly when ``a op b`` holds.
    """
    if epsilon <= 0.0:
        raise ValueError("epsilon must be strictly positive")
    if op == "==":
        return _squared_gap(a, b)
    if op == "<=":
        return 0.0 if a <= b else _squared_gap(a, b)
    if op == "<":
        return 0.0 if a < b else _squared_gap(a, b) + epsilon
    if op == "!=":
        return 0.0 if a != b else epsilon
    if op == ">=":
        return branch_distance("<=", b, a, epsilon)
    if op == ">":
        return branch_distance("<", b, a, epsilon)
    raise ValueError(f"unsupported comparison operator {op!r}")


def distance_pair(
    op: str, a: float, b: float, epsilon: float = DEFAULT_EPSILON
) -> tuple[float, float]:
    """Distances towards the true branch and the false branch of ``a op b``."""
    return (
        branch_distance(op, a, b, epsilon),
        branch_distance(negate_op(op), a, b, epsilon),
    )
