"""Combined Gcov-like coverage reports."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.coverage.branch import BranchCoverage
from repro.coverage.line import LineCoverage
from repro.instrument.program import InstrumentedProgram


@dataclass(frozen=True)
class GcovReport:
    """Branch + line coverage percentages for one program and one test suite."""

    program: str
    n_branches: int
    covered_branches: int
    n_lines: int
    covered_lines: int
    executions: int

    @property
    def branch_percent(self) -> float:
        if self.n_branches == 0:
            return 100.0
        return 100.0 * self.covered_branches / self.n_branches

    @property
    def line_percent(self) -> float:
        if self.n_lines == 0:
            return 100.0
        return 100.0 * self.covered_lines / self.n_lines

    def format_row(self) -> str:
        return (
            f"{self.program:<28s} branches {self.covered_branches:>3d}/{self.n_branches:<3d} "
            f"({self.branch_percent:5.1f}%)  lines {self.covered_lines:>3d}/{self.n_lines:<3d} "
            f"({self.line_percent:5.1f}%)"
        )


def measure_coverage(
    program: InstrumentedProgram,
    inputs: Iterable[Sequence[float]],
    original: Optional[Callable] = None,
) -> GcovReport:
    """Replay ``inputs`` and report branch (and optionally line) coverage.

    Args:
        program: The instrumented program under test.
        inputs: The generated test inputs (the set ``X``).
        original: The original uninstrumented callable; when provided, line
            coverage is measured on it as well.
    """
    inputs = list(inputs)
    branches = BranchCoverage(program)
    branches.run_all(inputs)
    n_lines = covered_lines = 0
    if original is not None:
        lines = LineCoverage(original)
        lines.run_all(inputs)
        n_lines = lines.n_lines
        covered_lines = lines.n_covered
    return GcovReport(
        program=program.name,
        n_branches=branches.n_branches,
        covered_branches=branches.n_covered,
        n_lines=n_lines,
        covered_lines=covered_lines,
        executions=branches.executions,
    )
