"""Branch coverage measurement for instrumented programs.

The tracker replays test inputs through the instrumented program with a plain
coverage runtime (no penalty policy) and accumulates the branches taken.  The
denominator is Gcov's convention of two branches per conditional statement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.instrument.program import InstrumentedProgram
from repro.instrument.runtime import BranchId, Runtime


@dataclass
class BranchCoverage:
    """Accumulates branch coverage of one instrumented program."""

    program: InstrumentedProgram
    covered: set[BranchId] = field(default_factory=set)
    executions: int = 0

    def run(self, args: Sequence[float]) -> set[BranchId]:
        """Execute the program on ``args`` and record the branches taken.

        Returns the set of branches newly covered by this execution.
        """
        runtime = Runtime(policy=None)
        _, _, record = self.program.run(args, runtime=runtime)
        self.executions += 1
        new = record.covered - self.covered
        self.covered |= record.covered
        return new

    def run_all(self, inputs: Iterable[Sequence[float]]) -> None:
        """Replay a whole test suite (the set ``X`` of generated inputs)."""
        for args in inputs:
            self.run(args)

    @property
    def n_branches(self) -> int:
        return self.program.n_branches

    @property
    def n_covered(self) -> int:
        return len(self.covered & self.program.all_branches)

    @property
    def percent(self) -> float:
        """Branch coverage percentage, Gcov style."""
        if self.n_branches == 0:
            return 100.0
        return 100.0 * self.n_covered / self.n_branches

    def uncovered(self) -> frozenset[BranchId]:
        return frozenset(self.program.all_branches - self.covered)

    def is_complete(self) -> bool:
        return self.n_covered >= self.n_branches
