"""Line coverage measurement (Sect. C of the paper).

Line coverage is measured on the *original* (uninstrumented) function: a
tracing hook records every executed line of the function's code object while
the test inputs are replayed.  The denominator is the set of traceable source
lines of the function, which matches how Gcov counts executable lines.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence


def executable_lines(func: Callable) -> frozenset[int]:
    """The set of traceable source line numbers of ``func``."""
    code = func.__code__
    lines = {line for _, _, line in code.co_lines() if line is not None}
    lines.discard(code.co_firstlineno)  # the ``def`` line itself
    return frozenset(lines)


@dataclass
class LineCoverage:
    """Accumulates executed-line coverage of one Python function."""

    func: Callable
    lines: frozenset[int] = field(default_factory=frozenset)
    covered: set[int] = field(default_factory=set)
    executions: int = 0

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = executable_lines(self.func)

    def run(self, args: Sequence[float]) -> None:
        """Execute the function on ``args`` under the line tracer."""
        code = self.func.__code__
        hit: set[int] = set()

        def tracer(frame, event, _arg):
            if frame.f_code is code and event == "line":
                hit.add(frame.f_lineno)
            return tracer

        previous = sys.gettrace()
        sys.settrace(tracer)
        try:
            self.func(*args)
        except (ArithmeticError, ValueError, OverflowError):
            pass
        finally:
            sys.settrace(previous)
        self.executions += 1
        self.covered |= hit & self.lines

    def run_all(self, inputs: Iterable[Sequence[float]]) -> None:
        for args in inputs:
            self.run(args)

    @property
    def n_lines(self) -> int:
        return len(self.lines)

    @property
    def n_covered(self) -> int:
        return len(self.covered)

    @property
    def percent(self) -> float:
        if not self.lines:
            return 100.0
        return 100.0 * len(self.covered) / len(self.lines)
