"""Coverage measurement substrate (the reproduction's Gcov).

* :mod:`repro.coverage.branch` -- branch coverage over instrumented programs
  (two branches per conditional, exactly like Gcov's branch summary).
* :mod:`repro.coverage.line` -- line coverage of the original, uninstrumented
  function using a tracing hook.
* :mod:`repro.coverage.gcov` -- combined reports in Gcov-like percentages.
"""

from repro.coverage.branch import BranchCoverage
from repro.coverage.gcov import GcovReport, measure_coverage
from repro.coverage.line import LineCoverage

__all__ = ["BranchCoverage", "GcovReport", "LineCoverage", "measure_coverage"]
