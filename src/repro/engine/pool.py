"""Worker-pool plumbing for the search engine and the experiment harness.

Three execution modes share one semantic contract -- a batch of independent
:class:`~repro.engine.worker.StartTask`s in, their
:class:`~repro.engine.worker.StartResult`s out, reducible in start order:

* ``serial`` -- run in the calling thread.  Results are *streamed* so the
  engine's in-order merge can stop the batch early (budget hit, everything
  saturated) without paying for the remaining starts.
* ``thread`` -- a :class:`~concurrent.futures.ThreadPoolExecutor`; each
  worker thread owns a clone of the instrumented program because the
  compiled namespace's runtime handle is per-program mutable state.
* ``process`` -- a fork/spawn pool; workers re-instrument from the program's
  picklable origin (cached per process).  This is the mode that buys real
  wall-clock speedup for CPU-bound representing functions.

``auto`` resolves to the strongest mode the program supports: ``process``
when the origin is picklable, else ``thread`` when the program can be
cloned, else ``serial``.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

from repro.instrument.program import InstrumentedProgram
from repro.engine.worker import (
    StartParams,
    StartResult,
    StartTask,
    origin_is_picklable,
    prime_chunk,
    run_chunk_in_worker,
    run_start,
)

T = TypeVar("T")
R = TypeVar("R")

WORKER_MODES: tuple[str, ...] = ("auto", "process", "thread", "serial")


def available_worker_modes() -> tuple[str, ...]:
    return WORKER_MODES


def process_context():
    """Pick a start method that is safe from this exact process.

    fork is the cheapest (workers inherit runtime-registered backends), but
    forking a *multithreaded* parent can deadlock the children on locks the
    forking thread never held -- exactly the situation when ``compare_tools``'
    thread pool nests per-case process pools.  In that case fall back to
    forkserver (its server was started while single-threaded via fork+exec)
    or spawn.
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods and threading.active_count() == 1:
        return multiprocessing.get_context("fork")
    if "forkserver" in methods:
        return multiprocessing.get_context("forkserver")
    return multiprocessing.get_context("spawn")


#: Backwards-compatible alias (the helper predates its public use by the
#: service layer's persistent process workers).
_process_context = process_context


def _origin_importable_in_child(origin) -> bool:
    """Whether a spawn/forkserver child can rebuild the origin by import.

    Functions pickle by module+qualname *reference*, so ``pickle.dumps``
    succeeds in the parent even for ``__main__``-defined targets -- but a
    spawned child re-imports modules and (in a REPL or notebook) has no
    ``__main__`` source to resolve them from.  fork children share the
    parent's memory and are exempt from this check.
    """
    for func in (origin.target, *origin.extra_functions):
        if getattr(func, "__module__", "__main__") == "__main__":
            return False
    return True


def resolve_worker_mode(
    program: InstrumentedProgram, mode: str, n_workers: int, mp_context=None
) -> str:
    """Map the configured mode to what this program actually supports.

    ``mp_context`` is the multiprocessing context that will actually start
    the workers; pass the same object to :class:`StartPool` so the
    fork-safety decision made here cannot be invalidated by threads started
    between resolution and pool creation.
    """
    if mode not in WORKER_MODES:
        known = ", ".join(WORKER_MODES)
        raise ValueError(f"unknown worker mode {mode!r}; known: {known}")
    if n_workers <= 1 or mode == "serial":
        return "serial"
    if mode == "process" or mode == "auto":
        if origin_is_picklable(program.origin):
            ctx = mp_context if mp_context is not None else process_context()
            if ctx.get_start_method() == "fork" or _origin_importable_in_child(program.origin):
                return "process"
            if mode == "process":
                raise ValueError(
                    f"program {program.name!r} is defined in __main__, which "
                    "spawn/forkserver workers cannot re-import; move the target "
                    "to an importable module or use thread workers"
                )
        elif mode == "process":
            raise ValueError(
                f"program {program.name!r} has no picklable origin; "
                "process workers need a module-level target function"
            )
    if program.origin is not None:
        return "thread"
    if mode == "thread":
        raise ValueError(
            f"program {program.name!r} has no origin to clone from; "
            "thread workers need a program built by instrument()"
        )
    return "serial"


def chunk_evenly(items: Sequence[T], n_chunks: int) -> list[list[T]]:
    """Split ``items`` into at most ``n_chunks`` contiguous, near-equal chunks."""
    if not items:
        return []
    n_chunks = max(1, min(n_chunks, len(items)))
    size, rest = divmod(len(items), n_chunks)
    chunks: list[list[T]] = []
    pos = 0
    for i in range(n_chunks):
        end = pos + size + (1 if i < rest else 0)
        chunks.append(list(items[pos:end]))
        pos = end
    return chunks


class StartPool:
    """Executes batches of starts in the resolved worker mode.

    The pool is created once per engine run and reused across batches so
    process workers amortize their instrumentation cost over the whole run.
    """

    def __init__(
        self, program: InstrumentedProgram, mode: str, n_workers: int, mp_context=None
    ):
        self.program = program
        self.mode = mode
        self.n_workers = max(1, n_workers)
        self._executor = None
        self._clones: list[InstrumentedProgram] = []
        if mode == "process":
            self._executor = ProcessPoolExecutor(
                max_workers=self.n_workers,
                mp_context=mp_context if mp_context is not None else process_context(),
            )
        elif mode == "thread":
            self._executor = ThreadPoolExecutor(max_workers=self.n_workers)
            self._clones = [program.clone() for _ in range(self.n_workers)]

    @property
    def streams_lazily(self) -> bool:
        """Whether abandoning the ``run_batch`` iterator skips unstarted work.

        Serial mode launches each start only when the consumer pulls it, so
        an abandoned iterator means the remaining starts never executed and
        their evaluations must not be accounted.  Pooled modes dispatch the
        whole batch eagerly; every result's cost counts even after the
        reduction stops.  The engine keys its accounting on this flag rather
        than on the mode name so alternative pools (e.g. the distributed
        lease pool) can pick either contract.
        """
        return self.mode == "serial"

    def run_batch(self, params: StartParams, tasks: list[StartTask]) -> Iterator[StartResult]:
        """Yield the batch's results in start order.

        Serial mode streams lazily (the consumer may abandon the iterator to
        skip unneeded starts); pooled modes dispatch contiguous chunks and
        stream each chunk's results as its future completes.
        """
        if self.mode == "serial":
            # Chunk priming (one batched kernel call over the batch's start
            # vectors) happens here, inside the generator, so an abandoned
            # iterator never pays for it.  A consumer that stops early wastes
            # the primed tail values, but they are vectorized lanes, not
            # scalar program executions.
            primed = prime_chunk(self.program, params, tasks)
            for task in tasks:
                yield run_start(
                    self.program,
                    params,
                    task,
                    primed=None if primed is None else primed.get(task.index),
                )
            return
        chunks = chunk_evenly(tasks, self.n_workers)
        if self.mode == "process":
            # Process workers prime inside run_chunk_in_worker, against the
            # per-process program instance.
            futures = [
                self._executor.submit(run_chunk_in_worker, self.program.origin, params, chunk)
                for chunk in chunks
            ]
        else:
            def run_chunk_on_clone(prog, ch):
                primed = prime_chunk(prog, params, ch)
                if primed is None:
                    return [run_start(prog, params, t) for t in ch]
                return [run_start(prog, params, t, primed=primed.get(t.index)) for t in ch]

            futures = [
                self._executor.submit(
                    run_chunk_on_clone, self._clones[i % len(self._clones)], chunk
                )
                for i, chunk in enumerate(chunks)
            ]
        # chunk_evenly hands out contiguous ascending index ranges and the
        # futures were submitted in chunk order, so yielding per future
        # preserves start order while letting the consumer begin reducing as
        # soon as the first chunk completes.
        for future in futures:
            yield from future.result()

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "StartPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    n_workers: int = 1,
    mode: str = "thread",
) -> list[R]:
    """Order-preserving map used for batching whole experiments across cases.

    With ``mode="serial"`` or ``n_workers <= 1`` this is a plain loop;
    otherwise the items are dispatched to a thread or process pool and the
    results are returned in input order, so tables built from the output are
    identical regardless of worker count.
    """
    if mode not in ("serial", "thread", "process"):
        raise ValueError(f"unknown worker mode {mode!r}; known: serial, thread, process")
    items = list(items)
    if n_workers <= 1 or len(items) <= 1 or mode == "serial":
        return [fn(item) for item in items]
    if mode == "process":
        with ProcessPoolExecutor(max_workers=n_workers, mp_context=process_context()) as executor:
            return list(executor.map(fn, items))
    with ThreadPoolExecutor(max_workers=n_workers) as executor:
        return list(executor.map(fn, items))
