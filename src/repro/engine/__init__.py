"""The pluggable search-engine core (Step 3 of the paper, parallelized).

Layers:

* :mod:`repro.engine.scheduler` -- seeded start-point strategies
  (random-normal, Latin-hypercube, signature-box).
* :mod:`repro.engine.worker` -- one basin-hopping start against a frozen
  saturation snapshot; shared by every execution mode.
* :mod:`repro.engine.pool` -- serial / thread / process worker pools plus
  :func:`~repro.engine.pool.parallel_map` for batching whole experiments.
* :mod:`repro.engine.core` -- :class:`~repro.engine.core.SearchEngine`, the
  batched multi-start loop with deterministic in-order reduction.
"""

from repro.engine.scheduler import StartScheduler, available_strategies
from repro.engine.worker import StartParams, StartResult, StartTask, run_start
from repro.engine.pool import (
    StartPool,
    available_worker_modes,
    parallel_map,
    resolve_worker_mode,
)
from repro.engine.core import SearchEngine

__all__ = [
    "SearchEngine",
    "StartParams",
    "StartPool",
    "StartResult",
    "StartScheduler",
    "StartTask",
    "available_strategies",
    "available_worker_modes",
    "parallel_map",
    "resolve_worker_mode",
    "run_start",
]
