"""The search engine: Algorithm 1's multi-start loop as a parallel subsystem.

The engine executes ``n_start`` basin-hopping launches in fixed-size batches.
All starts of a batch minimize against the same frozen snapshot of the
saturation state, so they are mutually independent and can run on any number
of workers; the batch's results are then *reduced in start order* into the
shared :class:`~repro.core.saturation.SaturationTracker`:

* a start whose minimum reaches zero contributes a test input and its
  covered branches (Algorithm 1, line 11),
* a start that bottoms out above zero feeds the infeasible-branch heuristic
  of Sect. 5.3,
* saturation and evaluation-budget stopping conditions are checked between
  reduction steps, exactly as the sequential driver checked them between
  starts.

Because batch boundaries, per-start seeds and the reduction order are all
functions of the configuration alone, a seeded run produces identical
covered/saturated branch sets for any ``n_workers`` and any worker mode.
The one documented exception is ``time_budget``, which is inherently
wall-clock dependent: workers stop launching new starts once the deadline
passes, and the reduction stops at the first start that was skipped.

The batch is also the specialization *epoch* boundary: under the
``penalty-specialized`` evaluation profile every start of a batch minimizes
against a compiled variant of the program whose probe sites have the batch's
frozen saturation mask resolved at compile time
(:mod:`repro.instrument.specialize`).  The reduction between batches is the
only place saturation bits flip, so re-specialization happens at most once
per program per new mask -- and is a cache hit whenever the mask did not
actually change, which the throughput benchmark asserts as "zero recompiles
while the mask is unchanged".
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.core.config import CoverMeConfig
from repro.core.report import CoverMeResult, MinimizationTrace
from repro.core.saturation import SaturationTracker
from repro.engine.pool import StartPool, process_context, resolve_worker_mode
from repro.engine.scheduler import StartScheduler
from repro.engine.worker import StartParams, StartResult, StartTask
from repro.instrument.program import InstrumentedProgram
from repro.instrument.runtime import BranchId


class SearchEngine:
    """Owns the multi-start search over one instrumented program.

    Args:
        program: The program under test.
        config: Algorithm parameters (including ``n_workers``,
            ``start_strategy`` and ``batch_size``).
        tracker: The shared saturation tracker to reduce into; a fresh one is
            created when omitted.  Passing the driver's tracker lets the
            :class:`~repro.core.coverme.CoverMe` façade keep exposing it.
    """

    def __init__(
        self,
        program: InstrumentedProgram,
        config: Optional[CoverMeConfig] = None,
        tracker: Optional[SaturationTracker] = None,
    ):
        self.program = program
        self.config = config if config is not None else CoverMeConfig()
        self.tracker = tracker if tracker is not None else SaturationTracker(program)
        self.root_seed = (
            int(self.config.seed)
            if self.config.seed is not None
            else int(np.random.default_rng().integers(2**31 - 1))
        )
        self.scheduler = StartScheduler(
            program.signature,
            strategy=self.config.start_strategy,
            root_seed=self.root_seed,
            start_scale=self.config.start_scale,
        )
        # Pin the multiprocessing context now so the fork-safety decision in
        # resolve_worker_mode stays valid for the pool that run() creates,
        # even if other threads start in between.
        self.mp_context = process_context()
        self.resolved_mode = resolve_worker_mode(
            program, self.config.worker_mode, self.config.n_workers, mp_context=self.mp_context
        )

    # -- public API -----------------------------------------------------------------

    def run(self) -> CoverMeResult:
        """Execute the batched multi-start search and reduce into one result."""
        config = self.config
        batch_size = config.effective_batch_size()
        start_time = time.perf_counter()
        deadline = time.time() + config.time_budget if config.time_budget is not None else None
        params = StartParams(
            backend=config.backend,
            local_minimizer=config.local_minimizer,
            n_iter=config.n_iter,
            step_size=config.step_size,
            temperature=config.temperature,
            local_max_iterations=config.local_max_iterations,
            zero_tolerance=config.zero_tolerance,
            epsilon=config.epsilon,
            root_seed=self.root_seed,
            deadline=deadline,
            eval_profile=config.eval_profile,
            memoize=config.memoize,
            batch_starts=config.batch_starts,
            proposal_population=config.proposal_population,
            native_threads=config.native_threads,
        )

        inputs: list[tuple[float, ...]] = []
        traces: list[MinimizationTrace] = []
        evaluations = 0
        starts_used = 0
        issued = 0
        batch_index = 0
        stop = False

        with self._make_pool() as pool:
            lazy = bool(getattr(pool, "streams_lazily", False))
            while not stop and issued < config.n_start:
                if self.tracker.all_saturated():
                    break
                if self._budget_exhausted(evaluations, start_time):
                    break
                count = min(batch_size, config.n_start - issued)
                tasks = self._schedule_batch(batch_index, issued, count)
                issued += count
                batch_index += 1
                for result in pool.run_batch(params, tasks):
                    if result.skipped:
                        stop = True
                        if lazy:
                            break
                        continue
                    # Every non-skipped result really executed, so its cost
                    # counts even once the reduction has stopped -- pooled
                    # modes compute the whole batch up front, and a worker
                    # may have finished its chunk before another hit the
                    # deadline.  Lazily streaming pools never hand over
                    # results the consumer did not pull, so abandoning the
                    # iterator (below) correctly accounts for nothing.
                    evaluations += result.evaluations
                    if stop:
                        continue
                    starts_used += 1
                    traces.append(self._reduce(result, inputs))
                    if self.tracker.all_saturated() or self._budget_exhausted(
                        evaluations, start_time
                    ):
                        stop = True
                        if lazy:
                            # Abandon the lazy iterator: the remaining
                            # starts were never launched, so there is
                            # nothing to account for.
                            break
                self._emit_progress(
                    batch_index - 1, issued, starts_used, evaluations, len(inputs), start_time
                )

        wall_time = time.perf_counter() - start_time
        return CoverMeResult(
            program=self.program.name,
            inputs=inputs,
            n_branches=self.program.n_branches,
            covered=frozenset(self.tracker.covered & self.program.all_branches),
            saturated=self.tracker.saturated,
            infeasible=frozenset(self.tracker.infeasible),
            evaluations=evaluations,
            wall_time=wall_time,
            n_starts_used=starts_used,
            traces=traces,
        )

    # -- internals --------------------------------------------------------------------

    def _emit_progress(
        self,
        batch_index: int,
        issued: int,
        starts_used: int,
        evaluations: int,
        n_inputs: int,
        start_time: float,
    ) -> None:
        """Call the configured progress observer after one batch reduction.

        The observer sees running counters only -- it cannot influence the
        search, so seeded results stay bit-identical with or without it.
        """
        if self.config.progress is None:
            return
        self.config.progress(
            {
                "event": "batch",
                "batch": batch_index,
                "starts_issued": issued,
                "starts_total": self.config.n_start,
                "starts_used": starts_used,
                "evaluations": evaluations,
                "inputs": n_inputs,
                "covered": len(self.tracker.covered & self.program.all_branches),
                "n_branches": self.program.n_branches,
                "all_saturated": self.tracker.all_saturated(),
                "elapsed": time.perf_counter() - start_time,
            }
        )

    def _make_pool(self):
        """Build the execution pool for this run.

        ``config.pool_factory`` is the seam the distributed coordinator uses
        to substitute a lease-backed pool; when unset the engine creates the
        ordinary in-process :class:`StartPool`.  The factory receives the
        engine so it can reach the scheduler and batch plan (for speculative
        lease construction) and must return a context manager whose value
        honors the ``run_batch``/``streams_lazily`` contract.
        """
        if self.config.pool_factory is not None:
            return self.config.pool_factory(self)
        return StartPool(
            self.program, self.resolved_mode, self.config.n_workers, mp_context=self.mp_context
        )

    def batch_plan(self, batch_index: int) -> tuple[int, int]:
        """``(first_index, count)`` of the given batch under this config.

        Batch boundaries are a pure function of ``n_start`` and the batch
        size -- batch ``k`` always starts at ``k * batch_size`` -- so remote
        coordinators can enumerate future batches without running the loop.
        """
        size = self.config.effective_batch_size()
        first = batch_index * size
        return first, max(0, min(size, self.config.n_start - first))

    def tasks_for_batch(
        self,
        batch_index: int,
        covered: frozenset[BranchId],
        infeasible: frozenset[BranchId],
    ) -> list[StartTask]:
        """Draw the batch's seeded starting points under an explicit snapshot.

        The scheduler is a pure function of ``(batch_index, first_index,
        count)``, so this can be called ahead of the main loop -- the
        distributed lease pool uses it to issue *speculative* leases for
        future batches under a predicted saturation snapshot, validating the
        prediction when the engine actually reaches that batch.
        """
        first_index, count = self.batch_plan(batch_index)
        points = self.scheduler.batch(batch_index, first_index, count)
        return [
            StartTask(
                index=first_index + offset,
                x0=tuple(float(v) for v in points[offset]),
                covered=covered,
                infeasible=infeasible,
            )
            for offset in range(count)
        ]

    def _schedule_batch(self, batch_index: int, first_index: int, count: int) -> list[StartTask]:
        """Freeze the saturation snapshot and draw the batch's starting points."""
        del first_index, count  # implied by the batch plan
        return self.tasks_for_batch(
            batch_index,
            frozenset(self.tracker.covered),
            frozenset(self.tracker.infeasible),
        )

    def _reduce(self, result: StartResult, inputs: list[tuple[float, ...]]) -> MinimizationTrace:
        """Fold one start's outcome into the shared tracker (Algorithm 1, lines 11-13)."""
        if result.value <= self.config.zero_tolerance:
            newly = self.tracker.add_covered(set(result.covered))
            inputs.append(result.x_star)
            return MinimizationTrace(
                start=result.x0,
                minimum_point=result.x_star,
                minimum_value=result.value,
                accepted=True,
                newly_covered=frozenset(newly),
                evaluations=result.evaluations,
            )
        marked = self._apply_infeasible_heuristic(result)
        return MinimizationTrace(
            start=result.x0,
            minimum_point=result.x_star,
            minimum_value=result.value,
            accepted=False,
            marked_infeasible=marked,
            evaluations=result.evaluations,
        )

    def _apply_infeasible_heuristic(self, result: StartResult) -> Optional[BranchId]:
        """Sect. 5.3: deem the unvisited branch of the last conditional infeasible."""
        if not self.config.mark_infeasible:
            return None
        if result.last_conditional is None or result.last_outcome is None:
            return None
        candidate = BranchId(result.last_conditional, not result.last_outcome)
        if candidate in self.tracker.covered or candidate in self.tracker.infeasible:
            return None
        self.tracker.mark_infeasible(candidate)
        return candidate

    def _budget_exhausted(self, evaluations: int, start_time: float) -> bool:
        config = self.config
        if config.max_evaluations is not None and evaluations >= config.max_evaluations:
            return True
        if config.time_budget is not None:
            if time.perf_counter() - start_time >= config.time_budget:
                return True
        return False
