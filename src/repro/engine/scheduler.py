"""Start-point scheduling for the multi-start search (Algorithm 1, line 9).

Algorithm 1 draws every starting point from an isotropic normal distribution.
Zitoun et al. (arXiv:2002.12447) observe that diversifying the search
strategy materially changes which branches a floating-point search reaches,
so the scheduler makes the distribution pluggable:

* ``random-normal`` -- the paper's setting: ``x0 ~ N(0, start_scale^2)``.
* ``latin-hypercube`` -- a stratified design over the signature's input box;
  each batch is one Latin-hypercube sample, guaranteeing every batch spreads
  its starts across the whole box.
* ``signature-box`` -- uniform samples inside the signature's input box,
  exercising the domain the benchmark declares instead of a scale-free ball.

Determinism contract: point ``i`` of a run depends only on ``(root_seed,
strategy, i)`` for per-point strategies, or on ``(root_seed, batch_index)``
for the batch-stratified Latin hypercube.  Nothing depends on how many
workers later execute the starts, which is what makes seeded runs
reproducible regardless of ``n_workers``.
"""

from __future__ import annotations

import numpy as np

from repro.instrument.signature import ProgramSignature

#: Sub-stream tags keeping the scheduler's draws disjoint from the workers'.
_STREAM_NORMAL = 101
_STREAM_BOX = 103
_STREAM_LHS = 105

STRATEGIES: tuple[str, ...] = ("random-normal", "latin-hypercube", "signature-box")


def available_strategies() -> tuple[str, ...]:
    """Names of every start-point strategy the scheduler understands."""
    return STRATEGIES


class StartScheduler:
    """Produces seeded batches of starting points for the search engine.

    Args:
        signature: Input-domain description of the program under test
            (supplies arity and the sampling box).
        strategy: One of :func:`available_strategies`.
        root_seed: Root of the deterministic seed tree.  Every point is drawn
            from its own :func:`numpy.random.default_rng` sub-stream so the
            sequence is independent of execution order.
        start_scale: Standard deviation used by ``random-normal``.
    """

    def __init__(
        self,
        signature: ProgramSignature,
        strategy: str = "random-normal",
        root_seed: int = 0,
        start_scale: float = 10.0,
    ):
        if strategy not in STRATEGIES:
            known = ", ".join(STRATEGIES)
            raise ValueError(f"unknown start strategy {strategy!r}; known: {known}")
        self.signature = signature
        self.strategy = strategy
        self.root_seed = int(root_seed)
        self.start_scale = float(start_scale)

    @property
    def arity(self) -> int:
        return self.signature.arity

    def batch(self, batch_index: int, first_index: int, count: int) -> np.ndarray:
        """Return a ``(count, arity)`` array of starting points.

        ``first_index`` is the global index of the batch's first start;
        per-point strategies key their sub-streams on it so that batch
        boundaries do not change the points.
        """
        if count < 1:
            return np.empty((0, self.arity), dtype=float)
        if self.strategy == "random-normal":
            return self._per_point(_STREAM_NORMAL, first_index, count, self._normal_point)
        if self.strategy == "signature-box":
            return self._per_point(_STREAM_BOX, first_index, count, self._box_point)
        return self._latin_hypercube(batch_index, count)

    # -- strategies -----------------------------------------------------------------

    def _per_point(self, stream: int, first_index: int, count: int, draw) -> np.ndarray:
        points = np.empty((count, self.arity), dtype=float)
        for offset in range(count):
            rng = np.random.default_rng([self.root_seed, stream, first_index + offset])
            points[offset] = draw(rng)
        return points

    def _normal_point(self, rng: np.random.Generator) -> np.ndarray:
        return rng.normal(scale=self.start_scale, size=self.arity)

    def _box_point(self, rng: np.random.Generator) -> np.ndarray:
        low = np.asarray(self.signature.low, dtype=float)
        high = np.asarray(self.signature.high, dtype=float)
        return rng.uniform(low, high)

    def _latin_hypercube(self, batch_index: int, count: int) -> np.ndarray:
        """One stratified sample over the signature box per batch.

        Classic construction: per dimension, permute the ``count`` strata and
        jitter uniformly inside each stratum, so every one-dimensional
        projection of the batch covers all strata exactly once.
        """
        rng = np.random.default_rng([self.root_seed, _STREAM_LHS, batch_index])
        low = np.asarray(self.signature.low, dtype=float)
        high = np.asarray(self.signature.high, dtype=float)
        points = np.empty((count, self.arity), dtype=float)
        for dim in range(self.arity):
            strata = rng.permutation(count)
            jitter = rng.uniform(size=count)
            unit = (strata + jitter) / count
            points[:, dim] = low[dim] + unit * (high[dim] - low[dim])
        return points
