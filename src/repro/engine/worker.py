"""Per-start execution units of the search engine.

A *start* is one basin-hopping launch of Algorithm 1's loop body (lines
9-13): minimize the representing function from one starting point against a
frozen snapshot of the saturation state, then evaluate the found minimum once
more to obtain its coverage outcome.  The minimization loop runs under the
cheapest sufficient execution profile (``PENALTY_ONLY`` by default -- the
optimizer only reads the scalar objective) with an optional bit-pattern memo
cache in front of the objective; the final evaluation always retains at
least ``COVERAGE`` so the reduction sees the covered branches and the
infeasible heuristic's last conditional.  Starts within a batch share the
same snapshot, which makes them independent of one another -- the property
that lets the engine run them on any number of workers and still merge the
results deterministically.

Under the ``PENALTY_SPECIALIZED`` profile the epoch protocol composes with
this structure for free: the per-start tracker snapshot freezes the
saturation mask, so one start triggers at most one variant lookup, and the
program-level + module-level specialization caches make that lookup a
dictionary hit whenever any earlier start of the same worker (thread clones
and process workers each own a program instance) already ran against the
same mask.  Epoch invalidation therefore needs no cross-worker coordination:
each worker's representing function re-reads its tracker's mask per call and
re-specializes exactly when a batch reduction flipped a saturation bit.

The same :func:`run_start` body serves all three execution modes:

* **serial** and **thread** workers call it directly on (clones of) the
  in-process :class:`~repro.instrument.program.InstrumentedProgram`;
* **process** workers receive the *original* callable (picklable by module
  reference), re-instrument it once per worker process, and cache the result
  keyed by the program's origin, so the instrumentation cost is paid once per
  worker rather than once per start.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.representing import RepresentingFunction
from repro.core.saturation import SaturationTracker
from repro.instrument.batch import numpy_available as batch_numpy_available
from repro.instrument.program import InstrumentedProgram, ProgramOrigin, instrument
from repro.instrument.runtime import BranchId, ExecutionProfile
from repro.optimize.memo import BitPatternMemo
from repro.optimize.registry import get_backend

#: Sub-stream tag keeping worker RNGs disjoint from the scheduler's draws.
_STREAM_WORKER = 202


@dataclass(frozen=True)
class StartParams:
    """The per-run constants every start needs (one copy per chunk, not per start)."""

    backend: str
    local_minimizer: str
    n_iter: int
    step_size: float
    temperature: float
    local_max_iterations: int
    zero_tolerance: float
    epsilon: float
    root_seed: int
    deadline: Optional[float] = None
    eval_profile: str = ExecutionProfile.PENALTY_ONLY.value
    memoize: bool = True
    batch_starts: bool = True
    proposal_population: int = 1
    native_threads: int = 1


@dataclass(frozen=True)
class StartTask:
    """One scheduled start: its global index, starting point and snapshot."""

    index: int
    x0: tuple[float, ...]
    covered: frozenset[BranchId]
    infeasible: frozenset[BranchId]


@dataclass
class StartResult:
    """What one start produced, in the shape the deterministic merge consumes."""

    index: int
    x0: tuple[float, ...]
    x_star: tuple[float, ...]
    value: float
    covered: frozenset[BranchId] = frozenset()
    last_conditional: Optional[int] = None
    last_outcome: Optional[bool] = None
    evaluations: int = 0
    skipped: bool = False

    @classmethod
    def deadline_skip(cls, task: StartTask) -> "StartResult":
        return cls(index=task.index, x0=task.x0, x_star=task.x0, value=float("inf"), skipped=True)


def prime_chunk(
    program: InstrumentedProgram, params: StartParams, tasks: list[StartTask]
) -> Optional[dict[int, float]]:
    """One batched first-evaluation pass over a chunk's start vectors.

    Under the specialized profile (numpy available, memo on) the chunk's
    ``x0`` vectors go through a single
    :class:`~repro.instrument.batch.BatchKernel` call; the resulting values
    seed each start's memo, so the optimizer's opening evaluation at ``x0``
    is a cache hit instead of a scalar program execution.  Returns
    ``{task.index: r}`` for the primed tasks, or ``None`` when priming does
    not apply.  Only tasks sharing the first task's saturation snapshot are
    primed (batches always do; a defensive guard for hand-built chunks), so
    the planted values are exactly what each start's own representing
    function would compute and seeded trajectories are unchanged.
    """
    if not (params.memoize and params.batch_starts) or len(tasks) < 2:
        return None
    if ExecutionProfile(params.eval_profile) not in (
        ExecutionProfile.PENALTY_SPECIALIZED,
        ExecutionProfile.PENALTY_NATIVE,
    ):
        return None
    if not batch_numpy_available():
        return None
    if params.deadline is not None and time.time() >= params.deadline:
        return None
    covered, infeasible = tasks[0].covered, tasks[0].infeasible
    eligible = [t for t in tasks if t.covered == covered and t.infeasible == infeasible]
    if len(eligible) < 2:
        return None
    tracker = SaturationTracker(program, covered=set(covered), infeasible=set(infeasible))
    representing = RepresentingFunction(
        program, tracker, epsilon=params.epsilon, profile=params.eval_profile,
        native_threads=params.native_threads,
    )
    X = np.ascontiguousarray([t.x0 for t in eligible], dtype=np.float64)
    values = representing.evaluate_batch(X)
    return {t.index: float(v) for t, v in zip(eligible, values)}


def run_start(
    program: InstrumentedProgram,
    params: StartParams,
    task: StartTask,
    primed: Optional[float] = None,
) -> StartResult:
    """Execute one start against ``task``'s saturation snapshot.

    ``primed`` is the pre-computed ``FOO_R(x0)`` from :func:`prime_chunk`;
    when present (memo on) it is planted in the memo and one evaluation is
    credited, so the reported evaluation count matches the unprimed run.
    """
    if params.deadline is not None and time.time() >= params.deadline:
        return StartResult.deadline_skip(task)

    tracker = SaturationTracker(
        program, covered=set(task.covered), infeasible=set(task.infeasible)
    )
    # The optimizer inner loop requests the cheapest sufficient profile: it
    # only consumes the scalar objective, so the configured profile (default
    # PENALTY_ONLY) drives the loop, and the accepted minimum is re-executed
    # below with at least COVERAGE to harvest branches.  All profiles compute
    # bit-identical values, so this choice never changes seeded results.
    representing = RepresentingFunction(
        program, tracker, epsilon=params.epsilon, profile=params.eval_profile,
        native_threads=params.native_threads,
    )
    # Within one start the saturation snapshot is frozen, so FOO_R is a pure
    # function of the input bits and memoizing it is sound.  The memo wraps
    # the objective *outside* the backend, which keeps the backend protocol
    # unchanged and works for any registered backend.
    objective = (
        BitPatternMemo(representing, arity=program.arity) if params.memoize else representing
    )
    if primed is not None and params.memoize:
        # The batched pass already executed FOO_R(x0); plant the value and
        # credit the execution so ``evaluations`` is identical to the
        # scalar path (where the optimizer's opening call is a memo miss).
        objective.seed(task.x0, primed)
        representing.evaluations += 1
    rng = np.random.default_rng([params.root_seed, _STREAM_WORKER, task.index])
    found: dict[str, np.ndarray] = {}

    def callback(x: np.ndarray, f: float, _accepted: bool) -> bool:
        if f <= params.zero_tolerance:
            found["x"] = np.array(x, dtype=float, copy=True)
            return True
        return False

    backend = get_backend(params.backend)
    extra_kwargs = {}
    if params.proposal_population != 1:
        # Passed only when non-default so third-party registered backends
        # without the parameter keep working at the default setting.
        extra_kwargs["proposal_population"] = params.proposal_population
    result = backend(
        objective,
        np.asarray(task.x0, dtype=float),
        n_iter=params.n_iter,
        local_minimizer=params.local_minimizer,
        step_size=params.step_size,
        temperature=params.temperature,
        rng=rng,
        callback=callback,
        local_options={"max_iterations": params.local_max_iterations},
        **extra_kwargs,
    )
    x_star = found["x"] if "x" in found else result.x
    value, coverage = representing.evaluate_with_coverage(x_star)
    return StartResult(
        index=task.index,
        x0=task.x0,
        x_star=tuple(float(v) for v in np.atleast_1d(x_star)),
        value=float(value),
        covered=coverage.covered,
        last_conditional=coverage.last_conditional,
        last_outcome=coverage.last_outcome,
        evaluations=representing.evaluations,
    )


# -- process-pool side ----------------------------------------------------------------

#: Per-worker-process cache of instrumented programs, keyed by origin.
_PROGRAM_CACHE: dict[tuple, InstrumentedProgram] = {}


def _origin_key(origin: ProgramOrigin) -> tuple:
    return (
        origin.target.__module__,
        origin.target.__qualname__,
        tuple((f.__module__, f.__qualname__) for f in origin.extra_functions),
        origin.signature,
    )


def run_chunk_in_worker(
    origin: ProgramOrigin, params: StartParams, tasks: list[StartTask]
) -> list[StartResult]:
    """Process-pool entry point: instrument (cached) then run a chunk of starts."""
    key = _origin_key(origin)
    program = _PROGRAM_CACHE.get(key)
    if program is None:
        program = instrument(
            origin.target,
            extra_functions=origin.extra_functions,
            signature=origin.signature,
        )
        _PROGRAM_CACHE[key] = program
    primed = prime_chunk(program, params, tasks)
    if primed is None:
        return [run_start(program, params, task) for task in tasks]
    return [run_start(program, params, task, primed=primed.get(task.index)) for task in tasks]


def origin_is_picklable(origin: Optional[ProgramOrigin]) -> bool:
    """True when the program's origin can be shipped to a worker process."""
    if origin is None:
        return False
    try:
        pickle.dumps(origin)
    except Exception:
        return False
    return True
