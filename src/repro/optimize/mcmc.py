"""Monte-Carlo ingredients of the basin-hopping loop (Sect. 2, Sect. 4).

Basin-hopping is an MCMC sampling over the space of local minimum points
(Li & Scheraga; Leitner et al.).  Its two ingredients are the random
perturbation ("Monte-Carlo move", Algorithm 1 line 27) and the
Metropolis-Hastings acceptance test (lines 29-32).
"""

from __future__ import annotations

import math

import numpy as np


def propose_perturbation(
    rng: np.random.Generator, x: np.ndarray, step_size: float = 1.0
) -> np.ndarray:
    """Draw the random perturbation ``delta`` of Algorithm 1, line 27.

    The perturbation is Gaussian with a scale proportional to
    ``step_size * (1 + |x|)`` per coordinate: the relative component lets the
    chain explore the wide dynamic ranges floating-point inputs live on, while
    the absolute component keeps the chain moving near zero.
    """
    x = np.atleast_1d(np.asarray(x, dtype=float))
    base = np.where(np.isfinite(x), x, 0.0)
    scale = step_size * (1.0 + np.abs(base))
    with np.errstate(over="ignore", invalid="ignore"):
        return base + rng.normal(size=x.shape) * scale


def metropolis_accept(
    rng: np.random.Generator, f_current: float, f_proposed: float, temperature: float = 1.0
) -> bool:
    """Metropolis-Hastings acceptance test (Algorithm 1, lines 29-32).

    A strictly better proposal is always accepted; a worse one is accepted
    with probability ``exp((f_current - f_proposed) / T)``.
    """
    if math.isnan(f_proposed):
        return False
    if f_proposed < f_current:
        return True
    if temperature <= 0.0:
        return False
    gap = f_current - f_proposed
    try:
        threshold = math.exp(gap / temperature)
    except OverflowError:  # pragma: no cover - gap <= 0 so exp never overflows
        threshold = 0.0
    return bool(rng.uniform(0.0, 1.0) < threshold)
