"""One-dimensional minimization used by the direction-set methods.

The representing functions produced by CoverMe are piecewise combinations of
constants and quadratics whose interesting features may live at very different
scales (a threshold on the exponent of a double can require travelling from
``1.0`` to ``1e300``).  The line search therefore uses an aggressive geometric
bracket expansion with no artificial bound on the travelled distance, followed
by golden-section refinement inside the bracket.
"""

from __future__ import annotations

import math
from typing import Callable

_GOLDEN = (math.sqrt(5.0) - 1.0) / 2.0  # ~0.618


def _safe(value: float) -> float:
    """Map NaN (and -inf, which cannot occur for valid objectives) to +inf."""
    if math.isnan(value):
        return math.inf
    return value


def bracket_minimum(
    func: Callable[[float], float],
    t0: float = 0.0,
    step: float = 1.0,
    grow: float = 3.0,
    max_expansions: int = 700,
) -> tuple[float, float, float, int]:
    """Find ``a < b < c`` with ``f(b) <= f(a)`` and ``f(b) <= f(c)``.

    Starts at ``t0`` and expands geometrically in the descending direction.
    Returns ``(a, b, c, nfev)``.  If the function keeps decreasing until the
    positions overflow, the last finite triple is returned -- the caller still
    refines within it, and overflowing to ``inf`` is itself a valid probe
    (it is how branches guarded by the infinity bit-pattern get covered).
    """
    nfev = 0

    def f(t: float) -> float:
        nonlocal nfev
        nfev += 1
        return _safe(func(t))

    fa = f(t0)
    t_right = t0 + step
    fr = f(t_right)
    t_left = t0 - step
    fl = f(t_left)

    if fa <= fr and fa <= fl:
        return t_left, t0, t_right, nfev

    if fr < fl:
        direction = 1.0
        prev, cur = t0, t_right
        f_prev, f_cur = fa, fr
    else:
        direction = -1.0
        prev, cur = t0, t_left
        f_prev, f_cur = fa, fl

    width = step
    for _ in range(max_expansions):
        width *= grow
        nxt = cur + direction * width
        if math.isnan(nxt):
            break
        f_nxt = f(nxt)
        if f_nxt >= f_cur:
            lo, hi = sorted((prev, nxt))
            return lo, cur, hi, nfev
        prev, cur = cur, nxt
        f_prev, f_cur = f_cur, f_nxt
        if math.isinf(cur):
            break
    lo, hi = sorted((prev, cur))
    mid = cur if f_cur <= f_prev else prev
    return lo, mid, hi, nfev


def golden_section(
    func: Callable[[float], float],
    low: float,
    high: float,
    tol: float = 1e-12,
    max_iterations: int = 120,
) -> tuple[float, float, int]:
    """Golden-section search on ``[low, high]``; returns ``(t*, f(t*), nfev)``."""
    nfev = 0

    def f(t: float) -> float:
        nonlocal nfev
        nfev += 1
        return _safe(func(t))

    a, b = float(low), float(high)
    if not math.isfinite(a):
        a = math.copysign(1.0e308, a)
    if not math.isfinite(b):
        b = math.copysign(1.0e308, b)
    if a > b:
        a, b = b, a
    c = b - _GOLDEN * (b - a)
    d = a + _GOLDEN * (b - a)
    fc, fd = f(c), f(d)
    best_t, best_f = (c, fc) if fc <= fd else (d, fd)
    for _ in range(max_iterations):
        if best_f == 0.0:
            break
        if abs(b - a) <= tol * (abs(a) + abs(b) + 1e-300):
            break
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - _GOLDEN * (b - a)
            fc = f(c)
        else:
            a, c, fc = c, d, fd
            d = a + _GOLDEN * (b - a)
            fd = f(d)
        if fc < best_f:
            best_t, best_f = c, fc
        if fd < best_f:
            best_t, best_f = d, fd
    return best_t, best_f, nfev


def minimize_scalar(
    func: Callable[[float], float],
    t0: float = 0.0,
    step: float = 1.0,
    tol: float = 1e-12,
    max_iterations: int = 120,
) -> tuple[float, float, int]:
    """Bracket then refine a 1-D minimum; returns ``(t*, f(t*), nfev)``.

    The endpoints of the bracket are also candidates: when the minimum sits at
    an overflowed position (``inf``), that position wins.
    """
    low, mid, high, nfev_bracket = bracket_minimum(func, t0=t0, step=step)
    candidates = [(low, _safe(func(low))), (mid, _safe(func(mid))), (high, _safe(func(high)))]
    nfev = nfev_bracket + 3
    best_t, best_f = min(candidates, key=lambda item: item[1])
    if best_f > 0.0 and math.isfinite(low) and math.isfinite(high) and low < high:
        t_ref, f_ref, nfev_ref = golden_section(
            func, low, high, tol=tol, max_iterations=max_iterations
        )
        nfev += nfev_ref
        if f_ref < best_f:
            best_t, best_f = t_ref, f_ref
    return best_t, best_f, nfev
