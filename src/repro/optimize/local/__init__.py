"""Local optimization algorithms (the ``LM`` of Algorithm 1).

All minimizers share the same signature::

    minimize(func, x0, max_iterations=..., **options) -> OptimizeResult

and are registered by name so the CoverMe configuration can select them
(``local_minimizer="powell"`` reproduces the paper's setting).
"""

from __future__ import annotations

from typing import Callable

from repro.optimize.local.compass import compass_search
from repro.optimize.local.line_search import bracket_minimum, golden_section, minimize_scalar
from repro.optimize.local.nelder_mead import nelder_mead
from repro.optimize.local.powell import powell

_REGISTRY: dict[str, Callable] = {
    "powell": powell,
    "nelder-mead": nelder_mead,
    "nelder_mead": nelder_mead,
    "compass": compass_search,
}


def get_local_minimizer(name: str) -> Callable:
    """Look up a local minimizer by name (case-insensitive)."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(set(_REGISTRY)))
        raise ValueError(f"unknown local minimizer {name!r}; known: {known}") from None


__all__ = [
    "bracket_minimum",
    "compass_search",
    "get_local_minimizer",
    "golden_section",
    "minimize_scalar",
    "nelder_mead",
    "powell",
]
