"""Local optimization algorithms (the ``LM`` of Algorithm 1).

All minimizers share the same signature::

    minimize(func, x0, max_iterations=..., **options) -> OptimizeResult

and are registered by name so the CoverMe configuration can select them
(``local_minimizer="powell"`` reproduces the paper's setting).
"""

from __future__ import annotations

from typing import Callable

from repro.optimize._registry import Registry
from repro.optimize.local.compass import compass_search
from repro.optimize.local.line_search import bracket_minimum, golden_section, minimize_scalar
from repro.optimize.local.nelder_mead import nelder_mead
from repro.optimize.local.powell import powell

_REGISTRY = Registry(
    "local minimizer",
    {
        "powell": powell,
        "nelder-mead": nelder_mead,
        "nelder_mead": nelder_mead,
        "compass": compass_search,
    },
)


def register_local_minimizer(name: str, func: Callable | None = None, *, replace: bool = False):
    """Register a local minimizer (the ``LM`` of Algorithm 1) under ``name``.

    Usable as a decorator or a plain call, mirroring
    :func:`repro.optimize.registry.register_backend`.
    """
    return _REGISTRY.register(name, func, replace=replace)


def get_local_minimizer(name: str) -> Callable:
    """Look up a local minimizer by name (case-insensitive)."""
    return _REGISTRY.get(name)


def available_local_minimizers() -> tuple[str, ...]:
    """Names of every registered local minimizer, sorted."""
    return _REGISTRY.available()


def unregister_local_minimizer(name: str) -> None:
    """Remove a local minimizer from the registry (primarily for tests)."""
    _REGISTRY.unregister(name)


__all__ = [
    "available_local_minimizers",
    "bracket_minimum",
    "compass_search",
    "get_local_minimizer",
    "golden_section",
    "minimize_scalar",
    "nelder_mead",
    "powell",
    "register_local_minimizer",
    "unregister_local_minimizer",
]
