"""Compass (coordinate pattern) search: a simple derivative-free minimizer.

Included as a third local-minimizer backend for the ablation study: it probes
``x +/- step * e_i`` for every coordinate, moves to the best improvement, and
halves the step when no probe improves.  Steps also *grow* after successful
moves so the search can cover the large dynamic ranges typical of
floating-point branch conditions.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.optimize.result import OptimizeResult


def compass_search(
    func: Callable,
    x0,
    max_iterations: int = 400,
    initial_step: float = 1.0,
    min_step: float = 1e-12,
    grow: float = 2.0,
    shrink: float = 0.5,
    **_options,
) -> OptimizeResult:
    """Minimize ``func`` with expanding/contracting compass search."""
    x = np.atleast_1d(np.asarray(x0, dtype=float)).copy()
    n = x.size
    step = float(initial_step)
    nfev = 0

    def evaluate(point: np.ndarray) -> float:
        nonlocal nfev
        nfev += 1
        value = func(point)
        return math.inf if math.isnan(value) else float(value)

    f_current = evaluate(x)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        if f_current == 0.0 or step < min_step:
            break
        best_candidate = None
        best_value = f_current
        for i in range(n):
            for sign in (+1.0, -1.0):
                candidate = x.copy()
                candidate[i] += sign * step
                value = evaluate(candidate)
                if value < best_value:
                    best_value = value
                    best_candidate = candidate
        if best_candidate is None:
            step *= shrink
        else:
            x = best_candidate
            f_current = best_value
            step *= grow

    return OptimizeResult(
        x=x,
        fun=f_current,
        nfev=nfev,
        nit=iterations,
        success=True,
        message="compass search finished",
    )
