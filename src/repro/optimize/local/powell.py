"""Powell's conjugate-direction method (the paper's local minimizer ``LM``).

Powell's method minimizes a function of ``n`` variables without derivatives
by repeatedly performing one-dimensional minimizations along a set of
directions, replacing one direction per sweep by the overall displacement
(Press et al., *Numerical Recipes*).  It is the ``LM = "powell"`` setting the
paper uses inside basin-hopping.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.optimize.local.line_search import minimize_scalar
from repro.optimize.result import OptimizeResult


def powell(
    func: Callable,
    x0,
    max_iterations: int = 40,
    tol: float = 1e-12,
    step: float = 1.0,
    **_options,
) -> OptimizeResult:
    """Minimize ``func`` starting from ``x0`` with Powell's method.

    Args:
        func: Objective ``R^n -> R`` (receives a 1-D numpy array).
        x0: Starting point.
        max_iterations: Maximum number of direction-set sweeps.
        tol: Relative decrease threshold used as the convergence test.
        step: Initial step used by the 1-D line searches.

    Returns:
        An :class:`~repro.optimize.result.OptimizeResult`.
    """
    x = np.atleast_1d(np.asarray(x0, dtype=float)).copy()
    n = x.size
    directions = [np.eye(n)[i] for i in range(n)]
    nfev = 0

    def evaluate(point: np.ndarray) -> float:
        nonlocal nfev
        nfev += 1
        value = func(point)
        return math.inf if math.isnan(value) else float(value)

    f_current = evaluate(x)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        if f_current == 0.0:
            break
        f_start = f_current
        x_start = x.copy()
        largest_decrease = 0.0
        largest_index = 0
        for index, direction in enumerate(directions):
            f_before = f_current

            def along(t: float, d=direction) -> float:
                return evaluate(x + t * d)

            t_best, f_best, used = minimize_scalar(along, t0=0.0, step=step)
            nfev += 0  # evaluations already counted through ``evaluate``
            if f_best < f_current:
                x = x + t_best * direction
                f_current = f_best
            decrease = f_before - f_current
            if decrease > largest_decrease:
                largest_decrease = decrease
                largest_index = index
        if f_current == 0.0:
            break
        # Direction replacement step of Powell's method.
        if not (np.all(np.isfinite(x)) and np.all(np.isfinite(x_start))):
            break
        displacement = x - x_start
        if np.any(displacement != 0.0) and np.all(np.isfinite(displacement)):
            with np.errstate(over="ignore", invalid="ignore"):
                extrapolated = x + displacement
                norm = float(np.sqrt(np.sum(np.square(displacement / max(np.max(np.abs(displacement)), 1.0)))))
                norm *= float(np.max(np.abs(displacement)))
            if np.all(np.isfinite(extrapolated)):
                f_extrapolated = evaluate(extrapolated)
                if f_extrapolated < f_start:
                    if norm > 0.0 and math.isfinite(norm):
                        directions[largest_index] = displacement / norm
        if f_start - f_current <= tol * (abs(f_start) + tol):
            break

    return OptimizeResult(
        x=x,
        fun=f_current,
        nfev=nfev,
        nit=iterations,
        success=True,
        message="powell converged" if f_current == 0.0 else "powell finished",
    )
