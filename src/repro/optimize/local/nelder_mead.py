"""Nelder-Mead simplex minimization (alternative local minimizer)."""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.optimize.result import OptimizeResult


def nelder_mead(
    func: Callable,
    x0,
    max_iterations: int = 200,
    tol: float = 1e-12,
    initial_size: float = 1.0,
    **_options,
) -> OptimizeResult:
    """Minimize ``func`` with the Nelder-Mead simplex algorithm.

    Uses the standard reflection/expansion/contraction/shrink coefficients
    (1, 2, 0.5, 0.5).  NaN objective values are treated as ``+inf``.
    """
    x0 = np.atleast_1d(np.asarray(x0, dtype=float))
    n = x0.size
    nfev = 0

    def evaluate(point: np.ndarray) -> float:
        nonlocal nfev
        nfev += 1
        value = func(point)
        return math.inf if math.isnan(value) else float(value)

    # Initial simplex: x0 plus a perturbation along each axis.
    simplex = [x0.copy()]
    for i in range(n):
        vertex = x0.copy()
        vertex[i] += initial_size if vertex[i] == 0.0 else 0.25 * abs(vertex[i]) + initial_size
        simplex.append(vertex)
    values = [evaluate(v) for v in simplex]

    iterations = 0
    for iterations in range(1, max_iterations + 1):
        order = np.argsort(values)
        simplex = [simplex[i] for i in order]
        values = [values[i] for i in order]
        best, worst = values[0], values[-1]
        if best == 0.0:
            break
        if abs(worst - best) <= tol * (abs(best) + tol):
            break
        centroid = np.mean(simplex[:-1], axis=0)
        reflected = centroid + (centroid - simplex[-1])
        f_reflected = evaluate(reflected)
        if f_reflected < values[0]:
            expanded = centroid + 2.0 * (centroid - simplex[-1])
            f_expanded = evaluate(expanded)
            if f_expanded < f_reflected:
                simplex[-1], values[-1] = expanded, f_expanded
            else:
                simplex[-1], values[-1] = reflected, f_reflected
        elif f_reflected < values[-2]:
            simplex[-1], values[-1] = reflected, f_reflected
        else:
            contracted = centroid + 0.5 * (simplex[-1] - centroid)
            f_contracted = evaluate(contracted)
            if f_contracted < values[-1]:
                simplex[-1], values[-1] = contracted, f_contracted
            else:
                # Shrink towards the best vertex.
                for i in range(1, len(simplex)):
                    simplex[i] = simplex[0] + 0.5 * (simplex[i] - simplex[0])
                    values[i] = evaluate(simplex[i])

    order = np.argsort(values)
    best_x = simplex[order[0]]
    best_f = values[order[0]]
    return OptimizeResult(
        x=best_x,
        fun=best_f,
        nfev=nfev,
        nit=iterations,
        success=True,
        message="nelder-mead finished",
    )
