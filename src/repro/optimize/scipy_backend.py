"""Adapter around SciPy's Basinhopping (the paper's actual backend, Sect. 5.2).

CoverMe's theoretical guarantee lets any unconstrained-programming algorithm
be used as a black box; the paper uses ``scipy.optimize.basinhopping`` with
Powell as the local minimizer.  This adapter reproduces that configuration
behind the same interface as our built-in implementation so the two can be
swapped with ``CoverMeConfig(backend="scipy")``.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np
from scipy import optimize as _scipy_optimize

from repro.optimize.memo import BitPatternMemo
from repro.optimize.result import OptimizeResult


def scipy_basinhopping(
    func: Callable,
    x0,
    n_iter: int = 5,
    local_minimizer: str = "Powell",
    step_size: float = 1.0,
    temperature: float = 1.0,
    rng: Optional[np.random.Generator] = None,
    callback: Optional[Callable[[np.ndarray, float, bool], bool]] = None,
    local_options: Optional[dict] = None,
    memoize: bool = False,
    proposal_population: int = 1,
) -> OptimizeResult:
    """Run ``scipy.optimize.basinhopping`` with the paper's configuration.

    ``proposal_population`` is accepted for interface parity with the
    built-in backend but deliberately ignored: SciPy's basinhopping owns its
    own proposal loop, so candidate screening cannot be injected without
    changing the paper's published configuration.
    """
    if proposal_population < 1:
        raise ValueError("proposal_population must be >= 1")
    x0 = np.atleast_1d(np.asarray(x0, dtype=float))
    if memoize:
        func = BitPatternMemo(func, arity=x0.shape[0])
    seed = None
    if rng is not None:
        seed = int(rng.integers(0, 2**31 - 1))

    method = local_minimizer
    if method.lower() in ("powell",):
        method = "Powell"
    elif method.lower() in ("nelder-mead", "nelder_mead"):
        method = "Nelder-Mead"

    def wrapped(x):
        value = func(np.atleast_1d(x))
        return float(value)

    def scipy_callback(x, f, accept):
        if callback is None:
            return False
        return bool(callback(np.atleast_1d(np.asarray(x, dtype=float)), float(f), bool(accept)))

    minimizer_kwargs = {"method": method}
    if local_options:
        options = dict(local_options)
        # Translate our local-minimizer option names into SciPy's.
        if "max_iterations" in options:
            options["maxiter"] = options.pop("max_iterations")
        minimizer_kwargs["options"] = options

    result = _scipy_optimize.basinhopping(
        wrapped,
        x0,
        niter=n_iter,
        T=temperature,
        stepsize=step_size,
        minimizer_kwargs=minimizer_kwargs,
        callback=scipy_callback,
        seed=seed,
    )
    return OptimizeResult(
        x=np.atleast_1d(np.asarray(result.x, dtype=float)),
        fun=float(result.fun),
        nfev=int(getattr(result, "nfev", 0)),
        nit=int(getattr(result, "nit", n_iter)),
        success=True,
        message=str(getattr(result, "message", "")),
    )
