"""Registries for the pluggable unconstrained-programming backends.

The paper's theoretical guarantee (Thm. 4.3) holds for *any* algorithm that
searches ``R^n`` for minimum points of the representing function, which the
extended version of the paper frames as an interchangeable Step-3 backend.
This module makes that interchangeability first-class: global (basin-hopping
style) backends register themselves by name via :func:`register_backend`, the
driver looks them up via :func:`get_backend`, and the configuration layer
validates user-supplied names against :func:`available_backends`.

A registered backend is a callable with the signature of
:func:`repro.optimize.basinhopping.basinhopping`::

    backend(func, x0, n_iter=..., local_minimizer=..., step_size=...,
            temperature=..., rng=..., callback=..., local_options=...)
        -> OptimizeResult

The local-minimizer registry of :mod:`repro.optimize.local` is re-exported
here so that one namespace validates every optimizer name the configuration
accepts (the ``LM`` names and the global backend names).

Registries are per-process state.  Engine runs that use *process* workers
started via spawn or forkserver (Windows, macOS, or any multithreaded parent
on POSIX) re-import modules in each worker, so a custom backend must be
registered at import time of a module the workers also import -- a backend
registered only at script run time is visible to fork-started workers but
not to spawned ones.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.optimize._registry import Registry
from repro.optimize.basinhopping import basinhopping
from repro.optimize.local import (
    available_local_minimizers,
    get_local_minimizer,
    register_local_minimizer,
    unregister_local_minimizer,
)
from repro.optimize.scipy_backend import scipy_basinhopping

_BACKENDS = Registry(
    "backend",
    {
        "builtin": basinhopping,
        "scipy": scipy_basinhopping,
    },
)


def register_backend(name: str, func: Optional[Callable] = None, *, replace: bool = False):
    """Register a global optimization backend under ``name``.

    Usable as a decorator (``@register_backend("mine")``) or a plain call
    (``register_backend("mine", my_backend)``).  Re-registering an existing
    name raises unless ``replace=True`` so typos cannot silently shadow the
    built-in backends.
    """
    return _BACKENDS.register(name, func, replace=replace)


def get_backend(name: str) -> Callable:
    """Look up a registered backend by name (case-insensitive)."""
    return _BACKENDS.get(name)


def available_backends() -> tuple[str, ...]:
    """Names of every registered backend, sorted."""
    return _BACKENDS.available()


def unregister_backend(name: str) -> None:
    """Remove a backend from the registry (primarily for tests)."""
    _BACKENDS.unregister(name)

__all__ = [
    "available_backends",
    "available_local_minimizers",
    "get_backend",
    "get_local_minimizer",
    "register_backend",
    "register_local_minimizer",
    "unregister_backend",
    "unregister_local_minimizer",
]
