"""Bit-pattern memoization of objective evaluations.

Basin hopping re-visits points: the accept/reject bookkeeping, restarted line
searches and the final re-evaluation of the best minimum all query the
objective at doubles it has already been evaluated at.  Because the
representing function is deterministic for a frozen saturation snapshot,
those repeats can be served from a cache keyed by the *bit patterns* of the
input doubles (``struct.pack``), which -- unlike keying by value -- is exact:
``-0.0`` and ``0.0`` stay distinct and NaNs are cacheable.

The memo is transparent to optimizers: wrapped and unwrapped objectives
return bit-identical values, so seeded search trajectories are unchanged;
only the number of true program executions drops.

Memory is bounded: the cache holds at most ``max_entries`` distinct points
and evicts in insertion (FIFO) order once full, so arbitrarily long
multi-start runs hold O(``max_entries``) memory per memo instead of growing
with the number of distinct points visited.  ``hits``/``misses``/
``evictions`` counters (see :meth:`BitPatternMemo.stats`) expose the cache's
behavior to diagnostics and benchmarks.
"""

from __future__ import annotations

import struct
from typing import Callable

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is an optional dependency
    _np = None

#: Default bound on distinct cached points per memo (one memo lives for a
#: single basin-hopping launch, so this is ample and keeps memory O(1)).
DEFAULT_MAX_ENTRIES = 65536


class BitPatternMemo:
    """Memoizing wrapper around an objective ``R^arity -> R``.

    Args:
        func: The objective to wrap.  Must be deterministic for the
            lifetime of the memo (true for the representing function within
            one start, whose saturation snapshot is frozen).
        arity: Number of input doubles.
        max_entries: Cache bound; when full, the oldest entry is evicted for
            each new point (FIFO), so the memo's memory stays O(1) while hot
            repeats -- which cluster in time during a line search -- keep
            hitting.
    """

    __slots__ = (
        "func",
        "arity",
        "max_entries",
        "hits",
        "misses",
        "evictions",
        "_cache",
        "_pack",
    )

    def __init__(self, func: Callable, arity: int, max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.func = func
        self.arity = arity
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._cache: dict[bytes, float] = {}
        self._pack = struct.Struct(f"={arity}d").pack

    def __call__(self, x) -> float:
        try:
            key = self._pack(*x)
        except (TypeError, struct.error):
            # Arity mismatch or non-numeric input: let the wrapped function
            # produce its own (possibly raising) behavior, uncached.
            return self.func(x)
        cache = self._cache
        value = cache.get(key)
        if value is not None:
            self.hits += 1
            return value
        value = self.func(x)
        self.misses += 1
        if len(cache) >= self.max_entries:
            # FIFO bound: dicts iterate in insertion order, so the first key
            # is the oldest point.
            del cache[next(iter(cache))]
            self.evictions += 1
        cache[key] = value
        return value

    # -- batch APIs -----------------------------------------------------------------
    #
    # The engine's batched tier submits whole (N, arity) float64 arrays.  For
    # a C-contiguous float64 row, ``row.tobytes()`` is byte-for-byte the same
    # key as ``struct.pack(f"={arity}d", *row)``, so batch and scalar lookups
    # share one cache without N struct.pack calls.

    def seed(self, x, value) -> None:
        """Insert a known value for ``x`` without calling the objective.

        Used by chunk priming: the engine computes a whole batch of first
        evaluations with one kernel call and plants them here so each
        start's optimizer opens on a cache hit.  Counts neither a hit nor a
        miss (the caller accounts for the batched execution itself).
        """
        try:
            key = self._pack(*x)
        except (TypeError, struct.error):
            return
        cache = self._cache
        if key not in cache and len(cache) >= self.max_entries:
            del cache[next(iter(cache))]
            self.evictions += 1
        cache[key] = float(value)

    def row_keys(self, X) -> list[bytes]:
        """Bit-pattern keys for every row of an ``(N, arity)`` float64 array.

        The scalar path keys by ``struct.pack(f"={arity}d", *x)``; for the
        keys to coincide, the batch bytes must come from a C-contiguous
        float64 layout.  Caller-provided arrays are normalized through
        ``np.ascontiguousarray(..., dtype=float64)`` first, so transposed,
        sliced or otherwise strided views (and non-float64 dtypes) produce
        the same keys as their scalar counterparts instead of silently
        mis-keying the cache.
        """
        width = 8 * self.arity
        if _np is not None and isinstance(X, _np.ndarray):
            X = _np.ascontiguousarray(X, dtype=_np.float64)
        raw = memoryview(X.tobytes() if hasattr(X, "tobytes") else bytes(X))
        return [bytes(raw[i : i + width]) for i in range(0, len(raw), width)]

    def get_many(self, X) -> tuple[list, list[int]]:
        """Probe the cache for every row of ``X``.

        Returns ``(values, miss_indices)`` where ``values[i]`` is the cached
        value for row ``i`` or ``None``, and ``miss_indices`` lists the rows
        that must be evaluated.  Counts one hit per served row.
        """
        cache = self._cache
        values: list = []
        misses: list[int] = []
        for i, key in enumerate(self.row_keys(X)):
            value = cache.get(key)
            if value is None:
                misses.append(i)
            else:
                self.hits += 1
            values.append(value)
        return values, misses

    def put_many(self, X, indices, results) -> None:
        """Insert ``results[j]`` for row ``indices[j]`` of ``X`` (FIFO-bounded)."""
        cache = self._cache
        keys = self.row_keys(X)
        for j, i in enumerate(indices):
            self.misses += 1
            if len(cache) >= self.max_entries:
                del cache[next(iter(cache))]
                self.evictions += 1
            cache[keys[i]] = float(results[j])

    def evaluate_batch(self, X):
        """Batched objective: served rows come from the cache, the rest from
        one ``func.evaluate_batch`` call (falling back to per-row ``func``
        calls when the wrapped objective has no batch path)."""
        values, miss_indices = self.get_many(X)
        if miss_indices:
            batch = getattr(self.func, "evaluate_batch", None)
            if batch is not None:
                fresh = batch(X[miss_indices])
            else:
                fresh = [self.func(X[i]) for i in miss_indices]
            self.put_many(X, miss_indices, fresh)
            for j, i in enumerate(miss_indices):
                values[i] = float(fresh[j])
        return values

    def stats(self) -> dict[str, int]:
        """Hit/miss/evict counters plus the current and maximum size."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._cache),
            "max_entries": self.max_entries,
        }

    def clear(self) -> None:
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)
