"""Bit-pattern memoization of objective evaluations.

Basin hopping re-visits points: the accept/reject bookkeeping, restarted line
searches and the final re-evaluation of the best minimum all query the
objective at doubles it has already been evaluated at.  Because the
representing function is deterministic for a frozen saturation snapshot,
those repeats can be served from a cache keyed by the *bit patterns* of the
input doubles (``struct.pack``), which -- unlike keying by value -- is exact:
``-0.0`` and ``0.0`` stay distinct and NaNs are cacheable.

The memo is transparent to optimizers: wrapped and unwrapped objectives
return bit-identical values, so seeded search trajectories are unchanged;
only the number of true program executions drops.

Memory is bounded: the cache holds at most ``max_entries`` distinct points
and evicts in insertion (FIFO) order once full, so arbitrarily long
multi-start runs hold O(``max_entries``) memory per memo instead of growing
with the number of distinct points visited.  ``hits``/``misses``/
``evictions`` counters (see :meth:`BitPatternMemo.stats`) expose the cache's
behavior to diagnostics and benchmarks.
"""

from __future__ import annotations

import struct
from typing import Callable

#: Default bound on distinct cached points per memo (one memo lives for a
#: single basin-hopping launch, so this is ample and keeps memory O(1)).
DEFAULT_MAX_ENTRIES = 65536


class BitPatternMemo:
    """Memoizing wrapper around an objective ``R^arity -> R``.

    Args:
        func: The objective to wrap.  Must be deterministic for the
            lifetime of the memo (true for the representing function within
            one start, whose saturation snapshot is frozen).
        arity: Number of input doubles.
        max_entries: Cache bound; when full, the oldest entry is evicted for
            each new point (FIFO), so the memo's memory stays O(1) while hot
            repeats -- which cluster in time during a line search -- keep
            hitting.
    """

    __slots__ = (
        "func",
        "arity",
        "max_entries",
        "hits",
        "misses",
        "evictions",
        "_cache",
        "_pack",
    )

    def __init__(self, func: Callable, arity: int, max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.func = func
        self.arity = arity
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._cache: dict[bytes, float] = {}
        self._pack = struct.Struct(f"={arity}d").pack

    def __call__(self, x) -> float:
        try:
            key = self._pack(*x)
        except (TypeError, struct.error):
            # Arity mismatch or non-numeric input: let the wrapped function
            # produce its own (possibly raising) behavior, uncached.
            return self.func(x)
        cache = self._cache
        value = cache.get(key)
        if value is not None:
            self.hits += 1
            return value
        value = self.func(x)
        self.misses += 1
        if len(cache) >= self.max_entries:
            # FIFO bound: dicts iterate in insertion order, so the first key
            # is the oldest point.
            del cache[next(iter(cache))]
            self.evictions += 1
        cache[key] = value
        return value

    def stats(self) -> dict[str, int]:
        """Hit/miss/evict counters plus the current and maximum size."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._cache),
            "max_entries": self.max_entries,
        }

    def clear(self) -> None:
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)
