"""Common result record returned by every optimization backend."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class OptimizeResult:
    """Outcome of one minimization run.

    Attributes:
        x: The minimum point found (always a 1-D numpy array).
        fun: Objective value at ``x``.
        nfev: Number of objective evaluations performed.
        nit: Number of iterations of the outer loop.
        success: Whether the backend considers the run successful.
        message: Human-readable status.
    """

    x: np.ndarray
    fun: float
    nfev: int = 0
    nit: int = 0
    success: bool = True
    message: str = ""

    def __post_init__(self) -> None:
        self.x = np.atleast_1d(np.asarray(self.x, dtype=float))
        self.fun = float(self.fun)

    def better_than(self, other: "OptimizeResult") -> bool:
        """Strictly smaller objective value than ``other``."""
        return self.fun < other.fun


def evaluate_counted(func):
    """Wrap ``func`` so evaluations are counted; returns ``(wrapped, counter)``.

    The counter is a single-element list so the closure can mutate it.
    """
    counter = [0]

    def wrapped(x):
        counter[0] += 1
        return func(x)

    return wrapped, counter
