"""MCMC basin-hopping: the global optimizer of Algorithm 1 (lines 24-34).

The procedure first descends to a local minimum ``x_L`` with the configured
local minimizer ``LM``, then alternates Monte-Carlo moves (a random
perturbation followed by local minimization) with Metropolis acceptance.  The
best point ever visited is returned.  A ``callback`` may stop the loop early;
CoverMe uses it to terminate as soon as a zero of the representing function is
found (Sect. 5.2).
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from repro.optimize.local import get_local_minimizer
from repro.optimize.mcmc import metropolis_accept, propose_perturbation
from repro.optimize.memo import BitPatternMemo
from repro.optimize.result import OptimizeResult


def basinhopping(
    func: Callable,
    x0,
    n_iter: int = 5,
    local_minimizer: str | Callable = "powell",
    step_size: float = 1.0,
    temperature: float = 1.0,
    rng: Optional[np.random.Generator] = None,
    callback: Optional[Callable[[np.ndarray, float, bool], bool]] = None,
    local_options: Optional[dict] = None,
    memoize: bool = False,
    proposal_population: int = 1,
) -> OptimizeResult:
    """Minimize ``func`` with MCMC basin-hopping (Algorithm 1, lines 24-34).

    Args:
        func: Objective function ``R^n -> R``.
        x0: Starting point.
        n_iter: Number of Monte-Carlo iterations (the paper uses 5).
        local_minimizer: Name of a registered local minimizer or a callable
            with the same interface.
        step_size: Scale of the Monte-Carlo perturbation.
        temperature: Metropolis annealing temperature ``T`` (the paper uses 1).
        rng: Source of randomness (a fresh default generator when omitted).
        callback: Called after every iteration with ``(x, f, accepted)``;
            returning ``True`` stops the loop (the paper's ``call_back``).
        local_options: Extra keyword options forwarded to the local minimizer.
        memoize: Serve repeated evaluations at bit-identical inputs from a
            :class:`~repro.optimize.memo.BitPatternMemo` instead of
            re-executing ``func``.  Values (and hence the seeded search
            trajectory) are unchanged; only sound when ``func`` is
            deterministic for the duration of this call.
        proposal_population: Perturbation candidates screened per Monte-Carlo
            move.  At the default 1 the hop uses the single perturbation
            directly and the trajectory is exactly the historical one.  For
            ``K > 1`` the hop draws ``K`` perturbations (sequential ``rng``
            draws), evaluates them in one ``func.evaluate_batch`` call when
            the objective offers it (per-candidate calls otherwise), and
            descends from the best-scoring candidate (first wins on ties).

    Returns:
        The best :class:`~repro.optimize.result.OptimizeResult` seen.
    """
    if proposal_population < 1:
        raise ValueError("proposal_population must be >= 1")
    rng = rng if rng is not None else np.random.default_rng()
    minimize = (
        local_minimizer
        if callable(local_minimizer)
        else get_local_minimizer(local_minimizer)
    )
    options = dict(local_options or {})

    x0 = np.atleast_1d(np.asarray(x0, dtype=float))
    if memoize:
        func = BitPatternMemo(func, arity=x0.shape[0])
    nfev = 0

    # Line 25: descend to the first local minimum.
    local = minimize(func, x0, **options)
    nfev += local.nfev
    x_current = local.x
    f_current = local.fun
    best_x, best_f = x_current.copy(), f_current

    stopped_early = False
    iterations = 0
    if callback is not None and callback(best_x, best_f, True):
        stopped_early = True

    while not stopped_early and iterations < n_iter:
        iterations += 1
        # Lines 27-28: Monte-Carlo move followed by local minimization.
        if proposal_population == 1:
            perturbed = propose_perturbation(rng, x_current, step_size=step_size)
        else:
            # Vectorized-proposal path: screen a whole perturbation
            # population with one batched objective call, then descend from
            # the winner.  With a memoized objective the screening values
            # seed the cache, so the local minimizer's first evaluation at
            # the winner is a hit.
            candidates = np.ascontiguousarray(
                [
                    propose_perturbation(rng, x_current, step_size=step_size)
                    for _ in range(proposal_population)
                ],
                dtype=np.float64,
            )
            batch = getattr(func, "evaluate_batch", None)
            if batch is not None:
                scores = np.asarray(batch(candidates), dtype=np.float64)
            else:
                scores = np.array([func(c) for c in candidates], dtype=np.float64)
            nfev += proposal_population
            perturbed = candidates[int(np.argmin(scores))]
        proposal = minimize(func, perturbed, **options)
        nfev += proposal.nfev
        # Lines 29-33: Metropolis acceptance.
        accepted = metropolis_accept(rng, f_current, proposal.fun, temperature=temperature)
        if accepted:
            x_current, f_current = proposal.x, proposal.fun
        if proposal.fun < best_f or (proposal.fun == best_f and not math.isfinite(best_f)):
            best_x, best_f = proposal.x.copy(), proposal.fun
        if callback is not None and callback(proposal.x, proposal.fun, accepted):
            stopped_early = True

    return OptimizeResult(
        x=best_x,
        fun=best_f,
        nfev=nfev,
        nit=iterations,
        success=True,
        message="stopped by callback" if stopped_early else "completed all iterations",
    )
