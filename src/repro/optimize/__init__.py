"""Unconstrained-programming backends (Sect. 2 of the paper).

CoverMe treats the optimization backend as a black box: any algorithm that
searches ``R^n`` for minimum points of the representing function will do.
This package provides:

* local optimization: :mod:`repro.optimize.local` (Powell's method -- the
  paper's ``LM`` -- plus Nelder-Mead and compass search);
* global optimization: :func:`repro.optimize.basinhopping.basinhopping`, our
  implementation of the MCMC basin-hopping procedure of Algorithm 1
  (lines 24-34);
* :mod:`repro.optimize.scipy_backend`, an adapter around SciPy's
  ``basinhopping`` reproducing the paper's exact backend configuration.
"""

from repro.optimize.basinhopping import basinhopping
from repro.optimize.local import (
    available_local_minimizers,
    compass_search,
    get_local_minimizer,
    nelder_mead,
    powell,
    register_local_minimizer,
    unregister_local_minimizer,
)
from repro.optimize.mcmc import metropolis_accept, propose_perturbation
from repro.optimize.registry import (
    available_backends,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.optimize.result import OptimizeResult
from repro.optimize.scipy_backend import scipy_basinhopping

__all__ = [
    "OptimizeResult",
    "available_backends",
    "available_local_minimizers",
    "basinhopping",
    "compass_search",
    "get_backend",
    "get_local_minimizer",
    "metropolis_accept",
    "nelder_mead",
    "powell",
    "propose_perturbation",
    "register_backend",
    "register_local_minimizer",
    "scipy_basinhopping",
    "unregister_backend",
    "unregister_local_minimizer",
]
