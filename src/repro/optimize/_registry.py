"""Shared plumbing for the optimizer name registries.

Both the global-backend registry (:mod:`repro.optimize.registry`) and the
local-minimizer registry (:mod:`repro.optimize.local`) are case-insensitive
``name -> callable`` maps with the same rules: registration works as a
decorator or a plain call, re-registering an existing name raises unless
``replace=True``, and unknown-name lookups raise a ``ValueError`` listing
every known name.  This class is that shared behaviour, so fixes apply to
both registries at once.
"""

from __future__ import annotations

from typing import Callable, Optional


class Registry:
    """A case-insensitive registry of named callables.

    Args:
        kind: Human-readable noun used in error messages
            (e.g. ``"backend"``, ``"local minimizer"``).
        initial: Entries present from the start (the built-ins).
    """

    def __init__(self, kind: str, initial: Optional[dict[str, Callable]] = None):
        self.kind = kind
        self._entries: dict[str, Callable] = {}
        if initial:
            for name, func in initial.items():
                self.register(name, func)

    def register(self, name: str, func: Optional[Callable] = None, *, replace: bool = False):
        """Register ``func`` under ``name``; decorator when ``func`` is omitted."""
        key = name.lower()

        def _register(target: Callable) -> Callable:
            if not callable(target):
                raise TypeError(f"{self.kind} {name!r} must be callable, got {target!r}")
            if key in self._entries and not replace:
                raise ValueError(f"{self.kind} {name!r} is already registered")
            self._entries[key] = target
            return target

        if func is not None:
            return _register(func)
        return _register

    def get(self, name: str) -> Callable:
        """Look up a registered callable by name (case-insensitive)."""
        try:
            return self._entries[name.lower()]
        except KeyError:
            known = ", ".join(self.available())
            raise ValueError(f"unknown {self.kind} {name!r}; known: {known}") from None

    def available(self) -> tuple[str, ...]:
        """Every registered name, sorted."""
        return tuple(sorted(self._entries))

    def unregister(self, name: str) -> None:
        """Remove ``name`` if present (primarily for tests)."""
        self._entries.pop(name.lower(), None)
