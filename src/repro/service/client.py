"""Minimal stdlib HTTP client for the coverage daemon.

``ServiceClient`` mirrors the daemon's endpoints one method each; it is
what the CI smoke job and the HTTP tests use, and doubles as executable
documentation of the wire protocol.  Nothing here depends on the rest of
the service package, so scripts on machines without the repo's heavier
imports can lift it wholesale.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Iterator, Optional


class ClientError(RuntimeError):
    """A non-2xx daemon response (the status and decoded body attached)."""

    def __init__(self, status: int, payload: dict):
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class ServiceClient:
    def __init__(self, base_url: str, timeout: float = 30.0, token: Optional[str] = None):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.token = token

    # -- plumbing ----------------------------------------------------------

    def _headers(self, data: Optional[bytes]) -> dict:
        headers = {"Content-Type": "application/json"} if data else {}
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        return headers

    def _request(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        data = json.dumps(payload).encode("utf-8") if payload is not None else None
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers=self._headers(data),
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                body = {"error": exc.reason}
            raise ClientError(exc.code, body) from exc

    # -- endpoints ---------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def submit(
        self,
        case: str,
        tool: str = "CoverMe",
        profile: str = "smoke",
        overrides: Optional[dict] = None,
        measure_lines: bool = False,
    ) -> dict:
        body = {"case": case, "tool": tool, "profile": profile, "measure_lines": measure_lines}
        if overrides:
            body["overrides"] = overrides
        return self._request("POST", "/jobs", body)

    def job(self, fingerprint: str) -> dict:
        return self._request("GET", f"/jobs/{fingerprint}")

    def wait_for(self, fingerprint: str, timeout: float = 300.0, interval: float = 0.1) -> dict:
        """Poll until the job leaves queued/running; returns its final view.

        Raises :class:`TimeoutError` on expiry and :class:`ClientError` if
        the job failed server-side.
        """
        deadline = time.monotonic() + timeout
        while True:
            view = self.job(fingerprint)
            if view["state"] == "failed":
                raise ClientError(500, {"error": view.get("error"), "job": view})
            if view["state"] == "done":
                return view
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {fingerprint} still {view['state']} after {timeout}s")
            time.sleep(interval)

    def events(self, fingerprint: str, start: int = 0) -> Iterator[dict]:
        """Stream the job's NDJSON event log (blocks until the job ends)."""
        request = urllib.request.Request(
            f"{self.base_url}/jobs/{fingerprint}/events?from={start}",
            headers=self._headers(None),
        )
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))

    def shutdown(self) -> dict:
        return self._request("POST", "/shutdown")

    # -- distributed (lease protocol) --------------------------------------

    def register_worker(self, worker_id: str) -> dict:
        return self._request("POST", "/distributed/register", {"worker": worker_id})

    def acquire_lease(self, worker_id: str, resync: bool = False) -> dict:
        return self._request(
            "POST", "/distributed/lease", {"worker": worker_id, "resync": resync}
        )

    def lease_heartbeat(self, worker_id: str, lease_id: str) -> dict:
        return self._request(
            "POST", "/distributed/heartbeat", {"worker": worker_id, "lease": lease_id}
        )

    def submit_lease(self, body: dict) -> dict:
        return self._request("POST", "/distributed/result", body)

    def distributed_stats(self) -> dict:
        return self._request("GET", "/distributed/stats")
