"""The coverage service: admission, dedup, dispatch, and the result cache.

:class:`CoverageService` is the one front door for executing coverage jobs.
Every entry point -- ``repro run``, the experiment pipeline, the HTTP
daemon -- builds :class:`~repro.service.jobs.JobRequest`\\ s and submits
them here; nothing else in the repository calls
:func:`~repro.baselines.harness.run_tool` on a benchmark case anymore.

What one submission goes through, in order:

1. **Key building** -- the request plus its (possibly derived) budget
   becomes a :class:`~repro.store.JobKey`; its fingerprint is the job's
   identity everywhere below.
2. **In-flight coalescing** -- if a job with the same fingerprint is
   queued or running, the submission attaches to it: N concurrent
   identical submissions cost exactly one execution and one store write.
3. **Result cache** -- the shared :class:`~repro.store.RunStore` is
   consulted (unless ``resume=False``); a hit completes the job instantly
   with zero executions, whether the record was written seconds or weeks
   ago, by this process or another.
4. **Admission** -- the job enters the bounded queue (non-blocking
   submitters get :class:`~repro.service.queue.QueueFull`; the daemon maps
   that to HTTP 429) and is routed to a shard by fingerprint hash.
5. **Execution** -- the shard's warm worker runs the job (inline, thread,
   or via a persistent process pool), the *coordinating* process writes
   the store record (single-writer per service; the store's fcntl lock
   covers other OS processes), and all waiters observe the same outcome.

Because jobs are seeded and deterministic, none of this machinery can
change stored bytes: the bit-identity tests submit the same plan through
the pipeline, the service, and the daemon under shard counts {1, 2, 4}
and diff ``runs.jsonl`` records byte-for-byte.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.baselines.harness import Budget
from repro.core.report import ToolRunSummary
from repro.service.jobs import JobRequest, build_job_key, derive_budget, execute_job, execute_job_remote
from repro.service.queue import AdmissionQueue, QueueFull  # noqa: F401  (re-exported)
from repro.service.shards import ShardRouter
from repro.service.workers import WorkerPool
from repro.store import JobKey, RunStore, summary_from_dict

#: Job lifecycle states (also the wire values of the daemon's job objects).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

WORKER_MODES = ("inline", "thread", "process")


class ServiceClosed(RuntimeError):
    """Raised when submitting to (or waiting on) a closed service."""


@dataclass
class JobOutcome:
    """The resolved result of one job, as seen by a waiter."""

    fingerprint: str
    key: JobKey
    payload: dict
    cached: bool
    warnings: list[str] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)

    @property
    def summary(self) -> ToolRunSummary:
        return summary_from_dict(self.payload["summary"])

    @property
    def evaluations(self) -> Optional[int]:
        return self.payload.get("tool_evaluations")


class ServiceJob:
    """One admitted job: shared state between submitters, workers, waiters.

    All mutation goes through the instance lock; ``_done`` flips exactly
    once (to ``done`` or ``failed``).  Multiple submitters coalescing onto
    one ServiceJob all wait on the same event and read the same outcome.
    """

    def __init__(self, request: JobRequest, key: JobKey, budget: Budget, shard: int):
        self.request = request
        self.key = key
        self.budget = budget
        self.fingerprint = key.fingerprint()
        self.shard = shard
        self.state = QUEUED
        self.cached = False
        self.payload: Optional[dict] = None
        self.error: Optional[BaseException] = None
        self.warnings: list[str] = []
        self.waiters = 1
        self.worker_id: Optional[int] = None
        self.created_at = time.time()
        self._events: list[dict] = []
        self._lock = threading.Lock()
        self._done = threading.Event()

    # -- event log ---------------------------------------------------------

    def add_event(self, event: str, **data) -> None:
        with self._lock:
            self._events.append({"event": event, "t": time.time(), **data})

    def add_progress(self, data: dict) -> None:
        """Fold one engine batch-progress dict into the event log."""
        payload = {k: v for k, v in data.items() if k != "event"}
        self.add_event("progress", **payload)

    def events_snapshot(self) -> list[dict]:
        with self._lock:
            return list(self._events)

    # -- lifecycle (called by the service only) ----------------------------

    def mark_running(self, worker_id: Optional[int]) -> None:
        with self._lock:
            self.state = RUNNING
            self.worker_id = worker_id
            self._events.append({"event": "running", "t": time.time(), "worker": worker_id})

    def complete(self, payload: dict, cached: bool = False) -> None:
        with self._lock:
            self.state = DONE
            self.payload = payload
            self.cached = cached
            self._events.append({"event": "done", "t": time.time(), "cached": cached})
        self._done.set()

    def fail(self, error: BaseException) -> None:
        with self._lock:
            self.state = FAILED
            self.error = error
            self._events.append({"event": "failed", "t": time.time(), "error": repr(error)})
        self._done.set()

    # -- waiter API --------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._done.wait(timeout)

    def outcome(self) -> JobOutcome:
        if not self._done.is_set():
            raise RuntimeError("job has not finished")
        if self.error is not None:
            raise self.error
        return JobOutcome(
            fingerprint=self.fingerprint,
            key=self.key,
            payload=self.payload,
            cached=self.cached,
            warnings=list(self.warnings),
            events=self.events_snapshot(),
        )

    def snapshot(self) -> dict:
        """A JSON-safe view of the job (the daemon's job object)."""
        with self._lock:
            snap = {
                "job": self.fingerprint,
                "id": self.request.id,
                "case": self.request.case.key,
                "tool": self.request.tool,
                "profile": self.request.profile.name,
                "state": self.state,
                "cached": self.cached,
                "shard": self.shard,
                "waiters": self.waiters,
                "warnings": list(self.warnings),
                "error": repr(self.error) if self.error is not None else None,
            }
            if self.state == DONE:
                snap["payload"] = self.payload
                snap["evaluations"] = self.payload.get("tool_evaluations")
            return snap


class CoverageService:
    """Admission + dedup + sharded dispatch over a shared result cache.

    Args:
        store: The shared result cache -- a :class:`RunStore`, a path to
            open one at, or ``None`` for an ephemeral in-memory store.
            Store-like objects (anything with ``get_satisfying``/``put``)
            are accepted and used as-is.
        worker_mode: ``"inline"`` executes submissions synchronously on
            the submitting thread (no queue, no worker threads -- what
            serial pipelines use), ``"thread"`` runs a warm dispatcher
            pool in-process, ``"process"`` keeps the dispatchers but
            forwards execution to a persistent process pool (warm caches
            in each worker process; requests must be picklable).
        n_workers: Worker count for thread/process modes.
        n_shards: Shard count for the router; defaults to ``n_workers``.
            Results are bit-identical for every value (property-tested).
        queue_limit: Bound on pending admissions; ``None`` is unbounded.
        resume: Default result-cache policy for submissions.
        distributed: An optional
            :class:`~repro.distributed.coordinator.LeaseCoordinator` (or
            anything with its ``pool_factory``/``stats`` surface).  When
            set, CoverMe jobs run on a distributed :class:`LeasePool` --
            each engine batch becomes a lease that registered shard
            workers can execute -- instead of a local start pool.
            Incompatible with ``worker_mode="process"``: leases are
            issued by the coordinator living in *this* process, and a
            pool factory cannot cross the pickle boundary.
    """

    def __init__(
        self,
        store: Union[RunStore, Path, str, None] = None,
        worker_mode: str = "inline",
        n_workers: int = 1,
        n_shards: Optional[int] = None,
        queue_limit: Optional[int] = 256,
        resume: bool = True,
        distributed=None,
    ):
        if worker_mode not in WORKER_MODES:
            known = ", ".join(WORKER_MODES)
            raise ValueError(f"unknown service worker mode {worker_mode!r}; known: {known}")
        if distributed is not None and worker_mode == "process":
            raise ValueError(
                "distributed coordination requires inline or thread worker mode "
                "(the lease coordinator cannot cross the process-pool boundary)"
            )
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if isinstance(store, (str, Path)):
            self.store = RunStore(store)
            self._owns_store = True
        elif store is None:
            self.store = RunStore(None)
            self._owns_store = True
        else:
            self.store = store
            self._owns_store = False
        self.mode = worker_mode
        self.resume = resume
        self.distributed = distributed
        self._unjoined: list[str] = []
        self.n_workers = 1 if worker_mode == "inline" else n_workers
        self.n_shards = n_shards if n_shards is not None else self.n_workers
        self.router = ShardRouter(self.n_shards)
        self._jobs: dict[str, ServiceJob] = {}
        self._lock = threading.Lock()
        # Counters get their own lock: workers bump them from _handle, and
        # taking the registry lock there could deadlock against a submitter
        # blocked in queue.put while holding it (the worker would never get
        # back to take(), so the queue would never drain).
        self._stats_lock = threading.Lock()
        self._closed = False
        self._counters = {
            "submitted": 0,
            "executed": 0,
            "cache_hits": 0,
            "coalesced": 0,
            "failed": 0,
            "rejected": 0,
        }
        self._registry_limit = 4096
        self._executor = None
        self._executor_lock = threading.Lock()
        if worker_mode == "inline":
            self.queue = None
            self.pool = None
        else:
            self.queue = AdmissionQueue(self.n_shards, limit=queue_limit)
            self.pool = WorkerPool(self.queue, self._handle, self.n_workers, self.n_shards)

    # -- submission --------------------------------------------------------

    def submit(
        self,
        request: JobRequest,
        budget: Optional[Budget] = None,
        resume: Optional[bool] = None,
        block: bool = True,
        timeout: Optional[float] = None,
    ) -> ServiceJob:
        """Admit one job; returns immediately with a :class:`ServiceJob`.

        The returned job may already be finished (result-cache hit), may be
        an existing in-flight job (coalesced duplicate), or is queued for a
        worker.  ``block=False`` raises :class:`QueueFull` instead of
        waiting when the admission queue is at capacity.
        """
        resume = self.resume if resume is None else resume
        if budget is None:
            budget = derive_budget(request, self.store, resume=resume)
        key = build_job_key(request, budget)
        fingerprint = key.fingerprint()
        with self._lock:
            if self._closed:
                raise ServiceClosed("coverage service is closed")
            existing = self._jobs.get(fingerprint)
            if existing is not None and existing.state in (QUEUED, RUNNING):
                existing.waiters += 1
                with self._stats_lock:
                    self._counters["coalesced"] += 1
                existing.add_event("coalesced", waiters=existing.waiters)
                return existing
            job = ServiceJob(request, key, budget, shard=self.router.shard_of(fingerprint))
            if resume:
                payload = self.store.get_satisfying(key)
                if payload is not None:
                    self._register(job)
                    with self._stats_lock:
                        self._counters["cache_hits"] += 1
                    job.add_event("cache-hit")
                    job.complete(payload, cached=True)
                    return job
            job.add_event("queued", shard=job.shard)
            self._register(job)
            with self._stats_lock:
                self._counters["submitted"] += 1
            if self.queue is not None:
                # Admission happens under the service lock; queue capacity
                # frees via worker take(), which never needs this lock, so
                # a blocked submitter cannot deadlock the service.
                try:
                    self.queue.put(job, job.shard, block=block, timeout=timeout)
                except QueueFull:
                    self._jobs.pop(fingerprint, None)
                    with self._stats_lock:
                        self._counters["submitted"] -= 1
                        self._counters["rejected"] += 1
                    raise
        if self.queue is None:
            self._handle(job, worker_id=None)
        return job

    def wait(self, job: Union[ServiceJob, str], timeout: Optional[float] = None) -> JobOutcome:
        """Block until ``job`` (or the job with that fingerprint) resolves.

        Re-raises the job's execution error on failure; raises
        :class:`TimeoutError` if it does not resolve in time.
        """
        if isinstance(job, str):
            found = self.job(job)
            if found is None:
                raise KeyError(f"unknown job fingerprint {job!r}")
            job = found
        if not job.wait(timeout):
            raise TimeoutError(f"job {job.request.id} did not finish within {timeout}s")
        return job.outcome()

    def run(self, request: JobRequest, budget: Optional[Budget] = None,
            resume: Optional[bool] = None, timeout: Optional[float] = None) -> JobOutcome:
        """Submit and wait: the synchronous convenience used by the pipeline."""
        return self.wait(self.submit(request, budget=budget, resume=resume), timeout=timeout)

    def job(self, fingerprint: str) -> Optional[ServiceJob]:
        with self._lock:
            return self._jobs.get(fingerprint)

    # -- execution (worker side) -------------------------------------------

    def _handle(self, job: ServiceJob, worker_id: Optional[int]) -> None:
        """Execute one job and resolve every waiter.  Never raises."""
        job.mark_running(worker_id)
        try:
            if self.mode == "process":
                payload, warning_list = self._execute_remote(job)
            else:
                pool_factory = None
                if self.distributed is not None and job.request.tool == "CoverMe":
                    pool_factory = self.distributed.pool_factory(case_key=job.request.case.key)
                executed = execute_job(
                    job.request, job.budget, progress=job.add_progress,
                    pool_factory=pool_factory,
                )
                payload, warning_list = executed.payload, executed.warnings
            job.warnings.extend(warning_list)
            for message in warning_list:
                job.add_event("warning", message=message)
            # The coordinating process is the store's single writer for
            # this service: workers hand payloads back, keeping the store's
            # in-memory index coherent (the fcntl lock protects against
            # *other* processes sharing the file).
            self.store.put(job.key, payload)
            with self._stats_lock:
                self._counters["executed"] += 1
            job.complete(payload)
        except BaseException as exc:  # noqa: BLE001 - resolved via job.fail
            with self._stats_lock:
                self._counters["failed"] += 1
            job.fail(exc)

    def _execute_remote(self, job: ServiceJob) -> tuple[dict, list[str]]:
        executor = self._ensure_executor()
        future = executor.submit(execute_job_remote, job.request, job.budget)
        return future.result()

    def _ensure_executor(self):
        with self._executor_lock:
            if self._executor is None:
                from concurrent.futures import ProcessPoolExecutor

                from repro.engine.pool import process_context

                self._executor = ProcessPoolExecutor(
                    max_workers=self.n_workers, mp_context=process_context()
                )
            return self._executor

    # -- registry ----------------------------------------------------------

    def _register(self, job: ServiceJob) -> None:
        """Index a job by fingerprint (caller holds the service lock).

        The registry is bounded: once past the limit, the oldest *finished*
        jobs are evicted (their records live on in the store); in-flight
        jobs are never evicted.
        """
        self._jobs[job.fingerprint] = job
        if len(self._jobs) > self._registry_limit:
            for fp, old in list(self._jobs.items()):
                if len(self._jobs) <= self._registry_limit:
                    break
                if old.finished:
                    del self._jobs[fp]

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        """Counters and queue state (the daemon's /stats body)."""
        with self._stats_lock:
            counters = dict(self._counters)
        with self._lock:
            in_flight = sum(1 for j in self._jobs.values() if j.state in (QUEUED, RUNNING))
        body = {
            "mode": self.mode,
            "workers": self.n_workers,
            "shards": self.n_shards,
            "counters": counters,
            "in_flight": in_flight,
            "unjoined_workers": list(self._unjoined),
            "queue_depths": self.queue.depths() if self.queue is not None else [],
            "queue_limit": self.queue.limit if self.queue is not None else None,
            "store": {
                "persistent": getattr(self.store, "persistent", False),
                "records": len(self.store),
            },
        }
        if self.distributed is not None:
            body["distributed"] = self.distributed.stats()
        return body

    # -- lifecycle ---------------------------------------------------------

    def close(self, close_store: Optional[bool] = None) -> None:
        """Stop accepting work, retire workers, fail any drained backlog."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self.queue is not None:
            for job in self.queue.close():
                job.fail(ServiceClosed("service closed before the job ran"))
            # Workers that outlive the shared join deadline are recorded,
            # not abandoned silently: stats() keeps reporting them so a
            # wedged shard stays visible after close().
            self._unjoined = self.pool.join()
        with self._executor_lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
        if close_store is None:
            close_store = self._owns_store
        if close_store:
            self.store.close()

    def __enter__(self) -> "CoverageService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
