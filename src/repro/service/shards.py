"""Shard routing: job-key fingerprint -> shard index.

A shard is the service's unit of horizontal partitioning: every job whose
key hashes to shard *s* is executed by the one worker that owns *s*, which
gives per-shard FIFO ordering and a stable home for warm per-worker state.
Routing is a pure function of the job's content address, so it mirrors the
engine's any-worker-count guarantee one level up: jobs are independently
seeded and deterministic, therefore the *assignment* of jobs to shards (and
the shard count itself) cannot change any job's stored bytes -- only which
worker computes them and in what interleaving.  The bit-identity property
test runs the same plan under shard counts {1, 2, 4} and diffs the stored
records byte-for-byte.
"""

from __future__ import annotations


class ShardRouter:
    """Route job-key fingerprints to ``n_shards`` buckets.

    The rule is deliberately boring and documented as part of the service
    contract: the first 16 hex digits of the fingerprint, as an integer,
    modulo the shard count.  Boring means any client -- or a future
    multi-host deployment -- can compute the same routing without asking
    the daemon.
    """

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = n_shards

    def shard_of(self, fingerprint: str) -> int:
        return int(fingerprint[:16], 16) % self.n_shards

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardRouter(n_shards={self.n_shards})"
