"""Coverage-as-a-service: the job layer every execution path goes through.

``repro run``, :func:`repro.experiments.pipeline.execute_plan` and the
``repro serve`` HTTP daemon all build :class:`JobRequest`\\ s and submit
them to a :class:`CoverageService`, which deduplicates in-flight work,
serves repeats from the shared :class:`~repro.store.RunStore` result
cache, applies bounded admission (backpressure), and routes jobs to a
persistent warm worker pool by job-key shard.  See
:mod:`repro.service.core` for the full submission pipeline and
:mod:`repro.service.http` for the daemon's wire protocol.
"""

from repro.service.core import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    CoverageService,
    JobOutcome,
    ServiceClosed,
    ServiceJob,
)
from repro.service.jobs import (
    TOOL_FACTORIES,
    ExecutedJob,
    JobRequest,
    baseline_budget,
    build_job_key,
    coverme_budget,
    derive_budget,
    execute_job,
    profile_fingerprint,
    source_hash,
    tool_fingerprint,
)
from repro.service.queue import AdmissionQueue, QueueClosed, QueueFull
from repro.service.shards import ShardRouter
from repro.service.workers import WorkerPool

__all__ = [
    "AdmissionQueue",
    "CoverageService",
    "DONE",
    "ExecutedJob",
    "FAILED",
    "JobOutcome",
    "JobRequest",
    "QUEUED",
    "QueueClosed",
    "QueueFull",
    "RUNNING",
    "ServiceClosed",
    "ServiceJob",
    "ShardRouter",
    "TOOL_FACTORIES",
    "WorkerPool",
    "baseline_budget",
    "build_job_key",
    "coverme_budget",
    "derive_budget",
    "execute_job",
    "profile_fingerprint",
    "source_hash",
    "tool_fingerprint",
]
