"""The persistent warm worker pool: dispatcher threads owning shards.

Each worker is a long-lived thread that owns a fixed subset of shards
(``shard % n_workers == worker_index``) and loops taking jobs from the
admission queue and handing them to the service's job handler.  Because
workers persist across jobs, everything cached at process level -- the
instrumented-source cache, the specialization cache, the native-kernel
cache -- stays hot from one job to the next; that is the whole point of a
*warm* pool versus spawning per job.

In ``process`` mode these threads are still the dispatchers; the handler
forwards execution to a persistent ``ProcessPoolExecutor`` owned by the
service, so the same warm-cache argument applies to the worker processes.
"""

from __future__ import annotations

import time
import threading
from typing import Callable


class WorkerPool:
    """``n_workers`` daemon threads draining an :class:`AdmissionQueue`.

    ``handler(job, worker_id)`` must never raise: job failures are folded
    into the job object by the service, and a handler exception would
    silently kill a worker thread (and orphan its shards).
    """

    def __init__(self, queue, handler: Callable, n_workers: int, n_shards: int):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self._queue = queue
        self._handler = handler
        self._threads: list[threading.Thread] = []
        for index in range(n_workers):
            shards = tuple(s for s in range(n_shards) if s % n_workers == index)
            thread = threading.Thread(
                target=self._loop,
                args=(index, shards),
                name=f"repro-service-worker-{index}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    @property
    def n_workers(self) -> int:
        return len(self._threads)

    def _loop(self, worker_id: int, shards: tuple[int, ...]) -> None:
        while True:
            job = self._queue.take(shards)
            if job is None:  # queue closed: drain complete, retire
                return
            self._handler(job, worker_id)

    def join(self, timeout: float = 30.0) -> list[str]:
        """Wait up to ``timeout`` seconds *total* for all workers to retire.

        The deadline is shared across the pool (it used to be granted per
        thread, so N slow workers could stretch the wait to N x timeout),
        and workers still alive at expiry are returned by name instead of
        being silently abandoned -- the service surfaces them in its stats
        so a shard wedged on a slow job is observable, not just slow.
        """
        deadline = time.monotonic() + timeout
        unjoined: list[str] = []
        for thread in self._threads:
            thread.join(max(0.0, deadline - time.monotonic()))
            if thread.is_alive():
                unjoined.append(thread.name)
        return unjoined
