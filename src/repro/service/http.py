"""Stdlib-only asyncio HTTP front end for the coverage service.

``repro serve`` runs this daemon; it is deliberately a thin translation
layer -- every decision (dedup, cache, budgets, backpressure) lives in
:class:`~repro.service.core.CoverageService`, so daemon submissions and
in-process submissions are indistinguishable below the socket.

Endpoints (all JSON unless noted):

* ``GET /healthz`` -- liveness probe: ``{"ok": true}``.
* ``GET /stats`` -- service counters, queue depths, store size.
* ``POST /jobs`` -- submit a job.  Body::

      {"case": "<file>:<function>",      # required, e.g. "s_sin.c:sin"
       "tool": "CoverMe",                # optional, default CoverMe
       "profile": "smoke",               # optional, default smoke
       "overrides": {"n_start": 6},      # optional Profile field overrides
       "measure_lines": false}           # optional

  Replies ``200`` with the job object when it resolved instantly (result
  cache hit), ``202`` when queued/running, ``429`` when the admission
  queue is full (backpressure -- retry later), ``400`` on a malformed
  request.  The job object carries ``"job"`` (the fingerprint -- the
  job's identity and URL segment), ``"state"``, ``"cached"``, and, once
  done, ``"payload"`` plus any captured ``"warnings"``.
* ``GET /jobs/<fingerprint>`` -- poll one job.
* ``GET /jobs/<fingerprint>/events`` -- NDJSON stream of the job's event
  log (queued/running/progress/warning/done), live until the job
  finishes.  ``?from=N`` skips the first N events.
* ``POST /shutdown`` -- graceful stop (the smoke-test/CI hook).

When the service carries a :class:`~repro.distributed.coordinator.\
LeaseCoordinator` (``repro serve --role coordinator``), four more routes
expose the lease protocol to shard workers:

* ``POST /distributed/register`` -- ``{"worker": "<id>"}``; replies with
  the lease TTL and the heartbeat interval the worker must keep.
* ``POST /distributed/lease`` -- ``{"worker": "<id>", "resync": false}``;
  replies ``{"lease": <payload>|null}`` (null: nothing pending -- poll
  again; polling *is* the work-stealing mechanism).
* ``POST /distributed/heartbeat`` -- ``{"worker", "lease"}``; ``ok:
  false`` means the lease was reclaimed (stolen) and the worker should
  abandon it.
* ``POST /distributed/result`` -- the worker's completed-lease body;
  ``accepted: false`` means a competing completion (steal) or a
  cancelled speculative lease won.
* ``GET /distributed/stats`` -- lease table + worker registry counters.

**Auth and backpressure.**  ``--token`` gates every route except
``GET /healthz`` behind ``Authorization: Bearer <token>`` (401
otherwise).  An optional per-client sliding-window rate limit answers
429 with a ``Retry-After`` header (also mirrored as ``retry_after`` in
the JSON body); clients are keyed by token when auth is on, else by
peer address.  Queue-full 429s carry ``Retry-After`` too -- both kinds
are flow control, not errors.

Budgets follow the service rule: CoverMe jobs get the profile's
wall-clock budget; baseline jobs derive from the case's stored CoverMe
record when one exists, else the profile floor.  Submitting CoverMe first
therefore reproduces the pipeline's budget chain exactly.
"""

from __future__ import annotations

import asyncio
import collections
import contextlib
import dataclasses
import hmac
import json
import threading
import time
from typing import Optional

from repro.experiments.runner import PROFILES, Profile
from repro.fdlibm.suite import case_by_key
from repro.service.core import CoverageService, ServiceClosed
from repro.service.jobs import JobRequest
from repro.service.queue import QueueFull

_PHRASES = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    503: "Service Unavailable",
}

_MAX_BODY = 1 << 20  # 1 MiB: submit bodies are tiny; refuse anything huge


class HTTPError(Exception):
    def __init__(self, status: int, message: str, headers: Optional[dict] = None,
                 extra: Optional[dict] = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}
        self.extra = extra or {}


class RateLimiter:
    """Per-client sliding-window admission: at most ``limit`` requests in
    any trailing ``window`` seconds.

    Clients are keyed by bearer token when auth is on (one budget per
    credential, however many machines share it), else by peer address.
    ``check`` returns ``None`` to admit or the seconds until the oldest
    in-window request expires -- the honest ``Retry-After`` value.
    """

    def __init__(self, limit: int, window: float):
        if limit < 1 or window <= 0:
            raise ValueError("rate limit needs limit >= 1 and window > 0")
        self.limit = limit
        self.window = float(window)
        self._events: dict[str, collections.deque] = {}
        self._lock = threading.Lock()

    def check(self, key: str, now: Optional[float] = None) -> Optional[float]:
        now = time.monotonic() if now is None else now
        with self._lock:
            events = self._events.setdefault(key, collections.deque())
            while events and events[0] <= now - self.window:
                events.popleft()
            if len(events) >= self.limit:
                return max(0.0, events[0] + self.window - now)
            events.append(now)
            return None


def _profile_from_body(data: dict, profiles: dict[str, Profile]) -> Profile:
    name = data.get("profile", "smoke")
    if not isinstance(name, str) or name not in profiles:
        known = ", ".join(sorted(profiles))
        raise HTTPError(400, f"unknown profile {name!r}; known: {known}")
    profile = profiles[name]
    overrides = data.get("overrides") or {}
    if not isinstance(overrides, dict):
        raise HTTPError(400, "overrides must be an object")
    if overrides:
        known_fields = {f.name for f in dataclasses.fields(Profile)}
        unknown = sorted(set(overrides) - known_fields)
        if unknown:
            raise HTTPError(400, f"unknown profile override(s): {', '.join(unknown)}")
        try:
            profile = dataclasses.replace(profile, **overrides)
        except (TypeError, ValueError) as exc:
            raise HTTPError(400, f"invalid profile override: {exc}") from exc
    return profile


class ServiceHTTPServer:
    """One asyncio server wrapping one :class:`CoverageService`."""

    def __init__(
        self,
        service: CoverageService,
        host: str = "127.0.0.1",
        port: int = 0,
        profiles: Optional[dict[str, Profile]] = None,
        poll_interval: float = 0.05,
        token: Optional[str] = None,
        rate_limit: Optional[tuple[int, float]] = None,
    ):
        self.service = service
        self.host = host
        self.port = port
        self.profiles = profiles if profiles is not None else PROFILES
        self.poll_interval = poll_interval
        self.token = token
        self.rate_limiter = RateLimiter(*rate_limit) if rate_limit is not None else None
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown: Optional[asyncio.Event] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._shutdown = asyncio.Event()
        self._server = await asyncio.start_server(self._handle_client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def request_shutdown(self) -> None:
        """Thread-unsafe half; call on the loop thread (or via
        ``loop.call_soon_threadsafe``)."""
        if self._shutdown is not None:
            self._shutdown.set()

    async def serve_until_shutdown(self) -> None:
        await self._shutdown.wait()
        self._server.close()
        await self._server.wait_closed()

    # -- request plumbing --------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        try:
            try:
                method, path, headers, body = await self._read_request(reader)
            except HTTPError as exc:
                await self._respond(writer, exc.status, {"error": exc.message})
                return
            except (asyncio.IncompleteReadError, ValueError, UnicodeDecodeError):
                await self._respond(writer, 400, {"error": "malformed request"})
                return
            try:
                self._admit(method, path, headers, writer)
                await self._route(writer, method, path, body)
            except HTTPError as exc:
                await self._respond(
                    writer, exc.status, {"error": exc.message, **exc.extra}, exc.headers
                )
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    def _admit(self, method: str, target: str, headers: dict, writer) -> None:
        """Auth then rate-limit, in that order (anonymous traffic must not
        be able to burn a token's budget).  ``GET /healthz`` stays open so
        probes work without credentials."""
        path = target.partition("?")[0]
        if path == "/healthz" and method == "GET":
            return
        presented = None
        if self.token is not None:
            auth = headers.get("authorization", "")
            scheme, _, presented = auth.partition(" ")
            if scheme.lower() != "bearer" or not hmac.compare_digest(
                presented.strip(), self.token
            ):
                raise HTTPError(401, "missing or invalid bearer token")
            presented = presented.strip()
        if self.rate_limiter is not None:
            if presented is not None:
                key = presented
            else:
                peer = writer.get_extra_info("peername")
                key = str(peer[0]) if isinstance(peer, (tuple, list)) and peer else "unknown"
            retry_after = self.rate_limiter.check(key)
            if retry_after is not None:
                raise HTTPError(
                    429,
                    "rate limit exceeded",
                    headers={"Retry-After": f"{max(retry_after, 0.001):.3f}"},
                    extra={"retry_after": round(max(retry_after, 0.001), 3)},
                )

    async def _read_request(self, reader) -> tuple[str, str, dict, bytes]:
        request_line = await reader.readline()
        if not request_line:
            raise HTTPError(400, "empty request")
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise HTTPError(400, "malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise HTTPError(400, "bad Content-Length") from None
        if length > _MAX_BODY:
            raise HTTPError(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    async def _respond(
        self, writer, status: int, payload: dict, headers: Optional[dict] = None
    ) -> None:
        body = (json.dumps(payload) + "\n").encode("utf-8")
        extra = "".join(f"{name}: {value}\r\n" for name, value in (headers or {}).items())
        head = (
            f"HTTP/1.1 {status} {_PHRASES.get(status, 'OK')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # -- routing -----------------------------------------------------------

    async def _route(self, writer, method: str, target: str, body: bytes) -> None:
        path, _, query = target.partition("?")
        if path == "/healthz" and method == "GET":
            await self._respond(writer, 200, {"ok": True})
        elif path == "/stats" and method == "GET":
            await self._respond(writer, 200, self.service.stats())
        elif path == "/jobs" and method == "POST":
            await self._submit(writer, body)
        elif path.startswith("/jobs/") and method == "GET":
            rest = path[len("/jobs/"):]
            if rest.endswith("/events"):
                await self._stream_events(writer, rest[: -len("/events")].rstrip("/"), query)
            else:
                await self._poll(writer, rest)
        elif path.startswith("/distributed/"):
            await self._distributed(writer, method, path[len("/distributed/"):], body)
        elif path == "/shutdown" and method == "POST":
            await self._respond(writer, 200, {"ok": True, "shutting_down": True})
            self.request_shutdown()
        else:
            raise HTTPError(404 if method in ("GET", "POST") else 405, f"no route for {method} {path}")

    # -- handlers ----------------------------------------------------------

    def _parse_submit(self, body: bytes) -> JobRequest:
        try:
            data = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            raise HTTPError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(data, dict):
            raise HTTPError(400, "body must be a JSON object")
        case_key = data.get("case")
        if not isinstance(case_key, str):
            raise HTTPError(400, 'missing required field "case" ("<file>:<function>")')
        try:
            case = case_by_key(case_key)
        except KeyError as exc:
            raise HTTPError(400, str(exc)) from exc
        tool = data.get("tool", "CoverMe")
        if not isinstance(tool, str):
            raise HTTPError(400, "tool must be a string")
        profile = _profile_from_body(data, self.profiles)
        return JobRequest(
            case=case,
            tool=tool,
            profile=profile,
            measure_lines=bool(data.get("measure_lines", False)),
        )

    async def _submit(self, writer, body: bytes) -> None:
        request = self._parse_submit(body)
        try:
            # block=False: a full queue is the client's problem (429), not
            # a reason to stall the event loop.
            job = self.service.submit(request, block=False)
        except QueueFull as exc:
            raise HTTPError(
                429, str(exc), headers={"Retry-After": "1"}, extra={"retry_after": 1}
            ) from exc
        except ServiceClosed as exc:
            raise HTTPError(503, str(exc)) from exc
        except ValueError as exc:
            raise HTTPError(400, str(exc)) from exc
        await self._respond(writer, 200 if job.finished else 202, job.snapshot())

    def _find_job(self, fingerprint: str):
        job = self.service.job(fingerprint)
        if job is None:
            raise HTTPError(404, f"unknown job {fingerprint!r}")
        return job

    async def _poll(self, writer, fingerprint: str) -> None:
        await self._respond(writer, 200, self._find_job(fingerprint).snapshot())

    # -- distributed (lease protocol) --------------------------------------

    @staticmethod
    def _parse_json(body: bytes) -> dict:
        try:
            data = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            raise HTTPError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(data, dict):
            raise HTTPError(400, "body must be a JSON object")
        return data

    async def _distributed(self, writer, method: str, action: str, body: bytes) -> None:
        coordinator = getattr(self.service, "distributed", None)
        if coordinator is None:
            raise HTTPError(404, "this daemon is not a coordinator (serve --role coordinator)")
        if action == "stats" and method == "GET":
            await self._respond(writer, 200, coordinator.stats())
            return
        if method != "POST":
            raise HTTPError(405, f"no route for {method} /distributed/{action}")
        data = self._parse_json(body)
        worker = data.get("worker")
        if action != "result" and not isinstance(worker, str):
            raise HTTPError(400, 'missing required field "worker"')
        if action == "register":
            await self._respond(writer, 200, coordinator.register_worker(worker))
        elif action == "lease":
            # Lease execution and result submission happen on worker
            # machines; the coordinator-side calls here are registry and
            # table bookkeeping, cheap enough for the event loop.
            lease = coordinator.acquire(worker, resync=bool(data.get("resync")))
            await self._respond(writer, 200, {"lease": lease})
        elif action == "heartbeat":
            ok = coordinator.heartbeat(worker, data.get("lease", ""))
            await self._respond(writer, 200, {"ok": ok})
        elif action == "result":
            from repro.distributed.worker import submit_payload  # lazy: optional subsystem

            if not isinstance(data.get("worker"), str) or not isinstance(data.get("lease"), str):
                raise HTTPError(400, 'result body needs "worker" and "lease"')
            try:
                accepted = submit_payload(coordinator, data)
            except (KeyError, TypeError, ValueError) as exc:
                raise HTTPError(400, f"malformed result body: {exc}") from exc
            await self._respond(writer, 200, {"accepted": accepted})
        else:
            raise HTTPError(404, f"no route for POST /distributed/{action}")

    async def _stream_events(self, writer, fingerprint: str, query: str) -> None:
        job = self._find_job(fingerprint)
        sent = 0
        if query.startswith("from="):
            try:
                sent = max(0, int(query[len("from="):]))
            except ValueError:
                raise HTTPError(400, "from must be an integer") from None
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        while True:
            events = job.events_snapshot()
            for event in events[sent:]:
                writer.write((json.dumps(event) + "\n").encode("utf-8"))
            sent = len(events)
            await writer.drain()
            if job.finished and sent == len(job.events_snapshot()):
                return
            await asyncio.sleep(self.poll_interval)


# ---------------------------------------------------------------------------
# Runners
# ---------------------------------------------------------------------------


def serve(
    service: CoverageService,
    host: str = "127.0.0.1",
    port: int = 0,
    profiles: Optional[dict[str, Profile]] = None,
    announce=print,
    token: Optional[str] = None,
    rate_limit: Optional[tuple[int, float]] = None,
) -> None:
    """Run the daemon until ``POST /shutdown`` (or KeyboardInterrupt).

    Blocking; this is what ``repro serve`` calls.  ``announce`` receives
    the single "listening on ..." line once the socket is bound (port 0
    resolves to the actual ephemeral port first), which is what the CI
    smoke job parses.
    """

    async def _amain() -> None:
        server = ServiceHTTPServer(
            service, host, port, profiles, token=token, rate_limit=rate_limit
        )
        await server.start()
        announce(f"repro serve: listening on {server.address}")
        await server.serve_until_shutdown()

    try:
        asyncio.run(_amain())
    except KeyboardInterrupt:
        pass


@contextlib.contextmanager
def serve_in_background(
    service: CoverageService,
    host: str = "127.0.0.1",
    port: int = 0,
    profiles: Optional[dict[str, Profile]] = None,
    token: Optional[str] = None,
    rate_limit: Optional[tuple[int, float]] = None,
):
    """Run the daemon on a background thread; yields the started server.

    Test/embedding helper: the caller talks HTTP to ``server.address``
    and the daemon is shut down (gracefully) on context exit.  The
    service itself is *not* closed -- its owner decides that.
    """
    loop = asyncio.new_event_loop()
    server = ServiceHTTPServer(service, host, port, profiles, token=token, rate_limit=rate_limit)
    started = threading.Event()
    failures: list[BaseException] = []

    def _run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # noqa: BLE001 - reported to the caller
            failures.append(exc)
            started.set()
            return
        started.set()
        loop.run_until_complete(server.serve_until_shutdown())

    thread = threading.Thread(target=_run, name="repro-serve", daemon=True)
    thread.start()
    started.wait()
    if failures:
        raise failures[0]
    try:
        yield server
    finally:
        loop.call_soon_threadsafe(server.request_shutdown)
        thread.join(timeout=10)
        if not loop.is_running():
            loop.close()
