"""Stdlib-only asyncio HTTP front end for the coverage service.

``repro serve`` runs this daemon; it is deliberately a thin translation
layer -- every decision (dedup, cache, budgets, backpressure) lives in
:class:`~repro.service.core.CoverageService`, so daemon submissions and
in-process submissions are indistinguishable below the socket.

Endpoints (all JSON unless noted):

* ``GET /healthz`` -- liveness probe: ``{"ok": true}``.
* ``GET /stats`` -- service counters, queue depths, store size.
* ``POST /jobs`` -- submit a job.  Body::

      {"case": "<file>:<function>",      # required, e.g. "s_sin.c:sin"
       "tool": "CoverMe",                # optional, default CoverMe
       "profile": "smoke",               # optional, default smoke
       "overrides": {"n_start": 6},      # optional Profile field overrides
       "measure_lines": false}           # optional

  Replies ``200`` with the job object when it resolved instantly (result
  cache hit), ``202`` when queued/running, ``429`` when the admission
  queue is full (backpressure -- retry later), ``400`` on a malformed
  request.  The job object carries ``"job"`` (the fingerprint -- the
  job's identity and URL segment), ``"state"``, ``"cached"``, and, once
  done, ``"payload"`` plus any captured ``"warnings"``.
* ``GET /jobs/<fingerprint>`` -- poll one job.
* ``GET /jobs/<fingerprint>/events`` -- NDJSON stream of the job's event
  log (queued/running/progress/warning/done), live until the job
  finishes.  ``?from=N`` skips the first N events.
* ``POST /shutdown`` -- graceful stop (the smoke-test/CI hook).

Budgets follow the service rule: CoverMe jobs get the profile's
wall-clock budget; baseline jobs derive from the case's stored CoverMe
record when one exists, else the profile floor.  Submitting CoverMe first
therefore reproduces the pipeline's budget chain exactly.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import json
import threading
from typing import Optional

from repro.experiments.runner import PROFILES, Profile
from repro.fdlibm.suite import case_by_key
from repro.service.core import CoverageService, ServiceClosed
from repro.service.jobs import JobRequest
from repro.service.queue import QueueFull

_PHRASES = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    503: "Service Unavailable",
}

_MAX_BODY = 1 << 20  # 1 MiB: submit bodies are tiny; refuse anything huge


class HTTPError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


def _profile_from_body(data: dict, profiles: dict[str, Profile]) -> Profile:
    name = data.get("profile", "smoke")
    if not isinstance(name, str) or name not in profiles:
        known = ", ".join(sorted(profiles))
        raise HTTPError(400, f"unknown profile {name!r}; known: {known}")
    profile = profiles[name]
    overrides = data.get("overrides") or {}
    if not isinstance(overrides, dict):
        raise HTTPError(400, "overrides must be an object")
    if overrides:
        known_fields = {f.name for f in dataclasses.fields(Profile)}
        unknown = sorted(set(overrides) - known_fields)
        if unknown:
            raise HTTPError(400, f"unknown profile override(s): {', '.join(unknown)}")
        try:
            profile = dataclasses.replace(profile, **overrides)
        except (TypeError, ValueError) as exc:
            raise HTTPError(400, f"invalid profile override: {exc}") from exc
    return profile


class ServiceHTTPServer:
    """One asyncio server wrapping one :class:`CoverageService`."""

    def __init__(
        self,
        service: CoverageService,
        host: str = "127.0.0.1",
        port: int = 0,
        profiles: Optional[dict[str, Profile]] = None,
        poll_interval: float = 0.05,
    ):
        self.service = service
        self.host = host
        self.port = port
        self.profiles = profiles if profiles is not None else PROFILES
        self.poll_interval = poll_interval
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown: Optional[asyncio.Event] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._shutdown = asyncio.Event()
        self._server = await asyncio.start_server(self._handle_client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def request_shutdown(self) -> None:
        """Thread-unsafe half; call on the loop thread (or via
        ``loop.call_soon_threadsafe``)."""
        if self._shutdown is not None:
            self._shutdown.set()

    async def serve_until_shutdown(self) -> None:
        await self._shutdown.wait()
        self._server.close()
        await self._server.wait_closed()

    # -- request plumbing --------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        try:
            try:
                method, path, body = await self._read_request(reader)
            except HTTPError as exc:
                await self._respond(writer, exc.status, {"error": exc.message})
                return
            except (asyncio.IncompleteReadError, ValueError, UnicodeDecodeError):
                await self._respond(writer, 400, {"error": "malformed request"})
                return
            try:
                await self._route(writer, method, path, body)
            except HTTPError as exc:
                await self._respond(writer, exc.status, {"error": exc.message})
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _read_request(self, reader) -> tuple[str, str, bytes]:
        request_line = await reader.readline()
        if not request_line:
            raise HTTPError(400, "empty request")
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise HTTPError(400, "malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise HTTPError(400, "bad Content-Length") from None
        if length > _MAX_BODY:
            raise HTTPError(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        return method, target, body

    async def _respond(self, writer, status: int, payload: dict) -> None:
        body = (json.dumps(payload) + "\n").encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_PHRASES.get(status, 'OK')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # -- routing -----------------------------------------------------------

    async def _route(self, writer, method: str, target: str, body: bytes) -> None:
        path, _, query = target.partition("?")
        if path == "/healthz" and method == "GET":
            await self._respond(writer, 200, {"ok": True})
        elif path == "/stats" and method == "GET":
            await self._respond(writer, 200, self.service.stats())
        elif path == "/jobs" and method == "POST":
            await self._submit(writer, body)
        elif path.startswith("/jobs/") and method == "GET":
            rest = path[len("/jobs/"):]
            if rest.endswith("/events"):
                await self._stream_events(writer, rest[: -len("/events")].rstrip("/"), query)
            else:
                await self._poll(writer, rest)
        elif path == "/shutdown" and method == "POST":
            await self._respond(writer, 200, {"ok": True, "shutting_down": True})
            self.request_shutdown()
        else:
            raise HTTPError(404 if method in ("GET", "POST") else 405, f"no route for {method} {path}")

    # -- handlers ----------------------------------------------------------

    def _parse_submit(self, body: bytes) -> JobRequest:
        try:
            data = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            raise HTTPError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(data, dict):
            raise HTTPError(400, "body must be a JSON object")
        case_key = data.get("case")
        if not isinstance(case_key, str):
            raise HTTPError(400, 'missing required field "case" ("<file>:<function>")')
        try:
            case = case_by_key(case_key)
        except KeyError as exc:
            raise HTTPError(400, str(exc)) from exc
        tool = data.get("tool", "CoverMe")
        if not isinstance(tool, str):
            raise HTTPError(400, "tool must be a string")
        profile = _profile_from_body(data, self.profiles)
        return JobRequest(
            case=case,
            tool=tool,
            profile=profile,
            measure_lines=bool(data.get("measure_lines", False)),
        )

    async def _submit(self, writer, body: bytes) -> None:
        request = self._parse_submit(body)
        try:
            # block=False: a full queue is the client's problem (429), not
            # a reason to stall the event loop.
            job = self.service.submit(request, block=False)
        except QueueFull as exc:
            raise HTTPError(429, str(exc)) from exc
        except ServiceClosed as exc:
            raise HTTPError(503, str(exc)) from exc
        except ValueError as exc:
            raise HTTPError(400, str(exc)) from exc
        await self._respond(writer, 200 if job.finished else 202, job.snapshot())

    def _find_job(self, fingerprint: str):
        job = self.service.job(fingerprint)
        if job is None:
            raise HTTPError(404, f"unknown job {fingerprint!r}")
        return job

    async def _poll(self, writer, fingerprint: str) -> None:
        await self._respond(writer, 200, self._find_job(fingerprint).snapshot())

    async def _stream_events(self, writer, fingerprint: str, query: str) -> None:
        job = self._find_job(fingerprint)
        sent = 0
        if query.startswith("from="):
            try:
                sent = max(0, int(query[len("from="):]))
            except ValueError:
                raise HTTPError(400, "from must be an integer") from None
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        while True:
            events = job.events_snapshot()
            for event in events[sent:]:
                writer.write((json.dumps(event) + "\n").encode("utf-8"))
            sent = len(events)
            await writer.drain()
            if job.finished and sent == len(job.events_snapshot()):
                return
            await asyncio.sleep(self.poll_interval)


# ---------------------------------------------------------------------------
# Runners
# ---------------------------------------------------------------------------


def serve(
    service: CoverageService,
    host: str = "127.0.0.1",
    port: int = 0,
    profiles: Optional[dict[str, Profile]] = None,
    announce=print,
) -> None:
    """Run the daemon until ``POST /shutdown`` (or KeyboardInterrupt).

    Blocking; this is what ``repro serve`` calls.  ``announce`` receives
    the single "listening on ..." line once the socket is bound (port 0
    resolves to the actual ephemeral port first), which is what the CI
    smoke job parses.
    """

    async def _amain() -> None:
        server = ServiceHTTPServer(service, host, port, profiles)
        await server.start()
        announce(f"repro serve: listening on {server.address}")
        await server.serve_until_shutdown()

    try:
        asyncio.run(_amain())
    except KeyboardInterrupt:
        pass


@contextlib.contextmanager
def serve_in_background(
    service: CoverageService,
    host: str = "127.0.0.1",
    port: int = 0,
    profiles: Optional[dict[str, Profile]] = None,
):
    """Run the daemon on a background thread; yields the started server.

    Test/embedding helper: the caller talks HTTP to ``server.address``
    and the daemon is shut down (gracefully) on context exit.  The
    service itself is *not* closed -- its owner decides that.
    """
    loop = asyncio.new_event_loop()
    server = ServiceHTTPServer(service, host, port, profiles)
    started = threading.Event()
    failures: list[BaseException] = []

    def _run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # noqa: BLE001 - reported to the caller
            failures.append(exc)
            started.set()
            return
        started.set()
        loop.run_until_complete(server.serve_until_shutdown())

    thread = threading.Thread(target=_run, name="repro-serve", daemon=True)
    thread.start()
    started.wait()
    if failures:
        raise failures[0]
    try:
        yield server
    finally:
        loop.call_soon_threadsafe(server.request_shutdown)
        thread.join(timeout=10)
        if not loop.is_running():
            loop.close()
