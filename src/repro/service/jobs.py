"""The service's unit of work: one (case, tool) coverage job.

A *job* is one benchmark case run under one tool configuration.  Its
identity is the :class:`~repro.store.JobKey` fingerprint -- the content
address covering the instrumented source hash, the tool and profile
fingerprints, the (possibly derived) budget, the seed, the input domain and
whether line coverage was measured.  Everything in the service layer (the
result cache, in-flight coalescing, shard routing) keys on that fingerprint,
which is why identical submissions from any entry point -- CLI, pipeline,
HTTP daemon -- dedupe onto one record.

This module owns what :mod:`repro.experiments.pipeline` used to own:

* the named tool factories (module-level so process workers can pickle
  them),
* the profile/tool/source fingerprints and their exclusion sets,
* the budget rules (CoverMe gets the profile's wall-clock budget; baselines
  get the paper's "N times CoverMe's effort" rule),
* single-job execution (:func:`execute_job`), which is the one place a
  tool actually runs against an instrumented program.

The pipeline re-exports the fingerprint helpers for backwards
compatibility; new code should import them from here.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import warnings as _warnings
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.baselines.afl import AFLFuzzer
from repro.baselines.austin import AustinTester
from repro.baselines.harness import Budget, run_tool
from repro.baselines.random_testing import RandomTester
from repro.core.config import CoverMeConfig
from repro.experiments.runner import CoverMeTool, Profile, coverme_tool, instrument_case
from repro.fdlibm.suite import BenchmarkCase
from repro.store import JobKey, canonical_json, fingerprint_of, summary_to_dict

# ---------------------------------------------------------------------------
# Tool factories (module-level so process workers can pickle them)
# ---------------------------------------------------------------------------


def make_coverme(profile: Profile) -> CoverMeTool:
    return coverme_tool(profile)


def make_rand(profile: Profile) -> RandomTester:
    return RandomTester(seed=profile.seed + 1)


def make_afl(profile: Profile) -> AFLFuzzer:
    return AFLFuzzer(seed=profile.seed + 2)


def make_austin(profile: Profile) -> AustinTester:
    return AustinTester(seed=profile.seed + 3)


#: Named factories used by the experiment specs, the daemon's submit
#: endpoint, and reusable by custom callers.
TOOL_FACTORIES: dict[str, Callable[[Profile], object]] = {
    "CoverMe": make_coverme,
    "Rand": make_rand,
    "AFL": make_afl,
    "Austin": make_austin,
}


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------

#: Profile fields that provably do not change per-job results: ``name`` is a
#: label (two profiles with the same values are the same work), ``max_cases``
#: selects *which* jobs run, and the engine guarantees seeded results are
#: identical for every worker count.
_PROFILE_FP_EXCLUDE = frozenset(
    {"name", "max_cases", "n_workers", "eval_profile", "batch_starts",
     "native_threads"}
)

#: Tool state excluded from fingerprints: mutable run-to-run scratch, and
#: CoverMe knobs the engine guarantees are result-neutral (every execution
#: profile computes bit-identical representing-function values, so
#: ``eval_profile`` -- like ``n_workers`` -- cannot change stored results;
#: ``progress`` is a pure observer the service attaches to stream events).
_TOOL_FP_EXCLUDE = frozenset(
    {"last_evaluations", "n_workers", "worker_mode", "verbose", "batch_starts",
     "eval_profile", "native_threads", "progress", "pool_factory"}
)


def profile_fingerprint(profile: Profile) -> str:
    payload = {
        k: v for k, v in dataclasses.asdict(profile).items() if k not in _PROFILE_FP_EXCLUDE
    }
    return fingerprint_of(payload)[:16]


def _strip_excluded(obj):
    if isinstance(obj, dict):
        return {k: _strip_excluded(v) for k, v in obj.items() if k not in _TOOL_FP_EXCLUDE}
    return obj


def tool_fingerprint(tool) -> str:
    """Content fingerprint of a tool's configuration (not its identity)."""
    if dataclasses.is_dataclass(tool):
        state = _strip_excluded(dataclasses.asdict(tool))
    elif type(tool).__repr__ is not object.__repr__:
        # Hand-rolled tools with a real repr: their repr is their config.
        state = {"repr": repr(tool)}
    else:
        # The default object repr embeds a memory address: fingerprinting it
        # would give every run a fresh key and silently disable resume.
        raise ValueError(
            f"cannot fingerprint tool {type(tool).__name__}: make it a dataclass "
            "or give it a __repr__ that captures its configuration"
        )
    state["__type__"] = type(tool).__name__
    return fingerprint_of(state)[:16]


def source_hash(program) -> str:
    """SHA-256 of the instrumented source (entry + extras, post-AST-pass)."""
    return hashlib.sha256(program.source.encode("utf-8")).hexdigest()[:16]


@functools.lru_cache(maxsize=None)
def instrument_for_lookup(case: BenchmarkCase):
    """Instrument a case once per process for key building and store lookups.

    Key building only reads ``n_branches`` and the source hash, so sharing
    one instance per case is safe and keeps the AST pass out of the
    admission path.  :func:`execute_job` reuses it for execution too -- the
    warm-worker guarantee that instrumented sources (and, downstream, the
    specialization and native caches keyed on them) stay hot across jobs.
    """
    return instrument_case(case)


def domain_tag(case: BenchmarkCase) -> str:
    low, high = case.domain()
    return canonical_json([list(low), list(high)])


# ---------------------------------------------------------------------------
# Requests and budgets
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JobRequest:
    """Everything needed to identify and execute one job.

    ``factory`` overrides the named :data:`TOOL_FACTORIES` entry (custom
    tools); it is excluded from equality because the job's semantic identity
    is the :class:`~repro.store.JobKey` built from the *instantiated* tool's
    fingerprint, not the factory object.
    """

    case: BenchmarkCase = field(repr=False)
    tool: str = "CoverMe"
    profile: Profile = field(default=None, repr=False)  # type: ignore[assignment]
    measure_lines: bool = False
    factory: Optional[Callable[[Profile], object]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.profile is None:
            raise ValueError("JobRequest requires a Profile")

    @property
    def id(self) -> str:
        return f"{self.case.key}/{self.tool}"

    def resolve_factory(self) -> Callable[[Profile], object]:
        if self.factory is not None:
            return self.factory
        try:
            return TOOL_FACTORIES[self.tool]
        except KeyError:
            known = ", ".join(sorted(TOOL_FACTORIES))
            raise ValueError(f"unknown tool {self.tool!r}; known: {known}") from None


def coverme_budget(profile: Profile) -> Budget:
    """CoverMe's budget: the profile's wall-clock allowance, unbounded count."""
    return Budget(max_seconds=profile.coverme_time_budget)


def baseline_budget(profile: Profile, coverme_effort: int) -> Budget:
    """A baseline's budget derived from CoverMe's measured effort (the
    paper's "ten times the CoverMe time" rule, execution-count analogue)."""
    return Budget(
        max_executions=max(
            profile.baseline_min_executions,
            profile.baseline_execution_factor * coverme_effort,
        ),
        max_seconds=(
            profile.coverme_time_budget * profile.baseline_execution_factor
            if profile.coverme_time_budget is not None
            else None
        ),
    )


def coverme_effort_from_payload(payload: Optional[dict], profile: Profile) -> int:
    """The baseline-budget reference effort given a CoverMe record payload."""
    if payload is None:
        return profile.baseline_min_executions
    return max(payload.get("tool_evaluations") or 0, profile.baseline_min_executions)


def derive_budget(request: JobRequest, store=None, resume: bool = True) -> Budget:
    """The budget a bare submission (no explicit budget) gets.

    CoverMe jobs take the profile's wall-clock budget.  Baselines derive
    from the case's stored CoverMe record under the same profile when one
    exists (matching the pipeline's CoverMe-first ordering); otherwise the
    profile's ``baseline_min_executions`` floor applies.  The derived budget
    is fingerprinted into the job key, so a baseline record is reused only
    when the CoverMe effort it was calibrated against is unchanged.
    """
    profile = request.profile
    if request.tool == "CoverMe":
        return coverme_budget(profile)
    payload = None
    if resume and store is not None:
        reference = JobRequest(case=request.case, tool="CoverMe", profile=profile)
        payload = store.get_satisfying(build_job_key(reference, coverme_budget(profile)))
    return baseline_budget(profile, coverme_effort_from_payload(payload, profile))


def build_job_key(request: JobRequest, budget: Budget, tool=None) -> JobKey:
    """The content address of a job: request + budget -> :class:`JobKey`."""
    profile = request.profile
    if tool is None:
        tool = request.resolve_factory()(profile)
    return JobKey(
        case_key=request.case.key,
        tool=request.tool,
        source_hash=source_hash(instrument_for_lookup(request.case)),
        tool_fingerprint=tool_fingerprint(tool),
        profile_fingerprint=profile_fingerprint(profile),
        budget_fingerprint=budget.fingerprint(),
        seed=profile.seed,
        measure_lines=request.measure_lines,
        domain=domain_tag(request.case),
        profile_name=profile.name,
    )


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


@dataclass
class ExecutedJob:
    """What one execution produced: the storable payload plus side-channel
    diagnostics (warnings) that must *not* enter the payload -- stored
    records stay byte-identical whether or not a tier degraded en route."""

    payload: dict
    warnings: list[str] = field(default_factory=list)


def execute_job(
    request: JobRequest,
    budget: Budget,
    progress: Optional[Callable[[dict], None]] = None,
    pool_factory: Optional[Callable] = None,
) -> ExecutedJob:
    """Execute one job and return its storable payload.

    This is the single execution choke point of the service layer: the tool
    is instantiated fresh (per-job seeding), the program comes from the
    warm per-process instrumentation cache, and warnings raised during the
    run (notably the one-time native-tier degradation ``RuntimeWarning``)
    are captured and surfaced in :attr:`ExecutedJob.warnings` instead of
    dying on a worker's stderr.  Warning capture uses the process-wide
    filter state, so under concurrent thread workers a warning may
    attribute to an overlapping job -- acceptable for diagnostics, and the
    payload itself is never affected.

    ``progress`` (when given and the tool is CoverMe) is attached as the
    engine's result-neutral batch observer; ``pool_factory`` (same
    condition) is attached as the engine's start-pool seam -- this is how
    a coordinator daemon swaps in its distributed
    :class:`~repro.distributed.coordinator.LeasePool`.  Both are excluded
    from fingerprints: they are result-neutral by the engine's contract.
    """
    program = instrument_for_lookup(request.case)
    tool = request.resolve_factory()(request.profile)
    if isinstance(getattr(tool, "config", None), CoverMeConfig):
        attach = {}
        if progress is not None:
            attach["progress"] = progress
        if pool_factory is not None:
            attach["pool_factory"] = pool_factory
        if attach:
            tool.config = dataclasses.replace(tool.config, **attach)
    captured: list[str] = []
    with _warnings.catch_warnings(record=True) as seen:
        _warnings.simplefilter("always")
        summary = run_tool(
            tool, program, budget, original=request.case.entry if request.measure_lines else None
        )
    for item in seen:
        captured.append(f"{item.category.__name__}: {item.message}")
    payload = {
        "summary": summary_to_dict(summary),
        "tool_evaluations": getattr(tool, "last_evaluations", None),
    }
    return ExecutedJob(payload=payload, warnings=captured)


def execute_job_remote(request: JobRequest, budget: Budget) -> tuple[dict, list[str]]:
    """Process-worker entry point: plain picklable in, plain picklable out.

    Runs in a persistent worker process, so the module-level
    instrumentation cache (and the specialization/native caches hanging off
    the instrumented programs) stays warm across the jobs routed to it.
    Progress streaming is not available across the process boundary; the
    coordinating service still emits queued/running/done events.
    """
    executed = execute_job(request, budget)
    return executed.payload, executed.warnings
