"""Bounded, sharded admission queue.

Admission is where the service says *no*: the queue holds at most
``limit`` pending jobs across all shards, and a non-blocking ``put`` on a
full queue raises :class:`QueueFull` -- which the HTTP daemon translates
into ``429 Too Many Requests``.  Blocking producers (the pipeline, which
would rather wait than drop work) park on the same condition until a
worker drains a slot.

Internally one deque per shard keeps per-shard FIFO order; workers take
from the set of shards they own and sleep when all of them are empty.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Optional, Sequence


class QueueFull(RuntimeError):
    """Raised when admission is refused (bounded queue at capacity)."""

    def __init__(self, limit: int):
        super().__init__(f"admission queue full ({limit} pending jobs); retry later")
        self.limit = limit


class QueueClosed(RuntimeError):
    """Raised when putting into (or draining from) a closed queue."""


class AdmissionQueue:
    """A bounded multi-shard FIFO with blocking and non-blocking admission."""

    def __init__(self, n_shards: int, limit: Optional[int] = None):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if limit is not None and limit < 1:
            raise ValueError("limit must be >= 1 (or None for unbounded)")
        self.limit = limit
        self._shards: list[deque] = [deque() for _ in range(n_shards)]
        self._cond = threading.Condition()
        self._pending = 0
        self._closed = False

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def put(self, job, shard: int, block: bool = True, timeout: Optional[float] = None) -> None:
        """Admit ``job`` into ``shard``.

        With ``block=False`` a full queue raises :class:`QueueFull`
        immediately (the daemon's backpressure path).  With ``block=True``
        the caller waits for a slot, up to ``timeout`` seconds
        (:class:`QueueFull` on expiry).
        """
        with self._cond:
            if self._closed:
                raise QueueClosed("admission queue is closed")
            while self.limit is not None and self._pending >= self.limit:
                if not block:
                    raise QueueFull(self.limit)
                if not self._cond.wait(timeout):
                    raise QueueFull(self.limit)
                if self._closed:
                    raise QueueClosed("admission queue is closed")
            self._shards[shard].append(job)
            self._pending += 1
            self._cond.notify_all()

    def take(self, shards: Sequence[int]):
        """Pop the next job from the first non-empty shard in ``shards``.

        Blocks until a job is available on one of the caller's shards or
        the queue closes; returns ``None`` on close (worker shutdown
        signal).
        """
        with self._cond:
            while True:
                for shard in shards:
                    if self._shards[shard]:
                        job = self._shards[shard].popleft()
                        self._pending -= 1
                        self._cond.notify_all()
                        return job
                if self._closed:
                    return None
                self._cond.wait()

    def close(self) -> list:
        """Close the queue, waking all waiters; returns the drained backlog."""
        with self._cond:
            self._closed = True
            drained = [job for shard in self._shards for job in shard]
            for shard in self._shards:
                shard.clear()
            self._pending = 0
            self._cond.notify_all()
        return drained

    def depths(self) -> list[int]:
        """Pending jobs per shard (a point-in-time snapshot for /stats)."""
        with self._cond:
            return [len(shard) for shard in self._shards]

    @property
    def pending(self) -> int:
        with self._cond:
            return self._pending
