"""Reproduction of "Achieving High Coverage for Floating-point Code via
Unconstrained Programming" (Fu & Su, PLDI 2017).

The package provides:

* :mod:`repro.core` -- the CoverMe algorithm: branch distances, the ``pen``
  penalty, the representing function ``FOO_R`` and the Algorithm 1 driver.
* :mod:`repro.instrument` -- a source-level instrumentation pass for Python
  functions (the reproduction's analogue of the paper's LLVM pass).
* :mod:`repro.engine` -- the search-engine subsystem: seeded start-point
  scheduling, serial/thread/process worker pools, and the batched
  multi-start loop with deterministic reduction.
* :mod:`repro.optimize` -- unconstrained programming backends: Powell,
  Nelder-Mead, compass search, MCMC basin-hopping, a SciPy adapter, and the
  backend registry that makes Step 3 pluggable.
* :mod:`repro.coverage` -- Gcov-like branch and line coverage measurement.
* :mod:`repro.fdlibm` -- a Python port of the Fdlibm 5.3 benchmark functions.
* :mod:`repro.baselines` -- the compared tools: random testing, an AFL-style
  greybox fuzzer, and an Austin-style search-based tester.
* :mod:`repro.experiments` -- harnesses regenerating every table and figure
  of the paper's evaluation section.

Quickstart::

    from repro import CoverMe, CoverMeConfig

    def foo(x, y):
        if x * x + y * y <= 1.0:
            if x > 0.5:
                return 1
            return 2
        return 3

    result = CoverMe(foo, CoverMeConfig(n_start=50, seed=0)).run()
    print(result.branch_coverage, result.inputs)
"""

from repro.core.config import CoverMeConfig
from repro.core.coverme import CoverMe, CoverMeResult
from repro.core.branch_distance import branch_distance
from repro.core.representing import RepresentingFunction
from repro.core.saturation import SaturationTracker
from repro.engine import SearchEngine, StartScheduler
from repro.instrument.program import InstrumentedProgram, instrument
from repro.instrument.runtime import BranchId, ExecutionProfile
from repro.optimize.registry import available_backends, get_backend, register_backend

__version__ = "1.2.0"

__all__ = [
    "CoverMe",
    "CoverMeConfig",
    "CoverMeResult",
    "RepresentingFunction",
    "SaturationTracker",
    "SearchEngine",
    "StartScheduler",
    "InstrumentedProgram",
    "instrument",
    "BranchId",
    "ExecutionProfile",
    "available_backends",
    "branch_distance",
    "get_backend",
    "register_backend",
    "__version__",
]
