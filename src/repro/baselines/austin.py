"""An Austin-style search-based tester (Lakhotia et al., used in Table 3).

Austin combines symbolic execution with search-based heuristics; its search
core is Korel's *alternating variable method* (AVM).  This reimplementation
keeps the structural characteristics that shape the paper's Table 3:

* the tool works **per target branch**: it iterates over uncovered branches
  and runs a fresh search for each one, which is why its runtime grows so much
  faster than CoverMe's single-objective minimization;
* the fitness of an input w.r.t. a target branch is the classic
  ``approach level + normalized branch distance``, computed from the same
  execution records the instrumentation produces;
* AVM performs exploratory moves (+-delta on one variable at a time) followed
  by geometrically accelerated pattern moves while the fitness improves, and
  restarts from a random point on stagnation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.baselines.harness import Budget
from repro.instrument.program import InstrumentedProgram
from repro.instrument.runtime import BranchId, Runtime


def _normalize(distance: float) -> float:
    """Standard SBST normalization mapping [0, inf) to [0, 1)."""
    return distance / (distance + 1.0)


@dataclass
class AustinTester:
    """Alternating-variable-method search, one search per uncovered branch."""

    seed: Optional[int] = None
    exploratory_step: float = 0.1
    max_pattern_doublings: int = 40
    restarts_per_target: int = 2
    executions_per_target: int = 250
    name: str = "Austin"

    def generate(self, program: InstrumentedProgram, budget: Budget) -> list[tuple[float, ...]]:
        rng = np.random.default_rng(self.seed)
        clock = budget.start()
        covered: set[BranchId] = set()
        kept: list[tuple[float, ...]] = []

        def execute(args: tuple[float, ...]):
            runtime = Runtime(policy=None)
            _, _, record = program.run(args, runtime=runtime)
            clock.consume()
            new = record.covered - covered
            if new:
                covered.update(record.covered)
                kept.append(args)
            return record

        # Seed with a handful of simple inputs, as Austin does with default values.
        for seed_value in (0.0, 1.0, -1.0):
            if clock.exhausted():
                break
            execute(tuple([seed_value] * program.arity))

        for target in sorted(program.all_branches):
            if clock.exhausted():
                break
            if target in covered:
                continue
            self._search_target(program, target, covered, execute, rng, clock)
        return kept

    # -- per-target AVM search ------------------------------------------------------

    def _fitness(self, program: InstrumentedProgram, record, target: BranchId) -> float:
        """Approach level plus normalized branch distance towards ``target``."""
        if target in record.covered:
            return 0.0
        executed = {outcome.conditional: outcome for outcome in record.path}
        if target.conditional in executed:
            outcome = executed[target.conditional]
            distance = (
                outcome.distance_true if target.outcome else outcome.distance_false
            )
            return _normalize(distance if distance is not None else 1.0)
        # The target conditional was not even reached: approach level is the
        # number of executed conditionals that could still lead to it, counted
        # from the point of divergence, plus the distance at that divergence.
        approach = 1.0
        best = None
        for outcome in reversed(record.path):
            reachable = program.descendants.descendant_conditionals(
                BranchId(outcome.conditional, not outcome.outcome)
            )
            if target.conditional in reachable:
                distance = (
                    outcome.distance_false if outcome.outcome else outcome.distance_true
                )
                best = _normalize(distance if distance is not None else 1.0)
                break
            approach += 1.0
        if best is None:
            best = 1.0
        return approach + best

    def _search_target(self, program, target, covered, execute, rng, clock) -> None:
        for restart in range(self.restarts_per_target):
            if clock.exhausted() or target in covered:
                return
            if restart == 0:
                point = np.zeros(program.arity)
            else:
                # Random restarts sample the signature's declared input
                # domain -- the same box Rand draws from -- so per-case
                # domains apply to the AVM search too.  On the benchmark
                # suite (signature box +-1e6) this is deliberately wider
                # than the +-1e3 this tool hardcoded before domains existed.
                point = rng.uniform(
                    np.asarray(program.signature.low, dtype=float),
                    np.asarray(program.signature.high, dtype=float),
                )
            budget_left = self.executions_per_target
            record = execute(tuple(point))
            budget_left -= 1
            fitness = self._fitness(program, record, target)
            improved = True
            while improved and budget_left > 0 and not clock.exhausted():
                if target in covered:
                    return
                improved = False
                for variable in range(program.arity):
                    for direction in (+1.0, -1.0):
                        if budget_left <= 0 or clock.exhausted():
                            return
                        step = self.exploratory_step
                        candidate = point.copy()
                        candidate[variable] += direction * step
                        record = execute(tuple(candidate))
                        budget_left -= 1
                        candidate_fitness = self._fitness(program, record, target)
                        if candidate_fitness < fitness:
                            # Pattern moves: keep doubling while improving.
                            point, fitness = candidate, candidate_fitness
                            improved = True
                            for _ in range(self.max_pattern_doublings):
                                if budget_left <= 0 or clock.exhausted() or fitness == 0.0:
                                    break
                                step *= 2.0
                                candidate = point.copy()
                                candidate[variable] += direction * step
                                record = execute(tuple(candidate))
                                budget_left -= 1
                                candidate_fitness = self._fitness(program, record, target)
                                if candidate_fitness < fitness:
                                    point, fitness = candidate, candidate_fitness
                                else:
                                    break
                            break
                    if improved:
                        break
