"""Baseline testing tools the paper compares against (Sect. 6.1).

* :mod:`repro.baselines.random_testing` -- "Rand", pure random testing.
* :mod:`repro.baselines.afl` -- an AFL-style coverage-guided greybox fuzzer
  (byte-level mutations over the raw IEEE-754 representation of the inputs).
* :mod:`repro.baselines.austin` -- an Austin-style search-based tester using
  the alternating variable method with approach-level + branch-distance
  fitness, one search per uncovered branch.
* :mod:`repro.baselines.harness` -- the shared tool-runner interface and
  budget accounting used by the experiment harnesses.
"""

from repro.baselines.afl import AFLFuzzer
from repro.baselines.austin import AustinTester
from repro.baselines.harness import Budget, TestingTool, run_tool
from repro.baselines.random_testing import RandomTester

__all__ = [
    "AFLFuzzer",
    "AustinTester",
    "Budget",
    "RandomTester",
    "TestingTool",
    "run_tool",
]
