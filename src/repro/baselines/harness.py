"""Shared infrastructure for running testing tools under a budget.

The paper gives Rand and AFL ten times CoverMe's wall-clock time (Sect. 6.1).
Wall-clock comparisons are noisy in a pure-Python reproduction, so the budget
is expressed both as a wall-clock limit and as a limit on the number of
program executions; whichever is hit first stops the tool.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Protocol, Sequence

from repro.coverage.branch import BranchCoverage
from repro.core.report import ToolRunSummary
from repro.instrument.program import InstrumentedProgram


@dataclass
class Budget:
    """Execution budget for one tool run."""

    max_executions: Optional[int] = None
    max_seconds: Optional[float] = None

    def start(self) -> "BudgetClock":
        return BudgetClock(self)

    def fingerprint(self) -> str:
        """Content fingerprint of the budget for run-store job keys.

        Baseline budgets are *derived* (ten-times-CoverMe's-effort rule), so
        the derived values are part of a baseline job's identity: a cached
        run is only reusable if it was granted the same budget.
        """
        from repro.store.serialize import fingerprint_of

        payload = {"max_executions": self.max_executions, "max_seconds": self.max_seconds}
        return fingerprint_of(payload)[:16]


@dataclass
class BudgetClock:
    """Tracks consumption of a :class:`Budget`."""

    budget: Budget
    executions: int = 0
    started_at: float = 0.0

    def __post_init__(self) -> None:
        self.started_at = time.perf_counter()

    def consume(self, executions: int = 1) -> None:
        self.executions += executions

    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self.started_at

    def exhausted(self) -> bool:
        if self.budget.max_executions is not None and self.executions >= self.budget.max_executions:
            return True
        if self.budget.max_seconds is not None and self.elapsed >= self.budget.max_seconds:
            return True
        return False


class TestingTool(Protocol):
    """Interface every baseline tool (and the CoverMe adapter) implements."""

    name: str

    def generate(
        self, program: InstrumentedProgram, budget: Budget
    ) -> list[tuple[float, ...]]:
        """Produce test inputs for ``program`` within ``budget``."""
        ...  # pragma: no cover - protocol


def run_tool(
    tool: TestingTool,
    program: InstrumentedProgram,
    budget: Budget,
    original: Optional[Callable] = None,
) -> ToolRunSummary:
    """Run ``tool`` on ``program`` and measure the coverage of its inputs."""
    started = time.perf_counter()
    inputs = tool.generate(program, budget)
    elapsed = time.perf_counter() - started
    coverage = BranchCoverage(program)
    coverage.run_all(inputs)
    summary = ToolRunSummary(
        tool=tool.name,
        program=program.name,
        n_branches=coverage.n_branches,
        covered_branches=coverage.n_covered,
        wall_time=elapsed,
        executions=coverage.executions,
        inputs=list(inputs),
    )
    if original is not None:
        from repro.coverage.line import LineCoverage

        lines = LineCoverage(original)
        lines.run_all(inputs)
        summary.n_lines = lines.n_lines
        summary.covered_lines = lines.n_covered
    return summary


def clip_inputs(inputs: Sequence[Sequence[float]], limit: int) -> list[tuple[float, ...]]:
    """Keep at most ``limit`` inputs (used to bound replay costs)."""
    return [tuple(float(v) for v in item) for item in list(inputs)[:limit]]
