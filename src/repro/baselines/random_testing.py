""""Rand": pure random testing baseline (Sect. 6.1).

Inputs are drawn uniformly from a bounded box -- by default the program
signature's declared input domain, so per-case domains (e.g. ``scalb``'s
exponent band) apply to Rand exactly as they do to the box-aware start
strategies.  Like the tool the paper implemented with a pseudo-random number
generator, Rand has no feedback: it keeps every input that increased branch
coverage and discards the rest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.baselines.harness import Budget
from repro.coverage.branch import BranchCoverage
from repro.instrument.program import InstrumentedProgram


@dataclass
class RandomTester:
    """Uniform random input generation with coverage-based retention.

    ``low``/``high`` override the sampling box uniformly across dimensions;
    when ``None`` (the default) the box is the program signature's
    per-dimension input domain.
    """

    low: Optional[float] = None
    high: Optional[float] = None
    seed: Optional[int] = None
    name: str = "Rand"

    def generate(self, program: InstrumentedProgram, budget: Budget) -> list[tuple[float, ...]]:
        rng = np.random.default_rng(self.seed)
        clock = budget.start()
        coverage = BranchCoverage(program)
        low = (
            np.full(program.arity, float(self.low))
            if self.low is not None
            else np.asarray(program.signature.low, dtype=float)
        )
        high = (
            np.full(program.arity, float(self.high))
            if self.high is not None
            else np.asarray(program.signature.high, dtype=float)
        )
        kept: list[tuple[float, ...]] = []
        while not clock.exhausted():
            args = tuple(float(v) for v in rng.uniform(low, high))
            new = coverage.run(args)
            clock.consume()
            if new:
                kept.append(args)
            if coverage.is_complete():
                break
        return kept
