""""Rand": pure random testing baseline (Sect. 6.1).

Inputs are drawn uniformly from a bounded box.  Like the tool the paper
implemented with a pseudo-random number generator, Rand has no feedback: it
keeps every input that increased branch coverage and discards the rest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.baselines.harness import Budget
from repro.coverage.branch import BranchCoverage
from repro.instrument.program import InstrumentedProgram


@dataclass
class RandomTester:
    """Uniform random input generation with coverage-based retention."""

    low: float = -1.0e6
    high: float = 1.0e6
    seed: Optional[int] = None
    name: str = "Rand"

    def generate(self, program: InstrumentedProgram, budget: Budget) -> list[tuple[float, ...]]:
        rng = np.random.default_rng(self.seed)
        clock = budget.start()
        coverage = BranchCoverage(program)
        kept: list[tuple[float, ...]] = []
        while not clock.exhausted():
            args = tuple(float(v) for v in rng.uniform(self.low, self.high, size=program.arity))
            new = coverage.run(args)
            clock.consume()
            if new:
                kept.append(args)
            if coverage.is_complete():
                break
        return kept
