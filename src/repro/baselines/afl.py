"""An AFL-style coverage-guided greybox fuzzer.

Reproduces the mechanism that gives AFL its shape in the paper's Table 2:

* inputs are treated as raw byte strings (8 bytes per ``double`` argument),
* a seed queue is maintained; each queue entry goes through a deterministic
  stage (walking bit flips, interesting-value substitutions) and a "havoc"
  stage of stacked random mutations (bit flips, byte arithmetic, interesting
  8/16/32/64-bit values, block copies),
* an execution is added to the queue whenever it exercises a new coverage
  tuple (branch, bucketed hit count) -- AFL's edge-coverage bitmap adapted to
  the branch identifiers of our instrumentation.

Byte-level mutation explores the exponent/sign structure of doubles well
(hence AFL's decent coverage in the paper) but has no notion of arithmetic
distance to a target branch, which is why it trails CoverMe on equalities and
narrow thresholds.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.baselines.harness import Budget
from repro.instrument.program import InstrumentedProgram
from repro.instrument.runtime import Runtime

#: Interesting byte/word values, following AFL's integer-oriented tables
#: (AFL knows nothing about IEEE-754; special doubles are only reached when
#: bit flips or these integer patterns happen to form them).
INTERESTING_8 = [0, 1, 16, 32, 64, 100, 127, 128, 255]
INTERESTING_32 = [0, 1, 32768, 65535, 65536, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF]
INTERESTING_64 = [
    0x0000000000000000,
    0x0000000000000001,
    0x00000000FFFFFFFF,
    0x7FFFFFFFFFFFFFFF,
    0x8000000000000000,
    0xFFFFFFFFFFFFFFFF,
]


def _bucket(count: int) -> int:
    """AFL's hit-count bucketing."""
    if count <= 3:
        return count
    if count <= 7:
        return 4
    if count <= 15:
        return 8
    if count <= 31:
        return 16
    if count <= 127:
        return 32
    return 128


@dataclass
class _QueueEntry:
    data: bytearray
    coverage_keys: frozenset = frozenset()


@dataclass
class AFLFuzzer:
    """Coverage-guided greybox fuzzer over the byte encoding of the inputs."""

    seed: Optional[int] = None
    havoc_stacking: int = 8
    havoc_rounds: int = 64
    name: str = "AFL"
    _rng: np.random.Generator = field(init=False, repr=False, default=None)

    def generate(self, program: InstrumentedProgram, budget: Budget) -> list[tuple[float, ...]]:
        self._rng = np.random.default_rng(self.seed)
        clock = budget.start()
        n_bytes = 8 * program.arity
        seen_tuples: set[tuple[int, bool, int]] = set()
        covered_branches: set = set()
        kept: list[tuple[float, ...]] = []
        queue: list[_QueueEntry] = []

        def run(data: bytearray) -> bool:
            """Execute one input; return True if it yields new coverage."""
            args = self._decode(data, program.arity)
            runtime = Runtime(policy=None)
            _, _, record = program.run(args, runtime=runtime)
            clock.consume()
            counts: dict[tuple[int, bool], int] = {}
            for outcome in record.path:
                key = (outcome.conditional, outcome.outcome)
                counts[key] = counts.get(key, 0) + 1
            keys = {(cond, taken, _bucket(count)) for (cond, taken), count in counts.items()}
            new_tuples = keys - seen_tuples
            new_branches = record.covered - covered_branches
            if new_tuples or new_branches:
                seen_tuples.update(keys)
                covered_branches.update(record.covered)
                queue.append(_QueueEntry(bytearray(data), frozenset(keys)))
                if new_branches:
                    kept.append(args)
                return True
            return False

        # Seed corpus: zeros, ones, and a handful of random byte strings.
        run(bytearray(n_bytes))
        run(bytearray(struct.pack("<%dd" % program.arity, *([1.0] * program.arity))))
        for _ in range(4):
            if clock.exhausted():
                break
            run(bytearray(self._rng.integers(0, 256, size=n_bytes, dtype=np.uint8).tobytes()))

        cursor = 0
        while not clock.exhausted() and queue:
            entry = queue[cursor % len(queue)]
            cursor += 1
            self._deterministic_stage(entry.data, run, clock)
            self._havoc_stage(entry.data, run, clock)
        return kept

    # -- mutation stages ---------------------------------------------------------

    def _deterministic_stage(self, data: bytearray, run, clock) -> None:
        """Walking bit flips and interesting-value substitutions."""
        for bit in range(len(data) * 8):
            if clock.exhausted():
                return
            mutated = bytearray(data)
            mutated[bit // 8] ^= 1 << (bit % 8)
            run(mutated)
        for offset in range(0, len(data) - 7, 8):
            for value in INTERESTING_64:
                if clock.exhausted():
                    return
                mutated = bytearray(data)
                mutated[offset : offset + 8] = struct.pack("<Q", value)
                run(mutated)

    def _havoc_stage(self, data: bytearray, run, clock) -> None:
        """Stacked random mutations, AFL's havoc phase."""
        rng = self._rng
        for _ in range(self.havoc_rounds):
            if clock.exhausted():
                return
            mutated = bytearray(data)
            for _ in range(int(rng.integers(1, self.havoc_stacking + 1))):
                choice = int(rng.integers(0, 6))
                pos = int(rng.integers(0, len(mutated)))
                if choice == 0:  # flip a random bit
                    mutated[pos] ^= 1 << int(rng.integers(0, 8))
                elif choice == 1:  # set a random interesting byte
                    mutated[pos] = int(rng.choice(INTERESTING_8))
                elif choice == 2:  # random byte arithmetic
                    mutated[pos] = (mutated[pos] + int(rng.integers(-35, 36))) & 0xFF
                elif choice == 3:  # random byte value
                    mutated[pos] = int(rng.integers(0, 256))
                elif choice == 4 and len(mutated) >= 4:  # interesting 32-bit word
                    offset = int(rng.integers(0, len(mutated) - 3))
                    mutated[offset : offset + 4] = struct.pack(
                        "<I", int(rng.choice(INTERESTING_32)) & 0xFFFFFFFF
                    )
                else:  # copy a block from another position
                    length = int(rng.integers(1, min(8, len(mutated)) + 1))
                    src = int(rng.integers(0, len(mutated) - length + 1))
                    dst = int(rng.integers(0, len(mutated) - length + 1))
                    mutated[dst : dst + length] = mutated[src : src + length]
            run(mutated)

    # -- helpers -------------------------------------------------------------------

    @staticmethod
    def _decode(data: bytearray, arity: int) -> tuple[float, ...]:
        values = struct.unpack("<%dd" % arity, bytes(data[: 8 * arity]))
        return tuple(float(v) for v in values)
