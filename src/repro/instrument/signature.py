"""Input-domain descriptions for programs under test.

The paper restricts the inputs of ``FOO`` to floating-point scalars (and
pointers to them, which are reduced to scalars, Sect. 5.3).  A
:class:`ProgramSignature` captures the arity of the Python function under
test plus optional sampling bounds used by random starting points and the
baseline tools.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field


@dataclass(frozen=True)
class ProgramSignature:
    """Describes the floating-point input domain of a program under test.

    Attributes:
        name: Human-readable name of the entry function.
        arity: Number of ``double`` input parameters.
        low: Per-dimension lower bounds used when sampling random inputs.
        high: Per-dimension upper bounds used when sampling random inputs.
    """

    name: str
    arity: int
    low: tuple[float, ...] = field(default=())
    high: tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.arity < 1:
            raise ValueError(f"arity must be >= 1, got {self.arity}")
        low = self.low or tuple([-1.0e3] * self.arity)
        high = self.high or tuple([1.0e3] * self.arity)
        if len(low) != self.arity or len(high) != self.arity:
            raise ValueError("bounds must match arity")
        object.__setattr__(self, "low", tuple(float(v) for v in low))
        object.__setattr__(self, "high", tuple(float(v) for v in high))

    @classmethod
    def from_callable(
        cls,
        func,
        low: tuple[float, ...] | None = None,
        high: tuple[float, ...] | None = None,
    ) -> "ProgramSignature":
        """Derive a signature from a Python callable's positional parameters."""
        params = inspect.signature(func).parameters
        arity = sum(
            1
            for p in params.values()
            if p.kind
            in (inspect.Parameter.POSITIONAL_ONLY, inspect.Parameter.POSITIONAL_OR_KEYWORD)
        )
        return cls(
            name=getattr(func, "__name__", "anonymous"),
            arity=arity,
            low=low or (),
            high=high or (),
        )
