"""The AST instrumentation pass (analogue of the paper's LLVM pass).

For every conditional statement ``l_i`` (``if`` or ``while``) of the program
under test, the pass rewrites the test expression so that it is evaluated
through the installed :class:`~repro.instrument.runtime.Runtime`:

``if a <= b:``  becomes  ``if rt.test(i, "<=", a, b):``

The fused ``rt.test`` probe computes the branch distance of Def. 4.1,
applies the ``pen`` update of Def. 4.2 to the injected register ``r``,
records coverage and returns the Boolean outcome, so the control flow of the
program is unchanged.  This is exactly the effect of the paper's injected
``r = pen(l_i, op, a, b)`` assignment placed before ``l_i``, paid for with a
single probe call on the hot path.

Boolean combinations of comparisons (``a < b and c < d``) are supported as an
extension: each comparison is instrumented individually via ``rt.cmp`` and
the distances are composed by ``rt.resolve``:

``if a < b and c < d:``  becomes
``if rt.resolve(i, "and", rt.cmp(i, "<", a, b) and rt.cmp(i, "<", c, d)):``

Tests that are not comparisons over numbers fall back to
:meth:`Runtime.truth`, mirroring how CoverMe promotes integer comparisons and
ignores incomparable conditions (Sect. 5.3).
"""

from __future__ import annotations

import ast
import textwrap
from dataclasses import dataclass

#: Name under which the runtime handle is made visible to instrumented code.
HANDLE_NAME = "__coverme_rt__"

_AST_OPS = {
    ast.Eq: "==",
    ast.NotEq: "!=",
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Gt: ">",
    ast.GtE: ">=",
}

_NEGATED = {"==": "!=", "!=": "==", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


@dataclass(frozen=True)
class ConditionalInfo:
    """Static description of one labeled conditional statement."""

    label: int
    kind: str  # "if" or "while"
    lineno: int
    source: str


def collect_conditionals(node: ast.AST) -> list[ast.stmt]:
    """Return the ``if``/``while`` statements of ``node`` in source order.

    Nested function and class definitions are not descended into: CoverMe
    instruments one entry function at a time (Sect. 5.3).
    """
    found: list[ast.stmt] = []

    def visit_block(stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, ast.If):
                found.append(stmt)
                visit_block(stmt.body)
                visit_block(stmt.orelse)
            elif isinstance(stmt, ast.While):
                found.append(stmt)
                visit_block(stmt.body)
                visit_block(stmt.orelse)
            elif isinstance(stmt, ast.For):
                visit_block(stmt.body)
                visit_block(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                visit_block(stmt.body)
                for handler in stmt.handlers:
                    visit_block(handler.body)
                visit_block(stmt.orelse)
                visit_block(stmt.finalbody)
            elif isinstance(stmt, ast.With):
                visit_block(stmt.body)

    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
        visit_block(node.body)
    else:
        raise TypeError(f"expected a function or module node, got {type(node).__name__}")
    return found


def assign_labels(
    node: ast.AST, start: int = 0
) -> tuple[dict[int, int], list[ast.stmt]]:
    """Assign consecutive labels to the conditionals of ``node``.

    Returns a mapping from ``id(stmt)`` to label, plus the ordered statements.
    """
    stmts = collect_conditionals(node)
    labels = {id(stmt): start + index for index, stmt in enumerate(stmts)}
    return labels, stmts


class InstrumentationPass(ast.NodeTransformer):
    """Rewrites conditional tests into runtime probe calls."""

    def __init__(self, labels: dict[int, int], handle_name: str = HANDLE_NAME):
        self.labels = labels
        self.handle_name = handle_name
        self.conditionals: list[ConditionalInfo] = []

    # -- statement visitors ----------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> ast.AST:
        # Only the outermost function is transformed; nested defs are left as-is.
        node.body = [self.visit(stmt) for stmt in node.body]
        return node

    def visit_If(self, node: ast.If) -> ast.AST:
        self.generic_visit(node)
        return self._instrument_test(node, "if")

    def visit_While(self, node: ast.While) -> ast.AST:
        self.generic_visit(node)
        return self._instrument_test(node, "while")

    def visit_Lambda(self, node: ast.Lambda) -> ast.AST:
        return node

    def visit_ClassDef(self, node: ast.ClassDef) -> ast.AST:
        return node

    # -- helpers ----------------------------------------------------------------

    def _instrument_test(self, node, kind: str):
        label = self.labels.get(id(node))
        if label is None:
            return node
        try:
            source = ast.unparse(node.test)
        except Exception:  # pragma: no cover - unparse is best-effort metadata
            source = "<unprintable>"
        self.conditionals.append(
            ConditionalInfo(label=label, kind=kind, lineno=getattr(node, "lineno", 0), source=source)
        )
        node.test = self._rewrite_test(label, node.test)
        return node

    def _rewrite_test(self, label: int, test: ast.expr) -> ast.expr:
        simple = self._as_simple_comparison(test)
        if simple is not None:
            # Single comparison: one fused probe call (the hot path).
            op, lhs, rhs = simple
            return self._call(
                "test", [ast.Constant(label), ast.Constant(op), lhs, rhs]
            )
        if isinstance(test, ast.BoolOp):
            parts = [self._as_simple_comparison(value) for value in test.values]
            if all(part is not None for part in parts):
                mode = "and" if isinstance(test.op, ast.And) else "or"
                new_values = [
                    self._cmp_call(label, op, lhs, rhs) for op, lhs, rhs in parts  # type: ignore[misc]
                ]
                boolop = ast.BoolOp(op=test.op, values=new_values)
                return self._call(
                    "resolve", [ast.Constant(label), ast.Constant(mode), boolop]
                )
        # Fallback: record coverage (and a promoted ``!= 0`` distance when the
        # value turns out to be numeric at run time).
        return self._call("truth", [ast.Constant(label), test])

    def _as_simple_comparison(self, test: ast.expr):
        """Return ``(op, lhs, rhs)`` if ``test`` is a supported comparison."""
        if (
            isinstance(test, ast.UnaryOp)
            and isinstance(test.op, ast.Not)
            and isinstance(test.operand, ast.Compare)
        ):
            inner = self._as_simple_comparison(test.operand)
            if inner is not None:
                op, lhs, rhs = inner
                return _NEGATED[op], lhs, rhs
            return None
        if isinstance(test, ast.Compare) and len(test.ops) == 1 and len(test.comparators) == 1:
            op_type = type(test.ops[0])
            if op_type in _AST_OPS:
                return _AST_OPS[op_type], test.left, test.comparators[0]
        return None

    def _cmp_call(self, label: int, op: str, lhs: ast.expr, rhs: ast.expr) -> ast.Call:
        return self._call("cmp", [ast.Constant(label), ast.Constant(op), lhs, rhs])

    def _call(self, method: str, args: list[ast.expr]) -> ast.Call:
        return ast.Call(
            func=ast.Attribute(
                value=ast.Name(id=self.handle_name, ctx=ast.Load()),
                attr=method,
                ctx=ast.Load(),
            ),
            args=args,
            keywords=[],
        )


def instrument_source(
    source: str, function_name: str | None = None, start_label: int = 0
) -> tuple[ast.Module, list[ConditionalInfo], dict[int, int], ast.FunctionDef]:
    """Parse and instrument the source of a single function.

    Returns the transformed module AST, the conditional metadata, the label
    mapping (on the *original* statement objects, which are mutated in place
    by the transformer but keep their identity), and the function node.
    """
    tree = ast.parse(textwrap.dedent(source))
    func_node = None
    for stmt in tree.body:
        if isinstance(stmt, ast.FunctionDef) and (
            function_name is None or stmt.name == function_name
        ):
            func_node = stmt
            break
    if func_node is None:
        raise ValueError(
            f"could not find function {function_name!r} in the provided source"
        )
    func_node.decorator_list = []
    labels, _ = assign_labels(func_node, start=start_label)
    instrumentation = InstrumentationPass(labels)
    instrumentation.visit(func_node)
    ast.fix_missing_locations(tree)
    return tree, instrumentation.conditionals, labels, func_node
