"""The AST instrumentation pass (analogue of the paper's LLVM pass).

For every conditional statement ``l_i`` (``if`` or ``while``) of the program
under test, the pass rewrites the test expression so that it is evaluated
through the installed :class:`~repro.instrument.runtime.Runtime`:

``if a <= b:``  becomes  ``if rt.test(i, "<=", a, b):``

The fused ``rt.test`` probe computes the branch distance of Def. 4.1,
applies the ``pen`` update of Def. 4.2 to the injected register ``r``,
records coverage and returns the Boolean outcome, so the control flow of the
program is unchanged.  This is exactly the effect of the paper's injected
``r = pen(l_i, op, a, b)`` assignment placed before ``l_i``, paid for with a
single probe call on the hot path.

Beyond single comparisons, the pass lowers the *complete* conditional
language of Sect. 5.3 into leaf probes plus a constant postfix *composition
program* resolved by ``rt.resolve`` (see the runtime module docstring for
the token encoding):

* **Boolean trees** -- arbitrarily nested ``and``/``or`` combinations
  (``a < b or (c < d and e < f)``): every comparison becomes an indexed
  ``rt.cmp`` leaf, non-comparison operands (``_isnan(x) or flag``) become
  ``rt.tleaf`` leaves whose value is promoted to a ``!= 0`` distance;
* **negation** -- ``not`` over a tree is pushed to the leaves by De Morgan
  (comparison operators flip, ``and``/``or`` swap, truthiness leaves carry a
  negation flag), so no distance information is lost;
* **chained comparisons** -- ``a < b < c`` becomes the conjunction
  ``a < b and b < c`` with walrus temporaries so every operand is evaluated
  exactly once and short-circuiting matches Python's chain semantics;
* **ternary tests** -- ``a if c else b`` keeps its conditional-expression
  shape and composes as ``(c and a) or (not c and b)``, re-using the
  condition's leaf distances for both sides.

Tests that none of the above covers -- a bare name, call or arithmetic
expression such as ``if m & 1:`` -- use the fused :meth:`Runtime.truth`
probe, which promotes numeric values to the comparison ``value != 0`` per
Sect. 5.3 (form ``"promoted"``).  Only tests the lowering *declines* (trees
beyond :data:`MAX_TREE_LEAVES`/:data:`MAX_TREE_TOKENS`, or unexpected
expression shapes) degrade to the distance-blind ``truth`` fallback, and
those are observable through ``ConditionalInfo.form == "truth"`` /
``InstrumentedProgram.fallback_conditionals``.
"""

from __future__ import annotations

import ast
import textwrap
from dataclasses import dataclass
from typing import Iterator

from repro.instrument.runtime import TREE_NOT, tree_and, tree_or

#: Name under which the runtime handle is made visible to instrumented code.
HANDLE_NAME = "__coverme_rt__"

#: Prefix of the single-evaluation temporaries injected for chained
#: comparisons; the suffix counter is unique within one instrumented function.
TEMP_NAME_PREFIX = "__coverme_tmp"

#: Ceilings above which a Boolean tree degrades to the ``truth`` fallback
#: instead of a composition program (keeps probe programs and the runtimes'
#: composition stacks small; real code never comes close).
MAX_TREE_LEAVES = 64
MAX_TREE_TOKENS = 512

_AST_OPS = {
    ast.Eq: "==",
    ast.NotEq: "!=",
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Gt: ">",
    ast.GtE: ">=",
}

_NEGATED = {"==": "!=", "!=": "==", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}

_SKIPPED_STATEMENTS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)

_TRY_STATEMENTS = (ast.Try, ast.TryStar) if hasattr(ast, "TryStar") else (ast.Try,)

#: The conditional forms the pass emits, in the order of the README table.
CONDITIONAL_FORMS = (
    "simple",      # one comparison -> fused rt.test probe
    "negated",     # ``not`` over one comparison -> fused probe, operator flipped
    "boolean",     # (nested) and/or tree -> leaf probes + composition program
    "chained",     # a < b < c -> conjunction with single-evaluation temporaries
    "ternary",     # a if c else b -> (c and a) or (not c and b) composition
    "promoted",    # bare non-comparison test -> rt.truth, value promoted != 0
    "truth",       # fallback: coverage only unless numeric at run time
)


class _LoweringOverflow(Exception):
    """Raised when a Boolean tree exceeds the leaf/token ceilings."""


def strip_not(test: ast.expr) -> tuple[ast.expr, bool]:
    """Peel ``not`` wrappers off a test, returning the core and the parity.

    Shared by the instrumentation pass and the saturation specializer
    (:mod:`repro.instrument.specialize`) so both classify a conditional's
    shape identically.
    """
    negated = False
    while isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        negated = not negated
        test = test.operand
    return test, negated


def is_chain(test: ast.expr) -> bool:
    """Whether ``test`` is a chained comparison over supported operators."""
    return (
        isinstance(test, ast.Compare)
        and len(test.ops) > 1
        and all(type(op) in _AST_OPS for op in test.ops)
    )


def as_simple_comparison(test: ast.expr):
    """Return ``(op, lhs, rhs, negated)`` if ``test`` is one comparison.

    ``op`` already folds an odd number of ``not`` wrappers (the operator is
    flipped), exactly as the fused ``rt.test`` probe is emitted.
    """
    test, negated = strip_not(test)
    if isinstance(test, ast.Compare) and len(test.ops) == 1 and len(test.comparators) == 1:
        op_type = type(test.ops[0])
        if op_type in _AST_OPS:
            op = _AST_OPS[op_type]
            if negated:
                op = _NEGATED[op]
            return op, test.left, test.comparators[0], negated
    return None


@dataclass(frozen=True)
class ConditionalInfo:
    """Static description of one labeled conditional statement."""

    label: int
    kind: str  # "if" or "while"
    lineno: int
    source: str
    form: str = "simple"  # one of CONDITIONAL_FORMS


def iter_child_blocks(stmt: ast.stmt) -> Iterator[list[ast.stmt]]:
    """Yield the statement blocks nested directly inside ``stmt``, in source order.

    This is the single definition of "where can statements hide" shared by
    :func:`collect_conditionals` and the descendant analysis in
    :mod:`repro.instrument.cfg`, so the two walkers cannot drift apart:
    ``try``/``except``/``except*`` handler bodies, ``match`` case bodies,
    ``else``/``finally`` blocks and plain bodies all come from here.
    """
    if isinstance(stmt, _TRY_STATEMENTS):
        yield stmt.body
        for handler in stmt.handlers:
            yield handler.body
        yield stmt.orelse
        yield stmt.finalbody
        return
    if isinstance(stmt, ast.Match):
        for case in stmt.cases:
            yield case.body
        return
    body = getattr(stmt, "body", None)
    if isinstance(body, list):
        yield body
    orelse = getattr(stmt, "orelse", None)
    if isinstance(orelse, list) and orelse:
        yield orelse


def collect_conditionals(node: ast.AST) -> list[ast.stmt]:
    """Return the ``if``/``while`` statements of ``node`` in source order.

    Every statement form with nested blocks (loops, ``with``, ``try`` and
    ``try*`` handlers, ``match`` cases) is descended through via
    :func:`iter_child_blocks`.  Nested function and class definitions are not
    descended into: CoverMe instruments one entry function at a time
    (Sect. 5.3).
    """
    found: list[ast.stmt] = []

    def visit_block(stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, _SKIPPED_STATEMENTS):
                continue
            if isinstance(stmt, (ast.If, ast.While)):
                found.append(stmt)
            for block in iter_child_blocks(stmt):
                visit_block(block)

    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
        visit_block(node.body)
    else:
        raise TypeError(f"expected a function or module node, got {type(node).__name__}")
    return found


def assign_labels(
    node: ast.AST, start: int = 0
) -> tuple[dict[int, int], list[ast.stmt]]:
    """Assign consecutive labels to the conditionals of ``node``.

    Returns a mapping from ``id(stmt)`` to label, plus the ordered statements.
    """
    stmts = collect_conditionals(node)
    labels = {id(stmt): start + index for index, stmt in enumerate(stmts)}
    return labels, stmts


class InstrumentationPass(ast.NodeTransformer):
    """Rewrites conditional tests into runtime probe calls."""

    def __init__(self, labels: dict[int, int], handle_name: str = HANDLE_NAME):
        self.labels = labels
        self.handle_name = handle_name
        self.conditionals: list[ConditionalInfo] = []
        self._temp_counter = 0

    # -- statement visitors ----------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> ast.AST:
        # Only the outermost function is transformed; nested defs are left as-is.
        node.body = [self.visit(stmt) for stmt in node.body]
        return node

    def visit_If(self, node: ast.If) -> ast.AST:
        self.generic_visit(node)
        return self._instrument_test(node, "if")

    def visit_While(self, node: ast.While) -> ast.AST:
        self.generic_visit(node)
        return self._instrument_test(node, "while")

    def visit_Lambda(self, node: ast.Lambda) -> ast.AST:
        return node

    def visit_ClassDef(self, node: ast.ClassDef) -> ast.AST:
        return node

    # -- helpers ----------------------------------------------------------------

    def _instrument_test(self, node, kind: str):
        label = self.labels.get(id(node))
        if label is None:
            return node
        try:
            source = ast.unparse(node.test)
        except Exception:  # pragma: no cover - unparse is best-effort metadata
            source = "<unprintable>"
        new_test, form = self._rewrite_test(label, node.test)
        self.conditionals.append(
            ConditionalInfo(
                label=label,
                kind=kind,
                lineno=getattr(node, "lineno", 0),
                source=source,
                form=form,
            )
        )
        node.test = new_test
        return node

    def _rewrite_test(self, label: int, test: ast.expr) -> tuple[ast.expr, str]:
        simple = self._as_simple_comparison(test)
        if simple is not None:
            # Single comparison: one fused probe call (the hot path).
            op, lhs, rhs, negated = simple
            call = self._call("test", [ast.Constant(label), ast.Constant(op), lhs, rhs])
            return call, ("negated" if negated else "simple")
        stripped, _ = strip_not(test)
        if isinstance(stripped, (ast.BoolOp, ast.IfExp)) or self._is_chain(stripped):
            try:
                lowering = _TreeLowering(self, label)
                expr, tokens = lowering.lower(test, negated=False)
                if len(tokens) > MAX_TREE_TOKENS:
                    raise _LoweringOverflow()
            except _LoweringOverflow:
                return self._call("truth", [ast.Constant(label), test]), "truth"
            program = ast.Tuple(
                elts=[ast.Constant(token) for token in tokens], ctx=ast.Load()
            )
            call = self._call("resolve", [ast.Constant(label), program, expr])
            if isinstance(stripped, ast.IfExp):
                form = "ternary"
            elif isinstance(stripped, ast.BoolOp):
                form = "boolean"
            else:
                form = "chained"
            return call, form
        # Bare non-comparison test: the fused truth probe promotes numeric
        # values to a ``!= 0`` distance at run time (Sect. 5.3).
        return self._call("truth", [ast.Constant(label), test]), "promoted"

    # Shared shape helpers, kept as (static)methods for backwards
    # compatibility with existing callers/tests.
    _strip_not = staticmethod(strip_not)
    _is_chain = staticmethod(is_chain)
    _as_simple_comparison = staticmethod(as_simple_comparison)

    def _temp_name(self) -> str:
        name = f"{TEMP_NAME_PREFIX}{self._temp_counter}"
        self._temp_counter += 1
        return name

    def _call(self, method: str, args: list[ast.expr]) -> ast.Call:
        return ast.Call(
            func=ast.Attribute(
                value=ast.Name(id=self.handle_name, ctx=ast.Load()),
                attr=method,
                ctx=ast.Load(),
            ),
            args=args,
            keywords=[],
        )


class _TreeLowering:
    """Lowers one conditional's Boolean tree into probes + a postfix program.

    Every comparison becomes an indexed ``cmp`` leaf and every other operand
    a promoted ``tleaf`` leaf; the returned token program composes the leaf
    distances back into the conditional's ``(d_true, d_false)`` pair at run
    time.  ``not`` is propagated down by De Morgan, so the emitted tree only
    needs ``and``/``or`` nodes (the :data:`~repro.instrument.runtime.TREE_NOT`
    token appears only in the ternary composition, where the condition
    subtree is shared by both sides).
    """

    def __init__(self, owner: InstrumentationPass, label: int):
        self.owner = owner
        self.label = label
        self.n_leaves = 0

    def _checked(self, tokens: list[int]) -> list[int]:
        """Enforce the token ceiling while lowering, not just at the end.

        The ternary composition re-emits its condition's tokens, so programs
        can double per nesting level while the leaf count grows only
        linearly; checking every composite node keeps list construction
        bounded by one overshoot of :data:`MAX_TREE_TOKENS` instead of
        exponential.
        """
        if len(tokens) > MAX_TREE_TOKENS:
            raise _LoweringOverflow()
        return tokens

    def lower(self, node: ast.expr, negated: bool) -> tuple[ast.expr, list[int]]:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            return self.lower(node.operand, not negated)
        if isinstance(node, ast.BoolOp):
            return self._lower_boolop(node, negated)
        if isinstance(node, ast.IfExp):
            return self._lower_ternary(node, negated)
        if isinstance(node, ast.Compare) and all(type(op) in _AST_OPS for op in node.ops):
            if len(node.ops) == 1:
                return self._comparison_leaf(node, negated)
            return self._lower_chain(node, negated)
        return self._truth_leaf(node, negated)

    # -- node lowerings ----------------------------------------------------------

    def _lower_boolop(self, node: ast.BoolOp, negated: bool) -> tuple[ast.expr, list[int]]:
        is_and = isinstance(node.op, ast.And)
        if negated:  # De Morgan: the children carry the negation
            is_and = not is_and
        exprs: list[ast.expr] = []
        tokens: list[int] = []
        for value in node.values:
            expr, sub_tokens = self.lower(value, negated)
            exprs.append(expr)
            tokens.extend(sub_tokens)
        tokens.append(tree_and(len(exprs)) if is_and else tree_or(len(exprs)))
        boolop = ast.BoolOp(op=ast.And() if is_and else ast.Or(), values=exprs)
        return boolop, self._checked(tokens)

    def _lower_ternary(self, node: ast.IfExp, negated: bool) -> tuple[ast.expr, list[int]]:
        # ``a if c else b``  composes as  ``(c and a) or (not c and b)``; the
        # condition's leaves are evaluated once and their stashed distances
        # are referenced by both sides of the composition.
        cond_expr, cond_tokens = self.lower(node.test, False)
        body_expr, body_tokens = self.lower(node.body, negated)
        else_expr, else_tokens = self.lower(node.orelse, negated)
        tokens = (
            cond_tokens
            + body_tokens
            + [tree_and(2)]
            + cond_tokens
            + [TREE_NOT]
            + else_tokens
            + [tree_and(2), tree_or(2)]
        )
        ternary = ast.IfExp(test=cond_expr, body=body_expr, orelse=else_expr)
        return ternary, self._checked(tokens)

    def _lower_chain(self, node: ast.Compare, negated: bool) -> tuple[ast.expr, list[int]]:
        # ``a < b < c``  ->  ``a < (t := b) and t < c`` with each middle
        # operand bound to a walrus temporary, preserving Python's guarantee
        # that chain operands are evaluated at most once and that the tail is
        # short-circuited away when an earlier link fails.  Under negation
        # De Morgan turns the conjunction into a disjunction of flipped
        # links, which short-circuits at exactly the same operand.
        exprs: list[ast.expr] = []
        tokens: list[int] = []
        lhs: ast.expr = node.left
        last = len(node.ops) - 1
        for index, (op_node, comparator) in enumerate(zip(node.ops, node.comparators)):
            op = _AST_OPS[type(op_node)]
            if negated:
                op = _NEGATED[op]
            if index < last:
                name = self.owner._temp_name()
                rhs: ast.expr = ast.NamedExpr(
                    target=ast.Name(id=name, ctx=ast.Store()), value=comparator
                )
                next_lhs: ast.expr = ast.Name(id=name, ctx=ast.Load())
            else:
                rhs = comparator
                next_lhs = comparator  # unused
            leaf = self._new_leaf()
            exprs.append(
                self.owner._call(
                    "cmp",
                    [ast.Constant(self.label), ast.Constant(op), lhs, rhs, ast.Constant(leaf)],
                )
            )
            tokens.append(leaf)
            lhs = next_lhs
        boolop = ast.BoolOp(op=ast.Or() if negated else ast.And(), values=exprs)
        tokens.append(tree_or(len(exprs)) if negated else tree_and(len(exprs)))
        return boolop, tokens

    def _comparison_leaf(self, node: ast.Compare, negated: bool) -> tuple[ast.expr, list[int]]:
        op = _AST_OPS[type(node.ops[0])]
        if negated:
            op = _NEGATED[op]
        leaf = self._new_leaf()
        call = self.owner._call(
            "cmp",
            [
                ast.Constant(self.label),
                ast.Constant(op),
                node.left,
                node.comparators[0],
                ast.Constant(leaf),
            ],
        )
        return call, [leaf]

    def _truth_leaf(self, node: ast.expr, negated: bool) -> tuple[ast.expr, list[int]]:
        leaf = self._new_leaf()
        args = [ast.Constant(self.label), ast.Constant(leaf), node]
        if negated:
            args.append(ast.Constant(True))
        return self.owner._call("tleaf", args), [leaf]

    def _new_leaf(self) -> int:
        if self.n_leaves >= MAX_TREE_LEAVES:
            raise _LoweringOverflow()
        leaf = self.n_leaves
        self.n_leaves += 1
        return leaf


def instrument_source(
    source: str, function_name: str | None = None, start_label: int = 0
) -> tuple[ast.Module, list[ConditionalInfo], dict[int, int], ast.FunctionDef]:
    """Parse and instrument the source of a single function.

    Returns the transformed module AST, the conditional metadata, the label
    mapping (on the *original* statement objects, which are mutated in place
    by the transformer but keep their identity), and the function node.
    """
    tree = ast.parse(textwrap.dedent(source))
    func_node = None
    for stmt in tree.body:
        if isinstance(stmt, ast.FunctionDef) and (
            function_name is None or stmt.name == function_name
        ):
            func_node = stmt
            break
    if func_node is None:
        raise ValueError(
            f"could not find function {function_name!r} in the provided source"
        )
    func_node.decorator_list = []
    labels, _ = assign_labels(func_node, start=start_label)
    instrumentation = InstrumentationPass(labels)
    instrumentation.visit(func_node)
    ast.fix_missing_locations(tree)
    return tree, instrumentation.conditionals, labels, func_node
