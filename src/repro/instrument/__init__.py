"""Instrumentation substrate.

The paper instruments the program under test with an LLVM pass that inserts
``r = pen(l_i, op, a, b)`` immediately before every conditional statement.
This package is the Python analogue: an AST pass rewrites every conditional
test of a Python function into calls on a :class:`~repro.instrument.runtime.Runtime`
object which evaluates branch distances, drives the injected ``r`` register
through a pluggable penalty policy, and records branch coverage.

The package is deliberately independent of :mod:`repro.core`: the runtime is
parameterised by a *penalty policy* so the same instrumentation serves both
CoverMe's representing function and plain coverage measurement for the
baseline tools.
"""

from repro.instrument.ast_pass import InstrumentationPass, instrument_source
from repro.instrument.cfg import DescendantAnalysis
from repro.instrument.program import InstrumentedProgram, SpecializedVariant, instrument
from repro.instrument.runtime import (
    BranchId,
    ConditionalOutcome,
    ExecutionProfile,
    ExecutionRecord,
    PenaltyPolicy,
    Runtime,
)
from repro.instrument.signature import ProgramSignature
from repro.instrument.specialize import specialize_source, specialized_unit

__all__ = [
    "BranchId",
    "ConditionalOutcome",
    "DescendantAnalysis",
    "ExecutionProfile",
    "ExecutionRecord",
    "InstrumentationPass",
    "InstrumentedProgram",
    "PenaltyPolicy",
    "ProgramSignature",
    "Runtime",
    "SpecializedVariant",
    "instrument",
    "instrument_source",
    "specialize_source",
    "specialized_unit",
]
