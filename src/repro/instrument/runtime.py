"""Execution runtime for instrumented programs.

The runtime plays the role of the paper's injected global variable ``r`` plus
the ``pen`` dispatch (Sect. 3.2, Step 1).  Every conditional test of the
instrumented program is rewritten into calls on a :class:`Runtime` instance:

* :meth:`Runtime.cmp` evaluates one arithmetic comparison ``a op b`` inside a
  conditional test, computes the branch distances towards both outcomes
  (Def. 4.1) and returns the Boolean outcome so the program's control flow is
  unchanged.
* :meth:`Runtime.resolve` is called with the truth value of the whole test of
  conditional ``l_i``.  It composes the recorded distances, hands them to the
  installed :class:`PenaltyPolicy` (CoverMe's ``pen``) to update ``r``, and
  records branch coverage.
* :meth:`Runtime.truth` handles non-comparison tests (``if flag:``); numeric
  values are promoted to the comparison ``value != 0`` per Sect. 5.3, anything
  else is recorded for coverage only.

The runtime is policy-agnostic: with ``policy=None`` it only records coverage
(this is how the baseline tools and the Gcov substrate use it); with CoverMe's
penalty policy installed it computes the representing function.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Protocol

from repro.core.branch_distance import DEFAULT_EPSILON, branch_distance, negate_op

_COMPARISON_OPS = {"==", "!=", "<", "<=", ">", ">="}


@dataclass(frozen=True, order=True)
class BranchId:
    """Identifies one branch: conditional label plus outcome (True/False arm)."""

    conditional: int
    outcome: bool

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        arm = "T" if self.outcome else "F"
        return f"{self.conditional}{arm}"

    @property
    def sibling(self) -> "BranchId":
        """The other branch of the same conditional."""
        return BranchId(self.conditional, not self.outcome)


@dataclass
class ConditionalOutcome:
    """One dynamic evaluation of a conditional statement's test."""

    conditional: int
    outcome: bool
    distance_true: Optional[float]
    distance_false: Optional[float]

    @property
    def branch(self) -> BranchId:
        return BranchId(self.conditional, self.outcome)


@dataclass
class ExecutionRecord:
    """Everything observed while executing the instrumented program once."""

    path: list[ConditionalOutcome] = field(default_factory=list)
    covered: set[BranchId] = field(default_factory=set)

    def register(self, outcome: ConditionalOutcome) -> None:
        self.path.append(outcome)
        self.covered.add(outcome.branch)

    @property
    def last(self) -> Optional[ConditionalOutcome]:
        return self.path[-1] if self.path else None

    def conditionals_executed(self) -> set[int]:
        return {o.conditional for o in self.path}


class PenaltyPolicy(Protocol):
    """Interface of the ``pen`` function plugged into the runtime."""

    def penalty(
        self,
        conditional: int,
        distance_true: Optional[float],
        distance_false: Optional[float],
        outcome: bool,
        current_r: float,
    ) -> float:
        """Return the new value of the global register ``r``."""
        ...  # pragma: no cover - protocol


class Runtime:
    """The injected ``r`` register and probe dispatch of an instrumented run.

    Args:
        policy: Penalty policy deciding how ``r`` evolves at each conditional.
            ``None`` means pure coverage recording (``r`` stays at 1).
        epsilon: The small positive constant of Def. 4.1 used for strict
            comparisons.
    """

    def __init__(self, policy: Optional[PenaltyPolicy] = None, epsilon: float = DEFAULT_EPSILON):
        self.policy = policy
        self.epsilon = epsilon
        self._r = 1.0
        self._record: ExecutionRecord = ExecutionRecord()
        self._pending: dict[int, list[tuple[Optional[float], Optional[float]]]] = {}
        self.total_evaluations = 0

    # -- execution lifecycle -------------------------------------------------

    def begin(self) -> None:
        """Start one execution: reset ``r`` to 1 (Step 2 of the algorithm)."""
        self._r = 1.0
        self._record = ExecutionRecord()
        self._pending = {}
        self.total_evaluations += 1

    def end(self) -> tuple[float, ExecutionRecord]:
        """Finish one execution, returning the final ``r`` and the record."""
        return self._r, self._record

    @property
    def r(self) -> float:
        """Current value of the injected global register."""
        return self._r

    @property
    def record(self) -> ExecutionRecord:
        return self._record

    # -- probes (called from instrumented code) -------------------------------

    def cmp(self, conditional: int, op: str, lhs, rhs) -> bool:
        """Instrumented arithmetic comparison inside the test of ``conditional``.

        Computes the branch distances of Def. 4.1 towards the true and the
        false outcome, stashes them for :meth:`resolve`, and returns the
        outcome of the comparison so program semantics are preserved.
        """
        if op not in _COMPARISON_OPS:
            raise ValueError(f"unsupported comparison operator {op!r}")
        outcome = _evaluate(op, lhs, rhs)
        d_true, d_false = self._distances(op, lhs, rhs)
        self._pending.setdefault(conditional, []).append((d_true, d_false))
        return outcome

    def truth(self, conditional: int, value) -> bool:
        """Instrumented non-comparison test (e.g. ``if flag:``).

        Numeric values are promoted to the comparison ``value != 0``
        (Sect. 5.3); other values only get coverage recording.
        """
        outcome = bool(value)
        if isinstance(value, bool):
            d_true = 0.0 if outcome else self.epsilon
            d_false = self.epsilon if outcome else 0.0
            self._pending.setdefault(conditional, []).append((d_true, d_false))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            d_true, d_false = self._distances("!=", float(value), 0.0)
            self._pending.setdefault(conditional, []).append((d_true, d_false))
        return self.resolve(conditional, "single", outcome)

    def resolve(self, conditional: int, mode: str, outcome) -> bool:
        """Finalize the evaluation of ``conditional``'s test.

        ``mode`` is ``"single"`` for a plain comparison, ``"and"``/``"or"``
        for Boolean combinations of comparisons.  The composed distances are
        handed to the penalty policy which updates ``r``; the branch taken is
        added to the coverage record.
        """
        outcome = bool(outcome)
        parts = self._pending.pop(conditional, [])
        d_true, d_false = _compose(mode, parts)
        if self.policy is not None and (d_true is not None or d_false is not None):
            self._r = float(
                self.policy.penalty(conditional, d_true, d_false, outcome, self._r)
            )
        self._record.register(
            ConditionalOutcome(
                conditional=conditional,
                outcome=outcome,
                distance_true=d_true,
                distance_false=d_false,
            )
        )
        return outcome

    # -- internals -------------------------------------------------------------

    def _distances(self, op: str, lhs, rhs) -> tuple[Optional[float], Optional[float]]:
        try:
            a = float(lhs)
            b = float(rhs)
        except (TypeError, ValueError):
            return None, None
        if math.isnan(a) or math.isnan(b):
            # NaN comparisons are all-false except ``!=``; there is no usable
            # gradient, so report a large constant distance.
            big = 1.0e300
            return (0.0, big) if op == "!=" else (big, 0.0)
        d_true = branch_distance(op, a, b, self.epsilon)
        d_false = branch_distance(negate_op(op), a, b, self.epsilon)
        return d_true, d_false


class RuntimeHandle:
    """Mutable holder through which instrumented code reaches the runtime.

    The instrumented module namespace closes over one handle; swapping the
    installed runtime lets many measurements reuse the same compiled code.
    """

    def __init__(self) -> None:
        self._runtime: Optional[Runtime] = None

    def install(self, runtime: Runtime) -> None:
        self._runtime = runtime

    @property
    def runtime(self) -> Runtime:
        if self._runtime is None:
            raise RuntimeError("no Runtime installed on this handle")
        return self._runtime

    # The instrumented code calls these directly.
    def cmp(self, conditional: int, op: str, lhs, rhs) -> bool:
        return self.runtime.cmp(conditional, op, lhs, rhs)

    def truth(self, conditional: int, value) -> bool:
        return self.runtime.truth(conditional, value)

    def resolve(self, conditional: int, mode: str, outcome) -> bool:
        return self.runtime.resolve(conditional, mode, outcome)


def _evaluate(op: str, lhs, rhs) -> bool:
    if op == "==":
        return lhs == rhs
    if op == "!=":
        return lhs != rhs
    if op == "<":
        return lhs < rhs
    if op == "<=":
        return lhs <= rhs
    if op == ">":
        return lhs > rhs
    if op == ">=":
        return lhs >= rhs
    raise ValueError(f"unsupported comparison operator {op!r}")


def _compose(
    mode: str, parts: list[tuple[Optional[float], Optional[float]]]
) -> tuple[Optional[float], Optional[float]]:
    """Compose sub-comparison distances into distances for the whole test.

    For ``A and B`` the distance to truth adds the evaluated parts' distances
    (all must hold) while the distance to falsity is the smallest part
    distance (falsifying any part suffices); ``or`` is dual.  Short-circuited
    parts simply do not contribute, which matches the information available
    dynamically.
    """
    usable = [(t, f) for t, f in parts if t is not None and f is not None]
    if not usable:
        return None, None
    if mode == "single" or len(usable) == 1:
        return usable[0]
    trues = [t for t, _ in usable]
    falses = [f for _, f in usable]
    if mode == "and":
        return sum(trues), min(falses)
    if mode == "or":
        return min(trues), sum(falses)
    raise ValueError(f"unknown composition mode {mode!r}")
