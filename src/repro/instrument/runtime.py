"""Execution runtimes for instrumented programs.

The runtime plays the role of the paper's injected global variable ``r`` plus
the ``pen`` dispatch (Sect. 3.2, Step 1).  Every conditional test of the
instrumented program is rewritten into calls on an installed runtime:

* :meth:`Runtime.test` evaluates the whole test of a single-comparison
  conditional ``a op b`` in one fused probe: it computes the branch distances
  towards both outcomes (Def. 4.1), applies the ``pen`` update, records
  coverage and returns the Boolean outcome so the program's control flow is
  unchanged.
* :meth:`Runtime.cmp` evaluates one arithmetic comparison inside a Boolean
  combination (``a < b and c < d``) and stashes its distances for
  :meth:`Runtime.resolve`, which composes them, hands them to the installed
  :class:`PenaltyPolicy` (CoverMe's ``pen``) to update ``r``, and records
  branch coverage.
* :meth:`Runtime.tleaf` evaluates a *non-comparison* leaf inside a Boolean
  combination (``_isnan(x) or _isnan(fn)``): the value is promoted to the
  comparison ``value != 0`` (Sect. 5.3) and its distances join the
  composition like any comparison leaf.
* :meth:`Runtime.truth` handles bare non-comparison tests (``if flag:``);
  numeric values are promoted to the comparison ``value != 0`` per Sect. 5.3,
  anything else is recorded for coverage only.

Composition programs
--------------------

Arbitrarily nested Boolean tests (``a or (b and c)``, De-Morganed ``not``,
chained comparisons, ternary tests) are lowered by the AST pass into leaf
probes plus a constant *composition program*: a postfix token tuple executed
by :meth:`Runtime.resolve`.  Tokens are small ints:

* ``token >= 0`` -- push the distance pair stashed for leaf ``token`` (an
  unevaluated or non-numeric leaf pushes "no distance");
* ``token == TREE_NOT`` -- swap the pair on top of the stack (logical
  negation swaps the true/false distances);
* ``token <= -4`` -- reduce the top ``k`` pairs with ``and`` (even tokens,
  ``tree_and(k)``) or ``or`` (odd tokens, ``tree_or(k)``): for ``and`` the
  distance to truth is the sum of the children's (all must hold) and the
  distance to falsity their minimum (falsifying any child suffices); ``or``
  is dual.  Children without a usable distance contribute nothing, which
  matches the information available after short-circuiting.

Both runtimes execute the same token semantics with identical arithmetic
ordering, so composed distances (and therefore ``r``) stay bit-identical
across execution profiles.  :class:`FastRuntime` composes on preallocated
stacks with stamp-validated leaf slots, keeping the optimizer's penalty
fast path allocation-free.

Execution profiles
------------------

Minimizing the representing function issues millions of executions, so the
runtime comes in two implementations selected through
:class:`ExecutionProfile`:

* ``FULL_TRACE`` -- the recording :class:`Runtime`: every conditional
  evaluation is appended to an :class:`ExecutionRecord` as a
  :class:`ConditionalOutcome`, and the penalty is delegated to a pluggable
  :class:`PenaltyPolicy`.  This is the only profile that preserves the
  *path*, so it is required by anything that inspects per-conditional
  distances or the order of conditionals (trace-based tooling, debugging,
  the line-coverage substrate's record consumers).
* ``COVERAGE`` -- the allocation-free :class:`FastRuntime`: only the final
  ``r``, a flat covered-branch bitset and the last executed conditional are
  retained.  Sound whenever the consumer needs coverage and the infeasible
  heuristic's last-conditional datum but not the path: this is everything
  Algorithm 1's reduction consumes from an accepted minimum.
* ``PENALTY_ONLY`` -- the same :class:`FastRuntime`, but the caller promises
  to read only ``r`` (the covered bitset is still maintained -- it is two
  machine operations per conditional -- but nothing per-execution is
  snapshotted).  Sound for the optimizer inner loop, where the scalar
  objective is the only output; any accepted minimum must be re-executed
  under at least ``COVERAGE`` to harvest its branches.

Both implementations compute bit-identical ``r`` values for the CoverMe
penalty (Def. 4.2): :class:`FastRuntime` inlines that exact policy against a
saturated-branch bitmask instead of calling through a policy object, and it
uses the same :func:`~repro.core.branch_distance.branch_distance` arithmetic.
The recording runtime stays policy-agnostic: with ``policy=None`` it only
records coverage (this is how the baseline tools and the Gcov substrate use
it); with CoverMe's penalty policy installed it computes the representing
function.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Iterable, Optional, Protocol

from repro.core.branch_distance import DEFAULT_EPSILON, branch_distance, negate_op

_COMPARISON_OPS = {"==", "!=", "<", "<=", ">", ">="}

#: Large constant distance reported when operands carry no usable gradient
#: (NaN comparisons).  Shared with the specializing compiler tier
#: (:mod:`repro.instrument.specialize`) so the baked-in constants stay
#: bit-identical with the runtime-dispatched ones.
BIG_DISTANCE = 1.0e300

#: Composition-program token: logical NOT (swap the distance pair on top).
TREE_NOT = -1


def tree_and(arity: int) -> int:
    """Composition-program token reducing the top ``arity`` pairs with AND."""
    if arity < 2:
        raise ValueError("and/or composition nodes need at least two children")
    return -2 * arity


def tree_or(arity: int) -> int:
    """Composition-program token reducing the top ``arity`` pairs with OR."""
    if arity < 2:
        raise ValueError("and/or composition nodes need at least two children")
    return -2 * arity - 1


class ExecutionProfile(str, enum.Enum):
    """How much information one execution of an instrumented program retains.

    Ordered from cheapest to most expensive; see the module docstring for
    when each profile is sound.

    ``PENALTY_SPECIALIZED`` is the compile-time tier: the saturation mask is
    resolved per probe site by :mod:`repro.instrument.specialize` and the
    program re-compiled, so mid-epoch evaluations pay no per-conditional
    runtime dispatch at all.  Its contract is the same as ``PENALTY_ONLY``
    minus the covered bitset completeness: both-saturated conditionals have
    their probes stripped entirely, so only unsaturated conditionals record
    covered bits (sound for the optimizer inner loop; accepted minima are
    re-executed under ``COVERAGE`` to harvest branches).

    ``PENALTY_NATIVE`` goes below that: the specialized lowering is emitted
    as C (:mod:`repro.instrument.native`), compiled with the system ``cc``
    and called through ``ctypes``.  Same contract as ``PENALTY_SPECIALIZED``
    (bit-identical ``r``, partial covered bitset); machines without a C
    compiler -- or programs with non-emittable constructs -- degrade to the
    specialized tier with a one-time warning.
    """

    PENALTY_NATIVE = "penalty-native"
    PENALTY_SPECIALIZED = "penalty-specialized"
    PENALTY_ONLY = "penalty"
    COVERAGE = "coverage"
    FULL_TRACE = "full-trace"


#: Config-facing names of the execution profiles, cheapest first.
EXECUTION_PROFILES: tuple[str, ...] = tuple(p.value for p in ExecutionProfile)


@dataclass(frozen=True, order=True)
class BranchId:
    """Identifies one branch: conditional label plus outcome (True/False arm)."""

    conditional: int
    outcome: bool

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        arm = "T" if self.outcome else "F"
        return f"{self.conditional}{arm}"

    @property
    def sibling(self) -> "BranchId":
        """The other branch of the same conditional."""
        return BranchId(self.conditional, not self.outcome)

    @property
    def bit(self) -> int:
        """Position of this branch in the flat branch bitsets."""
        return branch_bit(self.conditional, self.outcome)


def branch_bit(conditional: int, outcome: bool) -> int:
    """Flat bit index of a branch: ``2 * conditional + outcome``."""
    return (conditional << 1) | (1 if outcome else 0)


def branch_mask(branches: Iterable[BranchId]) -> int:
    """Pack branches into an integer bitmask (bit :func:`branch_bit` set)."""
    mask = 0
    for branch in branches:
        mask |= 1 << branch.bit
    return mask


def branches_from_mask(mask: int) -> frozenset[BranchId]:
    """Unpack an integer bitmask back into a set of branches."""
    branches: set[BranchId] = set()
    bit = 0
    while mask:
        if mask & 1:
            branches.add(BranchId(bit >> 1, bool(bit & 1)))
        mask >>= 1
        bit += 1
    return frozenset(branches)


@dataclass
class ConditionalOutcome:
    """One dynamic evaluation of a conditional statement's test."""

    conditional: int
    outcome: bool
    distance_true: Optional[float]
    distance_false: Optional[float]

    @property
    def branch(self) -> BranchId:
        return BranchId(self.conditional, self.outcome)


@dataclass
class ExecutionRecord:
    """Everything observed while executing the instrumented program once."""

    path: list[ConditionalOutcome] = field(default_factory=list)
    covered: set[BranchId] = field(default_factory=set)

    def register(self, outcome: ConditionalOutcome) -> None:
        self.path.append(outcome)
        self.covered.add(outcome.branch)

    @property
    def last(self) -> Optional[ConditionalOutcome]:
        return self.path[-1] if self.path else None

    def conditionals_executed(self) -> set[int]:
        return {o.conditional for o in self.path}

    def covered_mask(self) -> int:
        """The covered branches as a flat bitmask (see :func:`branch_bit`)."""
        return branch_mask(self.covered)


@dataclass(frozen=True)
class CoverageOutcome:
    """What one :data:`~ExecutionProfile.COVERAGE` execution retains.

    A single small object built once per execution (never per conditional):
    the covered-branch set plus the last executed conditional, which is all
    the engine's reduction consumes from an accepted minimum.
    """

    covered: frozenset[BranchId]
    last_conditional: Optional[int]
    last_outcome: Optional[bool]

    def covered_mask(self) -> int:
        return branch_mask(self.covered)


class PenaltyPolicy(Protocol):
    """Interface of the ``pen`` function plugged into the recording runtime."""

    def penalty(
        self,
        conditional: int,
        distance_true: Optional[float],
        distance_false: Optional[float],
        outcome: bool,
        current_r: float,
    ) -> float:
        """Return the new value of the global register ``r``."""
        ...  # pragma: no cover - protocol


class Runtime:
    """The recording (``FULL_TRACE``) runtime: full per-conditional trace.

    Args:
        policy: Penalty policy deciding how ``r`` evolves at each conditional.
            ``None`` means pure coverage recording (``r`` stays at 1).
        epsilon: The small positive constant of Def. 4.1 used for strict
            comparisons.
    """

    def __init__(self, policy: Optional[PenaltyPolicy] = None, epsilon: float = DEFAULT_EPSILON):
        self.policy = policy
        self.epsilon = epsilon
        self._r = 1.0
        self._record: ExecutionRecord = ExecutionRecord()
        self._pending: dict[int, list[tuple[Optional[float], Optional[float]]]] = {}
        self._leaves: dict[int, dict[int, tuple[Optional[float], Optional[float]]]] = {}
        self.total_evaluations = 0

    # -- execution lifecycle -------------------------------------------------

    def begin(self) -> None:
        """Start one execution: reset ``r`` to 1 (Step 2 of the algorithm)."""
        self._r = 1.0
        self._record = ExecutionRecord()
        self._pending = {}
        self._leaves = {}
        self.total_evaluations += 1

    def end(self) -> tuple[float, ExecutionRecord]:
        """Finish one execution, returning the final ``r`` and the record."""
        return self._r, self._record

    @property
    def r(self) -> float:
        """Current value of the injected global register."""
        return self._r

    @property
    def record(self) -> ExecutionRecord:
        return self._record

    # -- probes (called from instrumented code) -------------------------------

    def test(self, conditional: int, op: str, lhs, rhs) -> bool:
        """Fused probe for a single-comparison conditional test.

        Equivalent to ``resolve(c, "single", cmp(c, op, lhs, rhs))`` but with
        no pending stash and no composition scan -- the common case pays for
        exactly one probe call.
        """
        if op not in _COMPARISON_OPS:
            raise ValueError(f"unsupported comparison operator {op!r}")
        outcome = _evaluate(op, lhs, rhs)
        d_true, d_false = self._distances(op, lhs, rhs)
        return self._finish(conditional, outcome, d_true, d_false)

    def cmp(self, conditional: int, op: str, lhs, rhs, leaf: Optional[int] = None) -> bool:
        """Instrumented comparison inside a Boolean combination test.

        Computes the branch distances of Def. 4.1 towards the true and the
        false outcome, stashes them for :meth:`resolve`, and returns the
        outcome of the comparison so program semantics are preserved.  With a
        ``leaf`` index the pair is addressed by a composition program; without
        one it joins the legacy flat ``"and"``/``"or"`` part list.
        """
        if op not in _COMPARISON_OPS:
            raise ValueError(f"unsupported comparison operator {op!r}")
        outcome = _evaluate(op, lhs, rhs)
        d_true, d_false = self._distances(op, lhs, rhs)
        if leaf is None:
            self._pending.setdefault(conditional, []).append((d_true, d_false))
        else:
            self._leaves.setdefault(conditional, {})[leaf] = (d_true, d_false)
        return outcome

    def tleaf(self, conditional: int, leaf: int, value, negated: bool = False) -> bool:
        """Non-comparison leaf inside a composition tree.

        The value is promoted exactly like :meth:`truth` (numbers compare
        against 0, Booleans get epsilon distances, anything else contributes
        no distance); ``negated`` folds a De-Morganed ``not`` into the leaf.
        """
        outcome, d_true, d_false = self._promoted(value)
        if negated:
            outcome = not outcome
            d_true, d_false = d_false, d_true
        self._leaves.setdefault(conditional, {})[leaf] = (d_true, d_false)
        return outcome

    def truth(self, conditional: int, value) -> bool:
        """Instrumented non-comparison test (e.g. ``if flag:``).

        Numeric values are promoted to the comparison ``value != 0``
        (Sect. 5.3); other values -- including ``int``s too large for
        ``float()`` -- only get coverage recording.
        """
        outcome, d_true, d_false = self._promoted(value)
        return self._finish(conditional, outcome, d_true, d_false)

    def resolve(self, conditional: int, mode, outcome) -> bool:
        """Finalize the evaluation of ``conditional``'s test.

        ``mode`` is either a postfix composition program (a token tuple, see
        the module docstring) over leaves stashed by :meth:`cmp`/:meth:`tleaf`,
        or the legacy flat ``"and"``/``"or"`` string over un-indexed
        :meth:`cmp` parts (``"single"`` is accepted for backwards
        compatibility with the pre-fused probe protocol).  The composed
        distances are handed to the penalty policy which updates ``r``; the
        branch taken is added to the coverage record.
        """
        outcome = bool(outcome)
        if type(mode) is tuple:
            leaves = self._leaves.pop(conditional, None)
            d_true, d_false = _compose_program(mode, leaves if leaves is not None else {})
        else:
            parts = self._pending.pop(conditional, [])
            d_true, d_false = _compose(mode, parts)
        return self._finish(conditional, outcome, d_true, d_false)

    # -- internals -------------------------------------------------------------

    def _promoted(self, value) -> tuple[bool, Optional[float], Optional[float]]:
        """Truthiness outcome plus the Sect. 5.3 promoted distance pair."""
        outcome = bool(value)
        if isinstance(value, bool):
            d_true: Optional[float] = 0.0 if outcome else self.epsilon
            d_false: Optional[float] = self.epsilon if outcome else 0.0
        elif isinstance(value, (int, float)):
            # _distances converts to float itself and degrades to coverage-only
            # recording when the conversion fails (e.g. OverflowError on a
            # huge int).
            d_true, d_false = self._distances("!=", value, 0.0)
        else:
            d_true, d_false = None, None
        return outcome, d_true, d_false

    def _finish(
        self,
        conditional: int,
        outcome: bool,
        d_true: Optional[float],
        d_false: Optional[float],
    ) -> bool:
        """Apply the penalty policy and record one conditional evaluation."""
        if self.policy is not None and (d_true is not None or d_false is not None):
            self._r = float(
                self.policy.penalty(conditional, d_true, d_false, outcome, self._r)
            )
        self._record.register(
            ConditionalOutcome(
                conditional=conditional,
                outcome=outcome,
                distance_true=d_true,
                distance_false=d_false,
            )
        )
        return outcome

    def _distances(self, op: str, lhs, rhs) -> tuple[Optional[float], Optional[float]]:
        try:
            a = float(lhs)
            b = float(rhs)
        except (TypeError, ValueError, OverflowError):
            # OverflowError: an ``int`` beyond float range (satellite of the
            # Sect. 5.3 promotion); treat like any other incomparable value.
            return None, None
        if math.isnan(a) or math.isnan(b):
            # NaN comparisons are all-false except ``!=``; there is no usable
            # gradient, so report a large constant distance.
            big = BIG_DISTANCE
            return (0.0, big) if op == "!=" else (big, 0.0)
        d_true = branch_distance(op, a, b, self.epsilon)
        d_false = branch_distance(negate_op(op), a, b, self.epsilon)
        return d_true, d_false


class FastRuntime:
    """The allocation-free runtime behind ``PENALTY_ONLY`` and ``COVERAGE``.

    Hardwires CoverMe's ``pen`` (Def. 4.2) against a *saturated-branch
    bitmask* frozen at :meth:`begin`:

    * both branches of the conditional saturated -- keep ``r`` (case c); no
      distance is computed at all;
    * neither saturated -- ``r`` becomes 0 (case a); no distance either,
      except the operands are still checked for float-comparability so the
      recording runtime's "no usable distance => keep ``r``" degradation is
      reproduced exactly;
    * exactly one saturated -- ``r`` becomes the branch distance towards the
      unsaturated branch (case b), computed with the same
      :func:`~repro.core.branch_distance.branch_distance` arithmetic as the
      recording runtime, so the two produce bit-identical ``r`` values.

    Coverage is kept as a flat bytearray indexed by :func:`branch_bit`
    (two machine operations per conditional, no per-conditional objects);
    the last executed conditional is tracked for the infeasible-branch
    heuristic.  The per-execution path is *not* retained -- use the
    recording :class:`Runtime` when the trace matters.

    The saturation snapshot is frozen per execution, which is sound inside
    one engine start (the tracker is only folded between starts); callers
    whose tracker evolves must pass the current mask to every
    :meth:`begin`.
    """

    __slots__ = (
        "epsilon",
        "n_conditionals",
        "saturated_mask",
        "total_evaluations",
        "_r",
        "_covered",
        "_zeros",
        "_pending",
        "_leaf_slots",
        "_stack_t",
        "_stack_f",
        "_stack_u",
        "_last_conditional",
        "_last_outcome",
    )

    def __init__(
        self,
        n_conditionals: int,
        saturated_mask: int = 0,
        epsilon: float = DEFAULT_EPSILON,
    ):
        self.epsilon = epsilon
        self.n_conditionals = n_conditionals
        self.saturated_mask = saturated_mask
        self.total_evaluations = 0
        self._r = 1.0
        self._zeros = bytes(2 * n_conditionals)
        self._covered = bytearray(self._zeros)
        self._pending: dict[int, list[tuple[Optional[float], Optional[float]]]] = {}
        # Composition-tree state, allocated once per conditional on first use
        # and reused across executions: per-leaf distance slots validated by
        # (execution, resolve-generation) stamps -- begin() stays O(1) and no
        # per-execution objects are created -- plus shared postfix stacks.
        self._leaf_slots: dict[int, list] = {}
        self._stack_t: list[float] = []
        self._stack_f: list[float] = []
        self._stack_u = bytearray()
        self._last_conditional = -1
        self._last_outcome = False

    # -- execution lifecycle -------------------------------------------------

    def begin(self, saturated_mask: Optional[int] = None) -> None:
        """Start one execution against ``saturated_mask`` (kept when omitted)."""
        if saturated_mask is not None:
            self.saturated_mask = saturated_mask
        self._r = 1.0
        self._covered[:] = self._zeros
        if self._pending:
            self._pending.clear()
        self._last_conditional = -1
        self.total_evaluations += 1

    @property
    def r(self) -> float:
        """Current value of the injected global register."""
        return self._r

    @property
    def last_conditional(self) -> Optional[int]:
        return self._last_conditional if self._last_conditional >= 0 else None

    @property
    def last_outcome(self) -> Optional[bool]:
        return self._last_outcome if self._last_conditional >= 0 else None

    def covered_mask(self) -> int:
        """The covered branches of the current execution as a flat bitmask."""
        mask = 0
        for bit, hit in enumerate(self._covered):
            if hit:
                mask |= 1 << bit
        return mask

    def covered_branches(self) -> frozenset[BranchId]:
        """The covered branches of the current execution as ``BranchId``s."""
        return frozenset(
            BranchId(bit >> 1, bool(bit & 1))
            for bit, hit in enumerate(self._covered)
            if hit
        )

    def snapshot(self) -> CoverageOutcome:
        """Snapshot the coverage-profile outputs of the current execution."""
        return CoverageOutcome(
            covered=self.covered_branches(),
            last_conditional=self.last_conditional,
            last_outcome=self.last_outcome,
        )

    # -- probes (called from instrumented code) -------------------------------

    def test(self, conditional: int, op: str, lhs, rhs) -> bool:
        """Fused single-comparison probe; the engine's hottest code path."""
        outcome = _evaluate(op, lhs, rhs)
        self._covered[(conditional << 1) | outcome] = 1
        self._last_conditional = conditional
        self._last_outcome = outcome
        bits = (self.saturated_mask >> (conditional << 1)) & 3
        if bits == 3:
            # Def. 4.2(c): both branches saturated, keep r; skip the
            # distance computation entirely.
            return outcome
        lhs_type = lhs.__class__
        if lhs_type is not float or rhs.__class__ is not float:
            try:
                lhs = float(lhs)
                rhs = float(rhs)
            except (TypeError, ValueError, OverflowError):
                # No usable distance: the recording runtime keeps r here.
                return outcome
        if bits == 0:
            # Def. 4.2(a): any outcome saturates a new branch.
            self._r = 0.0
            return outcome
        if lhs != lhs or rhs != rhs:  # NaN operand (matches Runtime._distances)
            if bits == 1:  # steer towards the true branch
                self._r = 0.0 if op == "!=" else BIG_DISTANCE
            else:  # steer towards the false branch
                self._r = BIG_DISTANCE if op == "!=" else 0.0
            return outcome
        if bits == 1:
            # Def. 4.2(b): only the false branch saturated; steer to true.
            self._r = branch_distance(op, lhs, rhs, self.epsilon)
        else:
            # Def. 4.2(b): only the true branch saturated; steer to false.
            self._r = branch_distance(negate_op(op), lhs, rhs, self.epsilon)
        return outcome

    def cmp(self, conditional: int, op: str, lhs, rhs, leaf: Optional[int] = None) -> bool:
        """Comparison inside a Boolean combination; stashes distances."""
        if leaf is None:
            if op not in _COMPARISON_OPS:
                raise ValueError(f"unsupported comparison operator {op!r}")
            outcome = _evaluate(op, lhs, rhs)
            self._pending.setdefault(conditional, []).append(self._distances(op, lhs, rhs))
            return outcome
        outcome = _evaluate(op, lhs, rhs)  # raises on an unsupported operator
        if (self.saturated_mask >> (conditional << 1)) & 3 == 3:
            # Def. 4.2(c): both branches saturated -- whatever the composed
            # pair would be, r is kept; resolve() skips the composition for
            # this conditional too, so nothing needs to be stashed at all.
            return outcome
        slots = self._leaf_slots.get(conditional)
        if slots is None or leaf >= len(slots[1]):
            slots = self._grow_leaf_slots(conditional, leaf)
        execs, gens, ts, fs, oks = slots[1], slots[2], slots[3], slots[4], slots[5]
        execs[leaf] = self.total_evaluations
        gens[leaf] = slots[0]
        if lhs.__class__ is float:
            a = lhs
        else:
            try:
                a = float(lhs)
            except (TypeError, ValueError, OverflowError):
                oks[leaf] = 0
                return outcome
        if rhs.__class__ is float:
            b = rhs
        else:
            try:
                b = float(rhs)
            except (TypeError, ValueError, OverflowError):
                oks[leaf] = 0
                return outcome
        if a != a or b != b:  # NaN operand (matches Runtime._distances)
            if op == "!=":
                ts[leaf] = 0.0
                fs[leaf] = BIG_DISTANCE
            else:
                ts[leaf] = BIG_DISTANCE
                fs[leaf] = 0.0
        else:
            # Both directions of Def. 4.1 fused around one squared gap; the
            # branch-by-branch cases reproduce branch_distance(op)/
            # branch_distance(negate_op(op)) bit for bit ((b-a)**2 == (a-b)**2
            # exactly, min() keeps a NaN gap like _squared_gap does).
            eps = self.epsilon
            gap = a - b
            g = BIG_DISTANCE if math.isinf(gap) else min(gap * gap, BIG_DISTANCE)
            if op == "<":
                ts[leaf] = 0.0 if a < b else g + eps
                fs[leaf] = 0.0 if b <= a else g
            elif op == "<=":
                ts[leaf] = 0.0 if a <= b else g
                fs[leaf] = 0.0 if b < a else g + eps
            elif op == ">":
                ts[leaf] = 0.0 if b < a else g + eps
                fs[leaf] = 0.0 if a <= b else g
            elif op == ">=":
                ts[leaf] = 0.0 if b <= a else g
                fs[leaf] = 0.0 if a < b else g + eps
            elif op == "==":
                ts[leaf] = g
                fs[leaf] = eps if a == b else 0.0
            else:  # "!=" -- _evaluate() already rejected everything else
                ts[leaf] = 0.0 if a != b else eps
                fs[leaf] = g
        oks[leaf] = 1
        return outcome

    def tleaf(self, conditional: int, leaf: int, value, negated: bool = False) -> bool:
        """Non-comparison leaf inside a composition tree (promoted truthiness)."""
        outcome = bool(value)
        if (self.saturated_mask >> (conditional << 1)) & 3 == 3:
            # Def. 4.2(c): resolve() will keep r without composing.
            return not outcome if negated else outcome
        slots = self._leaf_slots.get(conditional)
        if slots is None or leaf >= len(slots[1]):
            slots = self._grow_leaf_slots(conditional, leaf)
        execs, gens, ts, fs, oks = slots[1], slots[2], slots[3], slots[4], slots[5]
        execs[leaf] = self.total_evaluations
        gens[leaf] = slots[0]
        if isinstance(value, bool):
            d_true = 0.0 if outcome else self.epsilon
            d_false = self.epsilon if outcome else 0.0
        elif isinstance(value, (int, float)):
            try:
                promoted = float(value)
            except (TypeError, ValueError, OverflowError):
                oks[leaf] = 0
                return not outcome if negated else outcome
            if promoted != promoted:  # NaN is != 0: the test holds
                d_true, d_false = 0.0, BIG_DISTANCE
            else:
                d_true = branch_distance("!=", promoted, 0.0, self.epsilon)
                d_false = branch_distance("==", promoted, 0.0, self.epsilon)
        else:
            oks[leaf] = 0
            return not outcome if negated else outcome
        if negated:
            outcome = not outcome
            d_true, d_false = d_false, d_true
        ts[leaf] = d_true
        fs[leaf] = d_false
        oks[leaf] = 1
        return outcome

    def truth(self, conditional: int, value) -> bool:
        """Non-comparison test; same promotion rules as the recording runtime."""
        outcome = bool(value)
        if isinstance(value, bool):
            d_true: Optional[float] = 0.0 if outcome else self.epsilon
            d_false: Optional[float] = self.epsilon if outcome else 0.0
        elif isinstance(value, (int, float)):
            d_true, d_false = self._distances("!=", value, 0.0)
        else:
            d_true, d_false = None, None
        return self._finish(conditional, outcome, d_true, d_false)

    def resolve(self, conditional: int, mode, outcome) -> bool:
        """Finalize a Boolean-combination test stashed by :meth:`cmp`/:meth:`tleaf`."""
        outcome = bool(outcome)
        if type(mode) is tuple:
            if (self.saturated_mask >> (conditional << 1)) & 3 == 3:
                # Def. 4.2(c): r is kept whatever the composed pair would be;
                # the saturation mask is frozen per execution, so the leaves
                # skipped the stash under the same decision.
                return self._finish(conditional, outcome, None, None)
            d_true, d_false = self._compose_tree(conditional, mode)
            return self._finish(conditional, outcome, d_true, d_false)
        parts = self._pending.pop(conditional, [])
        d_true, d_false = _compose(mode, parts)
        return self._finish(conditional, outcome, d_true, d_false)

    # -- internals -------------------------------------------------------------

    def _grow_leaf_slots(self, conditional: int, leaf: int) -> list:
        """Create or grow the reusable leaf-slot arrays of one conditional.

        Slot layout: ``[generation, exec_stamps, gen_stamps, d_true, d_false,
        usable]``.  A leaf slot is valid only when both stamps match the
        current execution and the conditional's resolve generation, so loop
        iterations and interleaved helper calls never see stale distances.
        """
        slots = self._leaf_slots.get(conditional)
        if slots is None:
            slots = [0, [], [], [], [], bytearray()]
            self._leaf_slots[conditional] = slots
        grow = leaf + 1 - len(slots[1])
        if grow > 0:
            slots[1].extend([-1] * grow)
            slots[2].extend([-1] * grow)
            slots[3].extend([0.0] * grow)
            slots[4].extend([0.0] * grow)
            slots[5].extend(bytearray(grow))
        return slots

    def _compose_tree(
        self, conditional: int, program: tuple[int, ...]
    ) -> tuple[Optional[float], Optional[float]]:
        """Allocation-free mirror of :func:`_compose_program`.

        Executes the postfix program on the preallocated stacks against the
        conditional's stamped leaf slots, then bumps the conditional's
        resolve generation so the next evaluation round (e.g. the next
        ``while`` iteration) starts from blank leaves.
        """
        slots = self._leaf_slots.get(conditional)
        stack_t, stack_f, stack_u = self._stack_t, self._stack_f, self._stack_u
        if len(program) > len(stack_t):
            grow = len(program) - len(stack_t)
            stack_t.extend([0.0] * grow)
            stack_f.extend([0.0] * grow)
            stack_u.extend(bytearray(grow))
        if slots is None:
            generation = 0
            execs: list = []
            gens: list = []
            ts: list = []
            fs: list = []
            oks: bytearray = bytearray()
        else:
            generation = slots[0]
            execs = slots[1]
            gens = slots[2]
            ts = slots[3]
            fs = slots[4]
            oks = slots[5]
        exec_stamp = self.total_evaluations
        n_slots = len(execs)
        sp = 0
        for token in program:
            if token >= 0:
                if (
                    token < n_slots
                    and execs[token] == exec_stamp
                    and gens[token] == generation
                    and oks[token]
                ):
                    stack_t[sp] = ts[token]
                    stack_f[sp] = fs[token]
                    stack_u[sp] = 1
                else:
                    stack_u[sp] = 0
                sp += 1
            elif token == TREE_NOT:
                if sp == 0:
                    raise ValueError("malformed composition program: NOT on empty stack")
                if stack_u[sp - 1]:
                    stack_t[sp - 1], stack_f[sp - 1] = stack_f[sp - 1], stack_t[sp - 1]
            else:
                arity = (-token) >> 1
                if arity < 2 or arity > sp:
                    raise ValueError(f"malformed composition program token {token}")
                is_or = (-token) & 1
                base = sp - arity
                d_true = 0.0
                d_false = 0.0
                usable = 0
                for index in range(base, sp):
                    if not stack_u[index]:
                        continue
                    t = stack_t[index]
                    f = stack_f[index]
                    if not usable:
                        d_true, d_false = t, f
                        usable = 1
                    elif is_or:
                        if t < d_true:
                            d_true = t
                        d_false = d_false + f
                    else:
                        d_true = d_true + t
                        if f < d_false:
                            d_false = f
                sp = base
                if usable:
                    stack_t[sp] = d_true
                    stack_f[sp] = d_false
                    stack_u[sp] = 1
                else:
                    stack_u[sp] = 0
                sp += 1
        if sp != 1:
            raise ValueError("malformed composition program: non-singleton result")
        if slots is not None:
            slots[0] = generation + 1
        if stack_u[0]:
            return stack_t[0], stack_f[0]
        return None, None

    def _finish(
        self,
        conditional: int,
        outcome: bool,
        d_true: Optional[float],
        d_false: Optional[float],
    ) -> bool:
        self._covered[(conditional << 1) | outcome] = 1
        self._last_conditional = conditional
        self._last_outcome = outcome
        if d_true is None and d_false is None:
            return outcome
        bits = (self.saturated_mask >> (conditional << 1)) & 3
        if bits == 0:
            self._r = 0.0
        elif bits == 1:
            if d_true is not None:
                self._r = d_true
        elif bits == 2:
            if d_false is not None:
                self._r = d_false
        return outcome

    def _distances(self, op: str, lhs, rhs) -> tuple[Optional[float], Optional[float]]:
        try:
            a = float(lhs)
            b = float(rhs)
        except (TypeError, ValueError, OverflowError):
            return None, None
        if math.isnan(a) or math.isnan(b):
            big = BIG_DISTANCE
            return (0.0, big) if op == "!=" else (big, 0.0)
        return (
            branch_distance(op, a, b, self.epsilon),
            branch_distance(negate_op(op), a, b, self.epsilon),
        )


class RuntimeHandle:
    """Mutable holder through which instrumented code reaches the runtime.

    The instrumented module namespace closes over one handle; swapping the
    installed runtime lets many measurements reuse the same compiled code.
    :meth:`install` rebinds the probe methods directly to the installed
    runtime's bound methods, so the per-probe forwarding cost is zero.
    """

    def __init__(self) -> None:
        self._runtime: Optional[Runtime | FastRuntime] = None

    def install(self, runtime: "Runtime | FastRuntime") -> None:
        self._runtime = runtime
        # Instance attributes shadow the class-level fallbacks below, making
        # every probe a direct call on the runtime.
        self.test = runtime.test
        self.cmp = runtime.cmp
        self.tleaf = runtime.tleaf
        self.truth = runtime.truth
        self.resolve = runtime.resolve

    @property
    def runtime(self) -> "Runtime | FastRuntime":
        if self._runtime is None:
            raise RuntimeError("no Runtime installed on this handle")
        return self._runtime

    # Class-level fallbacks: reached only before the first install().
    def test(self, conditional: int, op: str, lhs, rhs) -> bool:
        return self.runtime.test(conditional, op, lhs, rhs)

    def cmp(self, conditional: int, op: str, lhs, rhs, leaf: Optional[int] = None) -> bool:
        return self.runtime.cmp(conditional, op, lhs, rhs, leaf)

    def tleaf(self, conditional: int, leaf: int, value, negated: bool = False) -> bool:
        return self.runtime.tleaf(conditional, leaf, value, negated)

    def truth(self, conditional: int, value) -> bool:
        return self.runtime.truth(conditional, value)

    def resolve(self, conditional: int, mode, outcome) -> bool:
        return self.runtime.resolve(conditional, mode, outcome)


def _evaluate(op: str, lhs, rhs) -> bool:
    if op == "==":
        return lhs == rhs
    if op == "!=":
        return lhs != rhs
    if op == "<":
        return lhs < rhs
    if op == "<=":
        return lhs <= rhs
    if op == ">":
        return lhs > rhs
    if op == ">=":
        return lhs >= rhs
    raise ValueError(f"unsupported comparison operator {op!r}")


def _compose(
    mode: str, parts: list[tuple[Optional[float], Optional[float]]]
) -> tuple[Optional[float], Optional[float]]:
    """Compose sub-comparison distances into distances for the whole test.

    For ``A and B`` the distance to truth adds the evaluated parts' distances
    (all must hold) while the distance to falsity is the smallest part
    distance (falsifying any part suffices); ``or`` is dual.  Short-circuited
    parts simply do not contribute, which matches the information available
    dynamically.
    """
    usable = [(t, f) for t, f in parts if t is not None and f is not None]
    if not usable:
        return None, None
    if mode == "single" or len(usable) == 1:
        return usable[0]
    trues = [t for t, _ in usable]
    falses = [f for _, f in usable]
    if mode == "and":
        return sum(trues), min(falses)
    if mode == "or":
        return min(trues), sum(falses)
    raise ValueError(f"unknown composition mode {mode!r}")


def _compose_program(
    program: tuple[int, ...],
    leaves: dict[int, tuple[Optional[float], Optional[float]]],
) -> tuple[Optional[float], Optional[float]]:
    """Execute a postfix composition program over stashed leaf distances.

    Mirrors :func:`_compose` semantics on arbitrary trees: children without a
    usable pair (short-circuited or non-numeric) contribute nothing, and a
    node whose children are all unusable is itself unusable.  The arithmetic
    (left-to-right sums, first-wins minima) is ordered identically to
    :meth:`FastRuntime._compose_tree` so both runtimes compose bit-identical
    distances.
    """
    stack: list[Optional[tuple[float, float]]] = []
    for token in program:
        if token >= 0:
            pair = leaves.get(token)
            if pair is not None and pair[0] is None:
                pair = None
            stack.append(pair)  # type: ignore[arg-type]
        elif token == TREE_NOT:
            if not stack:
                raise ValueError("malformed composition program: NOT on empty stack")
            pair = stack[-1]
            if pair is not None:
                stack[-1] = (pair[1], pair[0])
        else:
            arity = (-token) >> 1
            if arity < 2 or arity > len(stack):
                raise ValueError(f"malformed composition program token {token}")
            is_or = (-token) & 1
            base = len(stack) - arity
            d_true: Optional[float] = None
            d_false: Optional[float] = None
            for index in range(base, len(stack)):
                pair = stack[index]
                if pair is None:
                    continue
                t, f = pair
                if d_true is None:
                    d_true, d_false = t, f
                elif is_or:
                    if t < d_true:
                        d_true = t
                    d_false = d_false + f  # type: ignore[operator]
                else:
                    d_true = d_true + t
                    if f < d_false:  # type: ignore[operator]
                        d_false = f
            del stack[base:]
            stack.append(None if d_true is None else (d_true, d_false))  # type: ignore[arg-type]
    if len(stack) != 1:
        raise ValueError("malformed composition program: non-singleton result")
    final = stack[0]
    if final is None:
        return None, None
    return final
