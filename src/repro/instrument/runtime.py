"""Execution runtimes for instrumented programs.

The runtime plays the role of the paper's injected global variable ``r`` plus
the ``pen`` dispatch (Sect. 3.2, Step 1).  Every conditional test of the
instrumented program is rewritten into calls on an installed runtime:

* :meth:`Runtime.test` evaluates the whole test of a single-comparison
  conditional ``a op b`` in one fused probe: it computes the branch distances
  towards both outcomes (Def. 4.1), applies the ``pen`` update, records
  coverage and returns the Boolean outcome so the program's control flow is
  unchanged.
* :meth:`Runtime.cmp` evaluates one arithmetic comparison inside a Boolean
  combination (``a < b and c < d``) and stashes its distances for
  :meth:`Runtime.resolve`, which composes them, hands them to the installed
  :class:`PenaltyPolicy` (CoverMe's ``pen``) to update ``r``, and records
  branch coverage.
* :meth:`Runtime.truth` handles non-comparison tests (``if flag:``); numeric
  values are promoted to the comparison ``value != 0`` per Sect. 5.3, anything
  else is recorded for coverage only.

Execution profiles
------------------

Minimizing the representing function issues millions of executions, so the
runtime comes in two implementations selected through
:class:`ExecutionProfile`:

* ``FULL_TRACE`` -- the recording :class:`Runtime`: every conditional
  evaluation is appended to an :class:`ExecutionRecord` as a
  :class:`ConditionalOutcome`, and the penalty is delegated to a pluggable
  :class:`PenaltyPolicy`.  This is the only profile that preserves the
  *path*, so it is required by anything that inspects per-conditional
  distances or the order of conditionals (trace-based tooling, debugging,
  the line-coverage substrate's record consumers).
* ``COVERAGE`` -- the allocation-free :class:`FastRuntime`: only the final
  ``r``, a flat covered-branch bitset and the last executed conditional are
  retained.  Sound whenever the consumer needs coverage and the infeasible
  heuristic's last-conditional datum but not the path: this is everything
  Algorithm 1's reduction consumes from an accepted minimum.
* ``PENALTY_ONLY`` -- the same :class:`FastRuntime`, but the caller promises
  to read only ``r`` (the covered bitset is still maintained -- it is two
  machine operations per conditional -- but nothing per-execution is
  snapshotted).  Sound for the optimizer inner loop, where the scalar
  objective is the only output; any accepted minimum must be re-executed
  under at least ``COVERAGE`` to harvest its branches.

Both implementations compute bit-identical ``r`` values for the CoverMe
penalty (Def. 4.2): :class:`FastRuntime` inlines that exact policy against a
saturated-branch bitmask instead of calling through a policy object, and it
uses the same :func:`~repro.core.branch_distance.branch_distance` arithmetic.
The recording runtime stays policy-agnostic: with ``policy=None`` it only
records coverage (this is how the baseline tools and the Gcov substrate use
it); with CoverMe's penalty policy installed it computes the representing
function.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Iterable, Optional, Protocol

from repro.core.branch_distance import DEFAULT_EPSILON, branch_distance, negate_op

_COMPARISON_OPS = {"==", "!=", "<", "<=", ">", ">="}


class ExecutionProfile(str, enum.Enum):
    """How much information one execution of an instrumented program retains.

    Ordered from cheapest to most expensive; see the module docstring for
    when each profile is sound.
    """

    PENALTY_ONLY = "penalty"
    COVERAGE = "coverage"
    FULL_TRACE = "full-trace"


#: Config-facing names of the execution profiles, cheapest first.
EXECUTION_PROFILES: tuple[str, ...] = tuple(p.value for p in ExecutionProfile)


@dataclass(frozen=True, order=True)
class BranchId:
    """Identifies one branch: conditional label plus outcome (True/False arm)."""

    conditional: int
    outcome: bool

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        arm = "T" if self.outcome else "F"
        return f"{self.conditional}{arm}"

    @property
    def sibling(self) -> "BranchId":
        """The other branch of the same conditional."""
        return BranchId(self.conditional, not self.outcome)

    @property
    def bit(self) -> int:
        """Position of this branch in the flat branch bitsets."""
        return branch_bit(self.conditional, self.outcome)


def branch_bit(conditional: int, outcome: bool) -> int:
    """Flat bit index of a branch: ``2 * conditional + outcome``."""
    return (conditional << 1) | (1 if outcome else 0)


def branch_mask(branches: Iterable[BranchId]) -> int:
    """Pack branches into an integer bitmask (bit :func:`branch_bit` set)."""
    mask = 0
    for branch in branches:
        mask |= 1 << branch.bit
    return mask


def branches_from_mask(mask: int) -> frozenset[BranchId]:
    """Unpack an integer bitmask back into a set of branches."""
    branches: set[BranchId] = set()
    bit = 0
    while mask:
        if mask & 1:
            branches.add(BranchId(bit >> 1, bool(bit & 1)))
        mask >>= 1
        bit += 1
    return frozenset(branches)


@dataclass
class ConditionalOutcome:
    """One dynamic evaluation of a conditional statement's test."""

    conditional: int
    outcome: bool
    distance_true: Optional[float]
    distance_false: Optional[float]

    @property
    def branch(self) -> BranchId:
        return BranchId(self.conditional, self.outcome)


@dataclass
class ExecutionRecord:
    """Everything observed while executing the instrumented program once."""

    path: list[ConditionalOutcome] = field(default_factory=list)
    covered: set[BranchId] = field(default_factory=set)

    def register(self, outcome: ConditionalOutcome) -> None:
        self.path.append(outcome)
        self.covered.add(outcome.branch)

    @property
    def last(self) -> Optional[ConditionalOutcome]:
        return self.path[-1] if self.path else None

    def conditionals_executed(self) -> set[int]:
        return {o.conditional for o in self.path}

    def covered_mask(self) -> int:
        """The covered branches as a flat bitmask (see :func:`branch_bit`)."""
        return branch_mask(self.covered)


@dataclass(frozen=True)
class CoverageOutcome:
    """What one :data:`~ExecutionProfile.COVERAGE` execution retains.

    A single small object built once per execution (never per conditional):
    the covered-branch set plus the last executed conditional, which is all
    the engine's reduction consumes from an accepted minimum.
    """

    covered: frozenset[BranchId]
    last_conditional: Optional[int]
    last_outcome: Optional[bool]

    def covered_mask(self) -> int:
        return branch_mask(self.covered)


class PenaltyPolicy(Protocol):
    """Interface of the ``pen`` function plugged into the recording runtime."""

    def penalty(
        self,
        conditional: int,
        distance_true: Optional[float],
        distance_false: Optional[float],
        outcome: bool,
        current_r: float,
    ) -> float:
        """Return the new value of the global register ``r``."""
        ...  # pragma: no cover - protocol


class Runtime:
    """The recording (``FULL_TRACE``) runtime: full per-conditional trace.

    Args:
        policy: Penalty policy deciding how ``r`` evolves at each conditional.
            ``None`` means pure coverage recording (``r`` stays at 1).
        epsilon: The small positive constant of Def. 4.1 used for strict
            comparisons.
    """

    def __init__(self, policy: Optional[PenaltyPolicy] = None, epsilon: float = DEFAULT_EPSILON):
        self.policy = policy
        self.epsilon = epsilon
        self._r = 1.0
        self._record: ExecutionRecord = ExecutionRecord()
        self._pending: dict[int, list[tuple[Optional[float], Optional[float]]]] = {}
        self.total_evaluations = 0

    # -- execution lifecycle -------------------------------------------------

    def begin(self) -> None:
        """Start one execution: reset ``r`` to 1 (Step 2 of the algorithm)."""
        self._r = 1.0
        self._record = ExecutionRecord()
        self._pending = {}
        self.total_evaluations += 1

    def end(self) -> tuple[float, ExecutionRecord]:
        """Finish one execution, returning the final ``r`` and the record."""
        return self._r, self._record

    @property
    def r(self) -> float:
        """Current value of the injected global register."""
        return self._r

    @property
    def record(self) -> ExecutionRecord:
        return self._record

    # -- probes (called from instrumented code) -------------------------------

    def test(self, conditional: int, op: str, lhs, rhs) -> bool:
        """Fused probe for a single-comparison conditional test.

        Equivalent to ``resolve(c, "single", cmp(c, op, lhs, rhs))`` but with
        no pending stash and no composition scan -- the common case pays for
        exactly one probe call.
        """
        if op not in _COMPARISON_OPS:
            raise ValueError(f"unsupported comparison operator {op!r}")
        outcome = _evaluate(op, lhs, rhs)
        d_true, d_false = self._distances(op, lhs, rhs)
        return self._finish(conditional, outcome, d_true, d_false)

    def cmp(self, conditional: int, op: str, lhs, rhs) -> bool:
        """Instrumented comparison inside a Boolean combination test.

        Computes the branch distances of Def. 4.1 towards the true and the
        false outcome, stashes them for :meth:`resolve`, and returns the
        outcome of the comparison so program semantics are preserved.
        """
        if op not in _COMPARISON_OPS:
            raise ValueError(f"unsupported comparison operator {op!r}")
        outcome = _evaluate(op, lhs, rhs)
        d_true, d_false = self._distances(op, lhs, rhs)
        self._pending.setdefault(conditional, []).append((d_true, d_false))
        return outcome

    def truth(self, conditional: int, value) -> bool:
        """Instrumented non-comparison test (e.g. ``if flag:``).

        Numeric values are promoted to the comparison ``value != 0``
        (Sect. 5.3); other values -- including ``int``s too large for
        ``float()`` -- only get coverage recording.
        """
        outcome = bool(value)
        if isinstance(value, bool):
            d_true: Optional[float] = 0.0 if outcome else self.epsilon
            d_false: Optional[float] = self.epsilon if outcome else 0.0
        elif isinstance(value, (int, float)):
            # _distances converts to float itself and degrades to coverage-only
            # recording when the conversion fails (e.g. OverflowError on a
            # huge int).
            d_true, d_false = self._distances("!=", value, 0.0)
        else:
            d_true, d_false = None, None
        return self._finish(conditional, outcome, d_true, d_false)

    def resolve(self, conditional: int, mode: str, outcome) -> bool:
        """Finalize the evaluation of ``conditional``'s test.

        ``mode`` is ``"and"``/``"or"`` for Boolean combinations of
        comparisons stashed by :meth:`cmp` (``"single"`` is accepted for
        backwards compatibility with the pre-fused probe protocol).  The
        composed distances are handed to the penalty policy which updates
        ``r``; the branch taken is added to the coverage record.
        """
        outcome = bool(outcome)
        parts = self._pending.pop(conditional, [])
        d_true, d_false = _compose(mode, parts)
        return self._finish(conditional, outcome, d_true, d_false)

    # -- internals -------------------------------------------------------------

    def _finish(
        self,
        conditional: int,
        outcome: bool,
        d_true: Optional[float],
        d_false: Optional[float],
    ) -> bool:
        """Apply the penalty policy and record one conditional evaluation."""
        if self.policy is not None and (d_true is not None or d_false is not None):
            self._r = float(
                self.policy.penalty(conditional, d_true, d_false, outcome, self._r)
            )
        self._record.register(
            ConditionalOutcome(
                conditional=conditional,
                outcome=outcome,
                distance_true=d_true,
                distance_false=d_false,
            )
        )
        return outcome

    def _distances(self, op: str, lhs, rhs) -> tuple[Optional[float], Optional[float]]:
        try:
            a = float(lhs)
            b = float(rhs)
        except (TypeError, ValueError, OverflowError):
            # OverflowError: an ``int`` beyond float range (satellite of the
            # Sect. 5.3 promotion); treat like any other incomparable value.
            return None, None
        if math.isnan(a) or math.isnan(b):
            # NaN comparisons are all-false except ``!=``; there is no usable
            # gradient, so report a large constant distance.
            big = 1.0e300
            return (0.0, big) if op == "!=" else (big, 0.0)
        d_true = branch_distance(op, a, b, self.epsilon)
        d_false = branch_distance(negate_op(op), a, b, self.epsilon)
        return d_true, d_false


class FastRuntime:
    """The allocation-free runtime behind ``PENALTY_ONLY`` and ``COVERAGE``.

    Hardwires CoverMe's ``pen`` (Def. 4.2) against a *saturated-branch
    bitmask* frozen at :meth:`begin`:

    * both branches of the conditional saturated -- keep ``r`` (case c); no
      distance is computed at all;
    * neither saturated -- ``r`` becomes 0 (case a); no distance either,
      except the operands are still checked for float-comparability so the
      recording runtime's "no usable distance => keep ``r``" degradation is
      reproduced exactly;
    * exactly one saturated -- ``r`` becomes the branch distance towards the
      unsaturated branch (case b), computed with the same
      :func:`~repro.core.branch_distance.branch_distance` arithmetic as the
      recording runtime, so the two produce bit-identical ``r`` values.

    Coverage is kept as a flat bytearray indexed by :func:`branch_bit`
    (two machine operations per conditional, no per-conditional objects);
    the last executed conditional is tracked for the infeasible-branch
    heuristic.  The per-execution path is *not* retained -- use the
    recording :class:`Runtime` when the trace matters.

    The saturation snapshot is frozen per execution, which is sound inside
    one engine start (the tracker is only folded between starts); callers
    whose tracker evolves must pass the current mask to every
    :meth:`begin`.
    """

    __slots__ = (
        "epsilon",
        "n_conditionals",
        "saturated_mask",
        "total_evaluations",
        "_r",
        "_covered",
        "_zeros",
        "_pending",
        "_last_conditional",
        "_last_outcome",
    )

    def __init__(
        self,
        n_conditionals: int,
        saturated_mask: int = 0,
        epsilon: float = DEFAULT_EPSILON,
    ):
        self.epsilon = epsilon
        self.n_conditionals = n_conditionals
        self.saturated_mask = saturated_mask
        self.total_evaluations = 0
        self._r = 1.0
        self._zeros = bytes(2 * n_conditionals)
        self._covered = bytearray(self._zeros)
        self._pending: dict[int, list[tuple[Optional[float], Optional[float]]]] = {}
        self._last_conditional = -1
        self._last_outcome = False

    # -- execution lifecycle -------------------------------------------------

    def begin(self, saturated_mask: Optional[int] = None) -> None:
        """Start one execution against ``saturated_mask`` (kept when omitted)."""
        if saturated_mask is not None:
            self.saturated_mask = saturated_mask
        self._r = 1.0
        self._covered[:] = self._zeros
        if self._pending:
            self._pending.clear()
        self._last_conditional = -1
        self.total_evaluations += 1

    @property
    def r(self) -> float:
        """Current value of the injected global register."""
        return self._r

    @property
    def last_conditional(self) -> Optional[int]:
        return self._last_conditional if self._last_conditional >= 0 else None

    @property
    def last_outcome(self) -> Optional[bool]:
        return self._last_outcome if self._last_conditional >= 0 else None

    def covered_mask(self) -> int:
        """The covered branches of the current execution as a flat bitmask."""
        mask = 0
        for bit, hit in enumerate(self._covered):
            if hit:
                mask |= 1 << bit
        return mask

    def covered_branches(self) -> frozenset[BranchId]:
        """The covered branches of the current execution as ``BranchId``s."""
        return frozenset(
            BranchId(bit >> 1, bool(bit & 1))
            for bit, hit in enumerate(self._covered)
            if hit
        )

    def snapshot(self) -> CoverageOutcome:
        """Snapshot the coverage-profile outputs of the current execution."""
        return CoverageOutcome(
            covered=self.covered_branches(),
            last_conditional=self.last_conditional,
            last_outcome=self.last_outcome,
        )

    # -- probes (called from instrumented code) -------------------------------

    def test(self, conditional: int, op: str, lhs, rhs) -> bool:
        """Fused single-comparison probe; the engine's hottest code path."""
        outcome = _evaluate(op, lhs, rhs)
        self._covered[(conditional << 1) | outcome] = 1
        self._last_conditional = conditional
        self._last_outcome = outcome
        bits = (self.saturated_mask >> (conditional << 1)) & 3
        if bits == 3:
            # Def. 4.2(c): both branches saturated, keep r; skip the
            # distance computation entirely.
            return outcome
        lhs_type = lhs.__class__
        if lhs_type is not float or rhs.__class__ is not float:
            try:
                lhs = float(lhs)
                rhs = float(rhs)
            except (TypeError, ValueError, OverflowError):
                # No usable distance: the recording runtime keeps r here.
                return outcome
        if bits == 0:
            # Def. 4.2(a): any outcome saturates a new branch.
            self._r = 0.0
            return outcome
        if lhs != lhs or rhs != rhs:  # NaN operand (matches Runtime._distances)
            if bits == 1:  # steer towards the true branch
                self._r = 0.0 if op == "!=" else 1.0e300
            else:  # steer towards the false branch
                self._r = 1.0e300 if op == "!=" else 0.0
            return outcome
        if bits == 1:
            # Def. 4.2(b): only the false branch saturated; steer to true.
            self._r = branch_distance(op, lhs, rhs, self.epsilon)
        else:
            # Def. 4.2(b): only the true branch saturated; steer to false.
            self._r = branch_distance(negate_op(op), lhs, rhs, self.epsilon)
        return outcome

    def cmp(self, conditional: int, op: str, lhs, rhs) -> bool:
        """Comparison inside a Boolean combination; stashes distances."""
        if op not in _COMPARISON_OPS:
            raise ValueError(f"unsupported comparison operator {op!r}")
        outcome = _evaluate(op, lhs, rhs)
        d_true, d_false = self._distances(op, lhs, rhs)
        self._pending.setdefault(conditional, []).append((d_true, d_false))
        return outcome

    def truth(self, conditional: int, value) -> bool:
        """Non-comparison test; same promotion rules as the recording runtime."""
        outcome = bool(value)
        if isinstance(value, bool):
            d_true: Optional[float] = 0.0 if outcome else self.epsilon
            d_false: Optional[float] = self.epsilon if outcome else 0.0
        elif isinstance(value, (int, float)):
            d_true, d_false = self._distances("!=", value, 0.0)
        else:
            d_true, d_false = None, None
        return self._finish(conditional, outcome, d_true, d_false)

    def resolve(self, conditional: int, mode: str, outcome) -> bool:
        """Finalize a Boolean-combination test stashed by :meth:`cmp`."""
        outcome = bool(outcome)
        parts = self._pending.pop(conditional, [])
        d_true, d_false = _compose(mode, parts)
        return self._finish(conditional, outcome, d_true, d_false)

    # -- internals -------------------------------------------------------------

    def _finish(
        self,
        conditional: int,
        outcome: bool,
        d_true: Optional[float],
        d_false: Optional[float],
    ) -> bool:
        self._covered[(conditional << 1) | outcome] = 1
        self._last_conditional = conditional
        self._last_outcome = outcome
        if d_true is None and d_false is None:
            return outcome
        bits = (self.saturated_mask >> (conditional << 1)) & 3
        if bits == 0:
            self._r = 0.0
        elif bits == 1:
            if d_true is not None:
                self._r = d_true
        elif bits == 2:
            if d_false is not None:
                self._r = d_false
        return outcome

    def _distances(self, op: str, lhs, rhs) -> tuple[Optional[float], Optional[float]]:
        try:
            a = float(lhs)
            b = float(rhs)
        except (TypeError, ValueError, OverflowError):
            return None, None
        if math.isnan(a) or math.isnan(b):
            big = 1.0e300
            return (0.0, big) if op == "!=" else (big, 0.0)
        return (
            branch_distance(op, a, b, self.epsilon),
            branch_distance(negate_op(op), a, b, self.epsilon),
        )


class RuntimeHandle:
    """Mutable holder through which instrumented code reaches the runtime.

    The instrumented module namespace closes over one handle; swapping the
    installed runtime lets many measurements reuse the same compiled code.
    :meth:`install` rebinds the probe methods directly to the installed
    runtime's bound methods, so the per-probe forwarding cost is zero.
    """

    def __init__(self) -> None:
        self._runtime: Optional[Runtime | FastRuntime] = None

    def install(self, runtime: "Runtime | FastRuntime") -> None:
        self._runtime = runtime
        # Instance attributes shadow the class-level fallbacks below, making
        # every probe a direct call on the runtime.
        self.test = runtime.test
        self.cmp = runtime.cmp
        self.truth = runtime.truth
        self.resolve = runtime.resolve

    @property
    def runtime(self) -> "Runtime | FastRuntime":
        if self._runtime is None:
            raise RuntimeError("no Runtime installed on this handle")
        return self._runtime

    # Class-level fallbacks: reached only before the first install().
    def test(self, conditional: int, op: str, lhs, rhs) -> bool:
        return self.runtime.test(conditional, op, lhs, rhs)

    def cmp(self, conditional: int, op: str, lhs, rhs) -> bool:
        return self.runtime.cmp(conditional, op, lhs, rhs)

    def truth(self, conditional: int, value) -> bool:
        return self.runtime.truth(conditional, value)

    def resolve(self, conditional: int, mode: str, outcome) -> bool:
        return self.runtime.resolve(conditional, mode, outcome)


def _evaluate(op: str, lhs, rhs) -> bool:
    if op == "==":
        return lhs == rhs
    if op == "!=":
        return lhs != rhs
    if op == "<":
        return lhs < rhs
    if op == "<=":
        return lhs <= rhs
    if op == ">":
        return lhs > rhs
    if op == ">=":
        return lhs >= rhs
    raise ValueError(f"unsupported comparison operator {op!r}")


def _compose(
    mode: str, parts: list[tuple[Optional[float], Optional[float]]]
) -> tuple[Optional[float], Optional[float]]:
    """Compose sub-comparison distances into distances for the whole test.

    For ``A and B`` the distance to truth adds the evaluated parts' distances
    (all must hold) while the distance to falsity is the smallest part
    distance (falsifying any part suffices); ``or`` is dual.  Short-circuited
    parts simply do not contribute, which matches the information available
    dynamically.
    """
    usable = [(t, f) for t, f in parts if t is not None and f is not None]
    if not usable:
        return None, None
    if mode == "single" or len(usable) == 1:
        return usable[0]
    trues = [t for t, _ in usable]
    falses = [f for _, f in usable]
    if mode == "and":
        return sum(trues), min(falses)
    if mode == "or":
        return min(trues), sum(falses)
    raise ValueError(f"unknown composition mode {mode!r}")
