"""Descendant-branch analysis (Def. 3.2 support).

Saturation (Def. 3.2) needs to know, for every branch ``b``, the set of
*descendant branches*: branches reachable from ``b`` by control flow.  This
module computes a conservative static over-approximation directly on the
Python AST of the program under test:

* branches nested inside the taken arm of a conditional are descendants of
  that arm;
* conditionals appearing after a statement are descendants of both arms,
  unless the arm always terminates abruptly (``return``/``raise``/``break``/
  ``continue``), in which case nothing that follows is reachable from it;
* a ``while`` loop's body branches (and the loop test itself) are descendants
  of the loop's true branch.

Over-approximating descendants is safe for the algorithm: it can only delay
the moment a branch is declared saturated, never declare saturation too
early, so condition C2 of the representing function is preserved.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.instrument.ast_pass import iter_child_blocks
from repro.instrument.runtime import BranchId


@dataclass
class DescendantAnalysis:
    """Maps every branch to the conditionals reachable after taking it."""

    reachable: dict[BranchId, frozenset[int]] = field(default_factory=dict)

    @classmethod
    def from_function(
        cls, func_node: ast.FunctionDef, labels: dict[int, int]
    ) -> "DescendantAnalysis":
        """Run the analysis on a (possibly already instrumented) function AST."""
        analysis = cls()
        analysis._labels = labels  # type: ignore[attr-defined]
        analysis._walk_block(func_node.body, frozenset())
        # Ensure every labeled conditional has entries even if unreachable.
        for label in labels.values():
            analysis.reachable.setdefault(BranchId(label, True), frozenset())
            analysis.reachable.setdefault(BranchId(label, False), frozenset())
        return analysis

    def merge(self, other: "DescendantAnalysis") -> None:
        """Merge another function's analysis (used for multi-function programs)."""
        self.reachable.update(other.reachable)

    def descendant_conditionals(self, branch: BranchId) -> frozenset[int]:
        """Conditional labels reachable by control flow after taking ``branch``."""
        return self.reachable.get(branch, frozenset())

    def descendant_branches(self, branch: BranchId) -> frozenset[BranchId]:
        """Descendant branches of ``branch`` in the sense of Def. 3.2."""
        result: set[BranchId] = set()
        for label in self.descendant_conditionals(branch):
            result.add(BranchId(label, True))
            result.add(BranchId(label, False))
        return frozenset(result)

    # -- recursive walk ----------------------------------------------------------

    def _label_of(self, stmt: ast.stmt) -> int | None:
        return self._labels.get(id(stmt))  # type: ignore[attr-defined]

    def _contains(self, stmts: list[ast.stmt]) -> frozenset[int]:
        """All conditional labels syntactically contained in a block.

        Uses the same :func:`~repro.instrument.ast_pass.iter_child_blocks`
        helper as :func:`~repro.instrument.ast_pass.collect_conditionals`, so
        every statement form the labeler descends into (including ``try*``
        handlers and ``match`` cases) is also seen here.
        """
        found: set[int] = set()

        def visit(block: list[ast.stmt]) -> None:
            for stmt in block:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    continue
                label = self._label_of(stmt)
                if label is not None:
                    found.add(label)
                for child in iter_child_blocks(stmt):
                    visit(child)

        visit(stmts)
        return frozenset(found)

    def _terminates(self, stmts: list[ast.stmt]) -> bool:
        """Whether a block always exits abruptly (conservative)."""
        for stmt in stmts:
            if isinstance(stmt, (ast.Return, ast.Raise, ast.Break, ast.Continue)):
                return True
            if isinstance(stmt, ast.If):
                if (
                    stmt.orelse
                    and self._terminates(stmt.body)
                    and self._terminates(stmt.orelse)
                ):
                    return True
        return False

    def _walk_block(self, stmts: list[ast.stmt], continuation: frozenset[int]) -> None:
        for index, stmt in enumerate(stmts):
            suffix = stmts[index + 1 :]
            following = self._contains(suffix)
            if not self._terminates(suffix):
                following = following | continuation
            self._visit_stmt(stmt, following)

    def _visit_stmt(self, stmt: ast.stmt, following: frozenset[int]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(stmt, ast.If):
            label = self._label_of(stmt)
            body_labels = self._contains(stmt.body)
            else_labels = self._contains(stmt.orelse)
            if label is not None:
                true_reach = body_labels | (frozenset() if self._terminates(stmt.body) else following)
                false_reach = else_labels | (
                    frozenset() if stmt.orelse and self._terminates(stmt.orelse) else following
                )
                self.reachable[BranchId(label, True)] = true_reach
                self.reachable[BranchId(label, False)] = false_reach
            self._walk_block(stmt.body, following)
            self._walk_block(stmt.orelse, following)
        elif isinstance(stmt, ast.While):
            label = self._label_of(stmt)
            body_labels = self._contains(stmt.body)
            loop_reach = body_labels | following
            if label is not None:
                loop_reach = loop_reach | {label}
                self.reachable[BranchId(label, True)] = loop_reach
                self.reachable[BranchId(label, False)] = following
            self._walk_block(stmt.body, loop_reach)
            self._walk_block(stmt.orelse, following)
        elif isinstance(stmt, ast.For):
            body_labels = self._contains(stmt.body)
            self._walk_block(stmt.body, body_labels | following)
            self._walk_block(stmt.orelse, following)
        else:
            # Every other block-bearing statement (with, try/try* including
            # handlers, match cases, async variants) walks its child blocks
            # with the same continuation: each block may or may not run, and
            # conditionals after the statement stay reachable -- a safe
            # over-approximation for Def. 3.2.
            for block in iter_child_blocks(stmt):
                self._walk_block(block, following)
