"""Native C emission tier (the ``PENALTY_NATIVE`` profile).

This package compiles the same lowered IR + saturation mask the scalar
specializer (:mod:`repro.instrument.specialize`) and the batched vectorizer
(:mod:`repro.instrument.batch`) consume down to machine code:

* :mod:`repro.instrument.native.emit` -- the backend-agnostic emitter core.
  It walks the *specialized* units (probes already resolved against the mask)
  into a small typed IR with explicit float64/int64 semantics, spelling out
  everything CPython does implicitly: fdlibm word intrinsics as uint64
  bit-casts, int64 wrap-around, guarded truncation, exception-to-freeze
  semantics and the NaN-per-direction distance constants.
* :mod:`repro.instrument.native.c_backend` -- the C99 backend.  Renders the
  IR into a translation unit exposing a scalar entry point and a batch
  ``for``-loop entry point.
* :mod:`repro.instrument.native.cache` -- compiler discovery, out-of-process
  compilation via the system ``cc`` and a content-addressed, FIFO-bounded
  shared-object cache on disk, loaded with :mod:`ctypes`.
* :mod:`repro.instrument.native.kernel` -- :class:`NativeKernel`, the
  runtime object the representing function dispatches to, with a per-row
  fallback onto the scalar :class:`SpecializedVariant` for inputs the native
  code cannot replicate bit-exactly (``sp_bail``).

``r`` stays bit-identical to the scalar ``PENALTY_SPECIALIZED`` tier: every
construct either compiles to arithmetic proven to match CPython's, freezes
the row exactly where the scalar tier would swallow an exception, or bails
the row out to the scalar variant.  Machines without a C compiler degrade to
``PENALTY_SPECIALIZED`` with a one-time warning.
"""

from repro.instrument.native.cache import (
    NativeCompiling,
    NativeUnavailable,
    background_compile_stats,
    background_ready,
    cc_available,
    disk_cache_max,
    native_cache_dir,
    native_cache_entries,
    native_clean_disk_cache,
    opt_tier,
)
from repro.instrument.native.kernel import (
    CovAccumulator,
    NativeKernel,
    build_native_kernel,
    clear_native_cache,
    native_cache_info,
)

__all__ = [
    "CovAccumulator",
    "NativeCompiling",
    "NativeKernel",
    "NativeUnavailable",
    "background_compile_stats",
    "background_ready",
    "build_native_kernel",
    "cc_available",
    "clear_native_cache",
    "disk_cache_max",
    "native_cache_dir",
    "native_cache_entries",
    "native_cache_info",
    "native_clean_disk_cache",
    "opt_tier",
]
