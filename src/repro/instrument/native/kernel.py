"""Build, cache and run native penalty kernels (``PENALTY_NATIVE``).

:func:`build_native_kernel` mirrors :func:`~repro.instrument.batch.build_batch_kernel`:
the scalar :class:`~repro.instrument.program.SpecializedVariant` is built
first (it is the per-row bail target and supplies the namespace whose
constants the emitter folds), then the typed IR is emitted, rendered to C99,
compiled into the content-addressed disk cache and loaded with
:mod:`ctypes`.  Loaded kernels are cached module-wide per digest with the
same hit/miss/evict bookkeeping as the specialized and batched caches.

The generated code keeps all state in a per-call stack context, so one
loaded kernel is safely shared across threads; worker processes re-open the
same ``.so`` from disk without recompiling.
"""

from __future__ import annotations

import ctypes
import hashlib
import threading

try:  # pragma: no cover - exercised by monkeypatching in tests
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

from repro.core.branch_distance import DEFAULT_EPSILON
from repro.instrument.native.c_backend import BACKEND_NAME, render_c
from repro.instrument.native.cache import (
    ABI_VERSION,
    NativeUnavailable,
    compile_kernel,
    compile_kernel_background,
    cc_version,
    find_cc,
    native_cache_dir,
    native_cache_entries,
    opt_tier,
)
from repro.instrument.native.emit import emit_program_ir

_C_DOUBLE_P = ctypes.POINTER(ctypes.c_double)
_C_U64_P = ctypes.POINTER(ctypes.c_uint64)
_C_U8_P = ctypes.POINTER(ctypes.c_ubyte)

#: Exceptions the scalar tiers swallow (the bail re-run must too).
_SWALLOWED = (ArithmeticError, ValueError, OverflowError)


class _LoadedKernel:
    """One compiled-and-loaded shared object (immutable, thread-shareable)."""

    __slots__ = ("digest", "so_path", "lib", "sp_entry", "sp_batch",
                 "sp_batch_mt", "arity", "n_words", "bail_sites",
                 "freeze_sites")

    def __init__(self, digest, so_path, lib, arity, n_words,
                 bail_sites, freeze_sites):
        self.digest = digest
        self.so_path = so_path
        self.lib = lib
        self.arity = arity
        self.n_words = n_words
        self.bail_sites = bail_sites
        self.freeze_sites = freeze_sites
        entry = lib.sp_entry
        entry.restype = ctypes.c_int
        entry.argtypes = [_C_DOUBLE_P, _C_DOUBLE_P, _C_U64_P]
        batch = lib.sp_batch
        batch.restype = None
        batch.argtypes = [_C_DOUBLE_P, ctypes.c_longlong, _C_DOUBLE_P,
                          _C_U64_P, _C_U8_P]
        batch_mt = lib.sp_batch_mt
        batch_mt.restype = None
        batch_mt.argtypes = [_C_DOUBLE_P, ctypes.c_longlong,
                             ctypes.c_longlong, _C_DOUBLE_P, _C_U64_P,
                             _C_U8_P]
        self.sp_entry = entry
        self.sp_batch = batch
        self.sp_batch_mt = batch_mt


def kernel_digest(units, saturated_mask: int, epsilon: float) -> str:
    """Content digest of one native kernel build.

    Everything that affects the generated machine code participates: the
    per-unit (source sha256, function name, start label) triples, the
    saturation mask, epsilon (hex, bit-exact), the backend name, the
    compiler version line, the optimization flag tier and the codegen ABI
    version."""
    _cc, version = find_cc()
    hasher = hashlib.sha256()
    for source, function_name, start_label in units:
        source_sha = hashlib.sha256(source.encode("utf-8")).hexdigest()
        hasher.update(f"{source_sha}:{function_name}:{start_label}\n".encode())
    hasher.update(f"mask={saturated_mask:x}\n".encode())
    hasher.update(f"eps={float(epsilon).hex()}\n".encode())
    hasher.update(f"backend={BACKEND_NAME}\n".encode())
    hasher.update(f"cc={version}\n".encode())
    hasher.update(f"opt={opt_tier()}\n".encode())
    hasher.update(f"abi={ABI_VERSION}\n".encode())
    return hasher.hexdigest()


#: Module-level loaded-kernel cache: digest -> _LoadedKernel.  Negative
#: results (NativeUnavailable from emission) are cached as the exception
#: instance so a non-emittable program does not re-run the emitter on every
#: epoch.
_NATIVE_CACHE: dict[str, object] = {}
_NATIVE_CACHE_LOCK = threading.Lock()
_NATIVE_CACHE_MAX = 128
_NATIVE_CACHE_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def native_cache_info() -> dict:
    """Size and hit/miss/evict statistics of the native-kernel cache.

    ``disk_entries`` counts shared objects in the on-disk cache and ``cc``
    is the detected compiler version line (``None`` without a compiler)."""
    with _NATIVE_CACHE_LOCK:
        info = {
            "entries": len(_NATIVE_CACHE),
            "max_entries": _NATIVE_CACHE_MAX,
            **_NATIVE_CACHE_STATS,
        }
    info["disk_entries"] = len(native_cache_entries())
    info["cc"] = cc_version()
    return info


def clear_native_cache() -> None:
    """Drop every loaded kernel and reset the statistics (tests).

    The on-disk shared objects stay; use
    :func:`repro.instrument.native.cache.native_clean_disk_cache` for those.
    """
    with _NATIVE_CACHE_LOCK:
        _NATIVE_CACHE.clear()
        for key in _NATIVE_CACHE_STATS:
            _NATIVE_CACHE_STATS[key] = 0


def _load(units, entry_name, arity, n_conditionals, namespace,
          saturated_mask, epsilon, wait: bool = True) -> _LoadedKernel:
    digest = kernel_digest(units, saturated_mask, epsilon)
    with _NATIVE_CACHE_LOCK:
        cached = _NATIVE_CACHE.get(digest)
        if cached is not None:
            _NATIVE_CACHE_STATS["hits"] += 1
        else:
            _NATIVE_CACHE_STATS["misses"] += 1
    if cached is not None:
        if isinstance(cached, NativeUnavailable):
            raise cached
        return cached
    try:
        ir = emit_program_ir(units, entry_name, arity, n_conditionals,
                             namespace, saturated_mask, epsilon)
        c_source = render_c(ir)
        if wait:
            so_path = compile_kernel(c_source, digest)
        else:
            # Raises NativeCompiling while the background build runs; that
            # transient state is never negatively cached (it is not a
            # NativeUnavailable), so the next poll can pick the kernel up.
            so_path = compile_kernel_background(c_source, digest)
        try:
            lib = ctypes.CDLL(str(so_path))
        except OSError:
            # The .so can vanish between the cache lookup and the load when
            # a concurrent build FIFO-prunes the directory; rebuild once in
            # the foreground rather than degrading permanently.
            so_path = compile_kernel(c_source, digest)
            lib = ctypes.CDLL(str(so_path))
        loaded = _LoadedKernel(
            digest, so_path, lib, len(ir.entry.params), ir.n_words,
            ir.bail_sites, ir.freeze_sites,
        )
    except NativeUnavailable as exc:
        with _NATIVE_CACHE_LOCK:
            _NATIVE_CACHE[digest] = exc
        raise
    with _NATIVE_CACHE_LOCK:
        while len(_NATIVE_CACHE) >= _NATIVE_CACHE_MAX:
            _NATIVE_CACHE.pop(next(iter(_NATIVE_CACHE)))
            _NATIVE_CACHE_STATS["evictions"] += 1
        _NATIVE_CACHE[digest] = loaded
    return loaded


class CovAccumulator:
    """Caller-held covered-bits accumulator for incremental reduction.

    The threaded batch entry (``sp_batch_mt``) treats its coverage output
    as an in/out buffer — OR-ing into it without zeroing — so a caller that
    holds one accumulator across calls never re-unions bits it has already
    seen.  After each call, :attr:`covered` is the running union and the
    kernel returns only the *newly*-set mask, which
    :meth:`SaturationTracker.add_covered_mask
    <repro.core.saturation.SaturationTracker.add_covered_mask>` consumes
    directly."""

    __slots__ = ("n_words", "words", "covered")

    def __init__(self, n_words: int):
        self.n_words = n_words
        self.words = (
            np.zeros(n_words, dtype=np.uint64) if np is not None else None
        )
        self.covered = 0  # running union, including scalar-fallback bits


class NativeKernel:
    """One loaded native evaluator bound to a program's specialized variant.

    ``kernel(X)`` has exactly the :class:`~repro.instrument.batch.BatchKernel`
    contract: an ``(N, arity)`` float64 array in, ``(r, covered)`` out, where
    ``r`` is the raw penalty vector (callers clamp) and ``covered`` the union
    covered-bit summary over all rows.  ``kernel(X, n_threads=k)`` evaluates
    the rows on ``k`` native threads with bit-identical results (private
    per-thread coverage partials, merged in thread-index order).  Passing a
    :class:`CovAccumulator` switches the coverage return to the
    newly-set-bits delta (incremental reduction).  Rows the native code
    flags as bailed (a construct whose bit-exact CPython semantics the
    emitter could not prove) are transparently re-run on the scalar
    specialized variant, so results never depend on the emitter's coverage
    being perfect.  :meth:`scalar` is the one-row entry point used by
    ``evaluate``.
    """

    __slots__ = ("variant", "loaded", "saturated_mask", "epsilon",
                 "arity", "mode")

    def __init__(self, variant, loaded: _LoadedKernel):
        self.variant = variant
        self.loaded = loaded
        self.saturated_mask = variant.saturated_mask
        self.epsilon = variant.epsilon
        self.arity = loaded.arity
        self.mode = "native"

    @property
    def digest(self) -> str:
        return self.loaded.digest

    def scalar(self, args) -> tuple[float, int]:
        """Evaluate one row, returning ``(r, covered_mask)`` (raw ``r``)."""
        arity = self.arity
        buf = (ctypes.c_double * arity)(*[float(v) for v in args])
        r_out = ctypes.c_double(0.0)
        cov = (ctypes.c_uint64 * self.loaded.n_words)()
        bailed = self.loaded.sp_entry(buf, ctypes.byref(r_out), cov)
        if bailed:
            return self._scalar_fallback(args)
        covered = 0
        for word_index in range(self.loaded.n_words):
            covered |= int(cov[word_index]) << (64 * word_index)
        return r_out.value, covered

    def _scalar_fallback(self, args) -> tuple[float, int]:
        variant = self.variant
        _value, r = variant.run(args)
        return r, variant.covered_mask()

    def new_accumulator(self) -> CovAccumulator:
        """A fresh caller-held accumulator for incremental reduction."""
        return CovAccumulator(self.loaded.n_words)

    def __call__(self, X, n_threads: int = 1, accumulator=None):
        """Evaluate a batch: ``(r, covered)``.

        Without an accumulator, ``covered`` is the union over this call's
        rows.  With one, the native code ORs into the accumulator's word
        buffer (never zeroed) and ``covered`` is only the newly-set mask;
        ``accumulator.covered`` holds the running union."""
        if np is None:
            return self._call_rows(X, accumulator=accumulator)
        X = np.ascontiguousarray(np.atleast_2d(np.asarray(X, dtype=np.float64)))
        n = X.shape[0]
        if X.shape[1] != self.arity:
            raise ValueError(f"expected {self.arity} columns, got {X.shape[1]}")
        n_words = self.loaded.n_words
        r = np.empty(n, dtype=np.float64)
        cov = accumulator.words if accumulator is not None else np.zeros(
            n_words, dtype=np.uint64)
        bail = np.empty(n, dtype=np.uint8)
        # sp_batch_mt never zeroes cov (in/out accumulator contract);
        # results are bit-identical to sp_batch for any thread count.
        self.loaded.sp_batch_mt(
            X.ctypes.data_as(_C_DOUBLE_P),
            ctypes.c_longlong(n),
            ctypes.c_longlong(max(1, int(n_threads))),
            r.ctypes.data_as(_C_DOUBLE_P),
            cov.ctypes.data_as(_C_U64_P),
            bail.ctypes.data_as(_C_U8_P),
        )
        covered = 0
        for word_index in range(n_words):
            covered |= int(cov[word_index]) << (64 * word_index)
        if bail.any():
            for row_index in np.nonzero(bail)[0]:
                row_r, row_cov = self._scalar_fallback(X[row_index].tolist())
                r[row_index] = row_r
                covered |= row_cov
        if accumulator is None:
            return r, covered
        new_mask = covered & ~accumulator.covered
        accumulator.covered |= covered
        return r, new_mask

    def _call_rows(self, X, accumulator=None):
        """No-numpy fallback: per-row native scalar calls, union coverage."""
        rows = [[float(v) for v in row] for row in X]
        out = [0.0] * len(rows)
        covered = 0
        for row_index, row in enumerate(rows):
            row_r, row_cov = self.scalar(row)
            out[row_index] = row_r
            covered |= row_cov
        if accumulator is None:
            return out, covered
        new_mask = covered & ~accumulator.covered
        accumulator.covered |= covered
        return out, new_mask


def build_native_kernel(program, saturated_mask: int,
                        epsilon: float = DEFAULT_EPSILON,
                        wait: bool = True) -> NativeKernel:
    """Build (or fetch from cache) the native kernel for one program/mask.

    Raises :class:`NativeUnavailable` when no C compiler is present, the
    program has no source units, or the emitter cannot produce a useful
    kernel (the entry would bail unconditionally); callers degrade to the
    scalar specialized tier.  With ``wait=False`` the compile is handed to
    the background worker and
    :class:`~repro.instrument.native.cache.NativeCompiling` is raised while
    it runs — a transient state callers serve the specialized tier through.
    """
    if not program.units:
        raise NativeUnavailable(
            f"program {program.name!r} carries no source units"
        )
    variant = program.specialize(saturated_mask, epsilon)
    loaded = _load(
        program.units,
        program.name,
        program.arity,
        program.n_conditionals,
        variant.namespace,
        variant.saturated_mask,
        variant.epsilon,
        wait=wait,
    )
    return NativeKernel(variant, loaded)


__all__ = [
    "CovAccumulator",
    "NativeKernel",
    "build_native_kernel",
    "clear_native_cache",
    "kernel_digest",
    "native_cache_dir",
    "native_cache_info",
]
