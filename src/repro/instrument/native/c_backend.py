"""C99 backend: renders the typed native IR into one translation unit.

The generated file exposes two entry points with a fixed ABI:

``int sp_entry(const double *x, double *r_out, uint64_t *cov_out)``
    One row.  Returns 0 on completion (``r_out``/``cov_out`` valid, frozen
    rows included) and 1 on a *bail* (the caller re-runs the row on the
    scalar specialized variant).

``void sp_batch(const double *rows, long long n, double *r_out,
uint64_t *cov_out, unsigned char *bail_out)``
    ``n`` rows, row-major, ``arity`` doubles each.  ``cov_out`` receives the
    union of covered bits over the non-bailed rows; ``bail_out[i]`` flags
    rows the caller must redo.

``void sp_batch_mt(const double *rows, long long n, long long n_threads,
double *r_out, uint64_t *cov_out, unsigned char *bail_out)``
    Same row semantics, but the row range is partitioned across pthread
    workers (the same size+rest split as the engine's ``chunk_evenly``).
    Each worker accumulates covered bits into a private
    ``uint64_t[SP_NWORDS]`` partial; the coordinator joins and OR-merges
    the partials in fixed thread-index order.  Rows are independent and OR
    is commutative, so ``r_out`` and the covered set are bit-identical for
    any thread count.  Unlike ``sp_batch``, ``cov_out`` is an **in/out
    accumulator**: it is never zeroed here, only OR-ed into, so a caller
    holding the accumulator across calls reads only newly-set words.

All per-row state lives in a context struct on the worker's stack, so one
shared object is safely callable from many threads at once.  The serial
row loop hoists the context out of the loop (clearing only dirtied words)
and ``restrict``-qualifies the row/output pointers so the compiler may
vectorize it.  Float constants render as C99 hex literals for
bit-exactness, and the build uses ``-ffp-contract=off`` so no FMA
contraction can change results.
"""

from __future__ import annotations

import math

from repro.instrument.native.emit import (
    ArrRef,
    Bin,
    CallE,
    Cast,
    Const,
    FnIR,
    ProgramIR,
    SAssign,
    SBail,
    SBreak,
    SCall,
    SContinue,
    SCov,
    SFreeze,
    SIf,
    SLoop,
    SReturn,
    SSetR,
    Sel,
    T_BOOL,
    T_F64,
    T_I64,
    Un,
    VarRef,
)

BACKEND_NAME = "c99"

_CTYPES = {T_BOOL: "int", T_I64: "int64_t", T_F64: "double"}
_CZEROS = {T_BOOL: "0", T_I64: "0", T_F64: "0.0"}

_PRELUDE = r"""
#include <stdint.h>
#include <string.h>
#include <math.h>
#include <pthread.h>

/* Stack-array bound on worker threads per sp_batch_mt call. */
#define SP_MT_MAX 64

typedef struct {
    double r;
    uint64_t cov[SP_NWORDS];
    int status; /* 0 ok, 1 frozen (swallowed exception), 2 bail */
} SpCtx;

static uint64_t sp_bits(double x) { uint64_t u; memcpy(&u, &x, 8); return u; }
static double sp_double(uint64_t u) { double x; memcpy(&x, &u, 8); return x; }
static int64_t sp_high_word(double x) {
    return (int64_t)(int32_t)(uint32_t)(sp_bits(x) >> 32);
}
static int64_t sp_low_word(double x) { return (int64_t)(uint32_t)sp_bits(x); }
static double sp_from_words(int64_t hi, int64_t lo) {
    return sp_double((((uint64_t)hi & 0xffffffffULL) << 32)
                     | ((uint64_t)lo & 0xffffffffULL));
}
static double sp_set_high_word(double x, int64_t hi) {
    return sp_double((sp_bits(x) & 0xffffffffULL)
                     | (((uint64_t)hi & 0xffffffffULL) << 32));
}
static double sp_set_low_word(double x, int64_t lo) {
    return sp_double((sp_bits(x) & 0xffffffff00000000ULL)
                     | ((uint64_t)lo & 0xffffffffULL));
}
static int sp_isinf(double x) { return x == INFINITY || x == -INFINITY; }
/* Does the int64 round-trip through double exactly?  (CPython compares and
   true-divides ints exactly; the native tier bails when rounding differs.) */
static int sp_i64_exact(int64_t v) {
    double d = (double)v;
    if (!(d >= -9223372036854775808.0 && d < 9223372036854775808.0)) return 0;
    return (int64_t)d == v;
}
static int sp_f64_fits_i64(double v) {
    return v >= -9223372036854775808.0 && v < 9223372036854775808.0;
}
/* Portable arithmetic right shift for 0 <= s <= 63. */
static int64_t sp_sar(int64_t a, int64_t s) {
    return a < 0 ? (int64_t)~(~(uint64_t)a >> s)
                 : (int64_t)((uint64_t)a >> s);
}
/* Python floor division / modulo (divisor != 0, no int64 overflow). */
static int64_t sp_ifdiv(int64_t a, int64_t b) {
    int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) q -= 1;
    return q;
}
static int64_t sp_imod(int64_t a, int64_t b) {
    int64_t r = a % b;
    if (r != 0 && ((r < 0) != (b < 0))) r += b;
    return r;
}
static double sp_ldexp(double x, int64_t e) { return ldexp(x, (int)e); }
"""


def _f64_lit(value: float) -> str:
    if value != value:
        return "sp_double(0x7ff8000000000000ULL)"
    if value == math.inf:
        return "INFINITY"
    if value == -math.inf:
        return "(-INFINITY)"
    if value == 0.0:
        return "-0.0" if math.copysign(1.0, value) < 0 else "0.0"
    return value.hex()


def _i64_lit(value: int) -> str:
    if value == -(1 << 63):
        return "(-9223372036854775807LL - 1)"
    return f"{value}LL"


def _rx(e) -> str:
    if isinstance(e, Const):
        if e.type == T_BOOL:
            return "1" if e.value else "0"
        if e.type == T_I64:
            return _i64_lit(int(e.value))
        return _f64_lit(float(e.value))
    if isinstance(e, VarRef):
        return "ctx->r" if e.is_r else e.name
    if isinstance(e, Bin):
        a, b = _rx(e.left), _rx(e.right)
        if e.type == T_I64 and e.op in ("+", "-", "*"):
            return f"((int64_t)((uint64_t)({a}) {e.op} (uint64_t)({b})))"
        if e.op == "<<":
            return f"((int64_t)((uint64_t)({a}) << ({b})))"
        return f"(({a}) {e.op} ({b}))"
    if isinstance(e, Un):
        a = _rx(e.operand)
        if e.op == "-" and e.type == T_I64:
            return f"((int64_t)(0 - (uint64_t)({a})))"
        return f"({e.op}({a}))"
    if isinstance(e, Cast):
        return f"(({_CTYPES[e.type]})({_rx(e.operand)}))"
    if isinstance(e, CallE):
        return f"{e.fn}({', '.join(_rx(a) for a in e.args)})"
    if isinstance(e, Sel):
        return f"(({_rx(e.cond)}) ? ({_rx(e.a)}) : ({_rx(e.b)}))"
    if isinstance(e, ArrRef):
        return f"{e.array}[{_rx(e.index)}]"
    raise TypeError(f"unrenderable IR expression {type(e).__name__}")


def _comment(text: str) -> str:
    return text.replace("*/", "* /").replace("\n", " ")


class _FnRenderer:
    def __init__(self, fn: FnIR, lines: list):
        self.fn = fn
        self.lines = lines

    def emit(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def block(self, stmts, indent: int) -> None:
        for stmt in stmts:
            self.stmt(stmt, indent)

    def stmt(self, s, indent: int) -> None:
        emit = self.emit
        if isinstance(s, SAssign):
            emit(indent, f"{_rx(s.var)} = {_rx(s.value)};")
        elif isinstance(s, SSetR):
            emit(indent, f"ctx->r = {_rx(s.value)};")
        elif isinstance(s, SCov):
            emit(indent, "{")
            emit(indent + 1, f"int64_t sp_ix = {_rx(s.index)};")
            emit(indent + 1,
                 "ctx->cov[(uint64_t)sp_ix >> 6] |= "
                 "1ULL << ((uint64_t)sp_ix & 63);")
            emit(indent, "}")
        elif isinstance(s, SIf):
            emit(indent, f"if ({_rx(s.cond)}) {{")
            self.block(s.body, indent + 1)
            if s.orelse:
                emit(indent, "} else {")
                self.block(s.orelse, indent + 1)
            emit(indent, "}")
        elif isinstance(s, SLoop):
            emit(indent, "for (;;) {")
            self.block(s.body, indent + 1)
            emit(indent, "}")
        elif isinstance(s, SBreak):
            emit(indent, "break;")
        elif isinstance(s, SContinue):
            emit(indent, "continue;")
        elif isinstance(s, SFreeze):
            emit(indent,
                 f"{{ ctx->status = 1; return; }} /* {_comment(s.reason)} */")
        elif isinstance(s, SBail):
            emit(indent,
                 f"{{ ctx->status = 2; return; }} /* {_comment(s.reason)} */")
        elif isinstance(s, SReturn):
            for index, value in enumerate(s.values):
                emit(indent, f"*sp_ret{index} = {_rx(value)};")
            emit(indent, "return;")
        elif isinstance(s, SCall):
            args = ["ctx"] + [_rx(a) for a in s.args]
            args += [f"&{out.name}" for out in s.outs]
            emit(indent, f"{s.fn}({', '.join(args)});")
            emit(indent, "if (ctx->status) return;")
        else:
            raise TypeError(f"unrenderable IR statement {type(s).__name__}")


def _signature(fn: FnIR) -> str:
    parts = ["SpCtx *ctx"]
    parts += [f"{_CTYPES[t]} {name}" for name, t in fn.params]
    parts += [f"{_CTYPES[t]} *sp_ret{i}" for i, t in enumerate(fn.ret_types)]
    return f"static void {fn.c_name}({', '.join(parts)})"


def _render_fn(fn: FnIR, lines: list) -> None:
    lines.append(_signature(fn) + " {")
    renderer = _FnRenderer(fn, lines)
    for name, type_ in fn.local_vars:
        renderer.emit(1, f"{_CTYPES[type_]} {name} = {_CZEROS[type_]};")
    renderer.block(fn.body, 1)
    lines.append("}")
    lines.append("")


def _render_entry_call(ir: ProgramIR, lines: list, indent: str,
                       row_expr) -> None:
    for i, t in enumerate(ir.entry.ret_types):
        lines.append(f"{indent}{_CTYPES[t]} sp_r{i} = {_CZEROS[t]};")
    args = ["&ctx"]
    args += [row_expr(k) for k in range(len(ir.entry.params))]
    args += [f"&sp_r{i}" for i in range(len(ir.entry.ret_types))]
    lines.append(f"{indent}{ir.entry.c_name}({', '.join(args)});")
    for i in range(len(ir.entry.ret_types)):
        lines.append(f"{indent}(void)sp_r{i};")


def render_c(ir: ProgramIR) -> str:
    """Render the whole program IR into one C99 translation unit."""
    lines = [
        "/* Generated native penalty kernel; do not edit. */",
        f"#define SP_NWORDS {ir.n_words}",
        _PRELUDE,
    ]
    for c_name, (elem_type, values) in ir.arrays.items():
        lits = (
            ", ".join(_i64_lit(v) for v in values)
            if elem_type == T_I64
            else ", ".join(_f64_lit(v) for v in values)
        )
        lines.append(
            f"static const {_CTYPES[elem_type]} "
            f"{c_name}[{len(values)}] = {{ {lits} }};"
        )
    lines.append("")
    for fn in ir.functions:
        lines.append(_signature(fn) + ";")
    lines.append("")
    for fn in ir.functions:
        _render_fn(fn, lines)
    arity = len(ir.entry.params)
    lines += [
        "int sp_entry(const double *x, double *r_out, uint64_t *cov_out) {",
        "    SpCtx ctx;",
        "    ctx.r = 1.0;",
        "    memset(ctx.cov, 0, sizeof ctx.cov);",
        "    ctx.status = 0;",
    ]
    _render_entry_call(ir, lines, "    ", lambda k: f"x[{k}]")
    lines += [
        "    if (ctx.status == 2) return 1;",
        "    *r_out = ctx.r;",
        "    for (int w = 0; w < SP_NWORDS; w++) cov_out[w] = ctx.cov[w];",
        "    return 0;",
        "}",
        "",
        "/* Row range [start, end): r/bail per row, covered bits OR-ed into",
        "   cov (never zeroed here).  The SpCtx is hoisted out of the loop;",
        "   only the words a row dirtied are cleared before the next row. */",
        "static void sp_batch_range(const double *restrict rows,",
        "                           long long start, long long end,",
        "                           double *restrict r_out,",
        "                           uint64_t *restrict cov,",
        "                           unsigned char *restrict bail_out) {",
        "    SpCtx ctx;",
        "    memset(ctx.cov, 0, sizeof ctx.cov);",
        "    for (long long i = start; i < end; i++) {",
        f"        const double *restrict row = rows + i * {arity};",
        "        ctx.r = 1.0;",
        "        ctx.status = 0;",
    ]
    _render_entry_call(ir, lines, "        ", lambda k: f"row[{k}]")
    lines += [
        "        if (ctx.status == 2) {",
        "            bail_out[i] = 1;",
        "            r_out[i] = 0.0;",
        "            /* Drop this row's partial coverage (bailed rows are",
        "               redone by the caller on the scalar tier). */",
        "            for (int w = 0; w < SP_NWORDS; w++) ctx.cov[w] = 0;",
        "            continue;",
        "        }",
        "        bail_out[i] = 0;",
        "        r_out[i] = ctx.r;",
        "        for (int w = 0; w < SP_NWORDS; w++) {",
        "            cov[w] |= ctx.cov[w];",
        "            ctx.cov[w] = 0;",
        "        }",
        "    }",
        "}",
        "",
        "void sp_batch(const double *rows, long long n, double *r_out,",
        "              uint64_t *cov_out, unsigned char *bail_out) {",
        "    for (int w = 0; w < SP_NWORDS; w++) cov_out[w] = 0;",
        "    sp_batch_range(rows, 0, n, r_out, cov_out, bail_out);",
        "}",
        "",
        "typedef struct {",
        "    const double *rows;",
        "    long long start;",
        "    long long end;",
        "    double *r_out;",
        "    unsigned char *bail_out;",
        "    uint64_t cov[SP_NWORDS];",
        "} SpMtChunk;",
        "",
        "static void *sp_mt_main(void *arg) {",
        "    SpMtChunk *chunk = (SpMtChunk *)arg;",
        "    sp_batch_range(chunk->rows, chunk->start, chunk->end,",
        "                   chunk->r_out, chunk->cov, chunk->bail_out);",
        "    return 0;",
        "}",
        "",
        "/* Threaded batch: rows split across n_threads pthread workers with",
        "   the engine's size+rest partition; private coverage partials are",
        "   OR-merged in thread-index order, so results are bit-identical",
        "   for any thread count.  cov_out is an in/out accumulator and is",
        "   never zeroed here. */",
        "void sp_batch_mt(const double *rows, long long n, long long n_threads,",
        "                 double *r_out, uint64_t *cov_out,",
        "                 unsigned char *bail_out) {",
        "    if (n_threads > n) n_threads = n;",
        "    if (n_threads > SP_MT_MAX) n_threads = SP_MT_MAX;",
        "    if (n_threads <= 1) {",
        "        sp_batch_range(rows, 0, n, r_out, cov_out, bail_out);",
        "        return;",
        "    }",
        "    SpMtChunk chunks[SP_MT_MAX];",
        "    pthread_t threads[SP_MT_MAX];",
        "    int started[SP_MT_MAX];",
        "    long long size = n / n_threads;",
        "    long long rest = n % n_threads;",
        "    long long pos = 0;",
        "    for (long long t = 0; t < n_threads; t++) {",
        "        long long count = size + (t < rest ? 1 : 0);",
        "        chunks[t].rows = rows;",
        "        chunks[t].start = pos;",
        "        chunks[t].end = pos + count;",
        "        chunks[t].r_out = r_out;",
        "        chunks[t].bail_out = bail_out;",
        "        memset(chunks[t].cov, 0, sizeof chunks[t].cov);",
        "        pos += count;",
        "    }",
        "    for (long long t = 0; t < n_threads; t++) {",
        "        started[t] = pthread_create(&threads[t], 0, sp_mt_main,",
        "                                    &chunks[t]) == 0;",
        "        if (!started[t]) sp_mt_main(&chunks[t]); /* run inline */",
        "    }",
        "    /* Join and OR-merge partials in fixed thread-index order. */",
        "    for (long long t = 0; t < n_threads; t++) {",
        "        if (started[t]) pthread_join(threads[t], 0);",
        "        for (int w = 0; w < SP_NWORDS; w++)",
        "            cov_out[w] |= chunks[t].cov[w];",
        "    }",
        "}",
        "",
    ]
    return "\n".join(lines)
