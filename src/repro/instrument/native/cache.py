"""Compiler discovery and the content-addressed shared-object cache.

Kernels are compiled out-of-process with the system C compiler into a
cache directory keyed by a sha256 digest of everything that affects the
generated code: per-unit ``(source sha256, function, start label)`` triples,
the saturation mask, epsilon, the backend name, the compiler version and
the codegen ABI version.  Identical programs under identical masks reuse
the ``.so`` across processes and sessions; the directory is FIFO-bounded
by mtime like the in-memory compiled caches.
"""

from __future__ import annotations

import os
import queue
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path

#: Bump when the emitter/backend changes generated code or the entry ABI.
#: 2: sp_batch_mt threaded entry + in/out cov accumulator + restrict loop.
ABI_VERSION = 2

#: Default upper bound on cached shared objects on disk (each entry keeps
#: its .c source next to the .so for debuggability).  Overridable per
#: process via ``$REPRO_NATIVE_CACHE_MAX`` — see :func:`disk_cache_max`.
DISK_CACHE_MAX = 256

_CC_LOCK = threading.Lock()
_CC_STATE: dict = {
    "probed": False,
    "cc": None,
    "version": None,
    "error": None,
    "probes": 0,
}


class NativeUnavailable(RuntimeError):
    """The native tier cannot be used; callers degrade to the scalar tier.

    This is the *permanent* failure (no compiler, non-emittable program,
    failed build) — distinct from the transient :class:`NativeCompiling`."""


class NativeCompiling(RuntimeError):
    """Transient: the kernel's background build has not finished yet.

    Callers serve the specialized tier for now and poll
    :func:`background_ready` to pick the kernel up at the next epoch
    boundary.  Never cached negatively."""

    def __init__(self, digest: str):
        super().__init__(f"native kernel {digest[:12]}… still compiling")
        self.digest = digest


def opt_tier() -> str:
    """The optimization flag tier: ``"O3"`` when ``$REPRO_NATIVE_O3`` is set
    to a truthy value, else the default ``"O2"``.

    The tier is folded into the kernel content-address, so O2 and O3 builds
    of the same program never collide on disk or in memory."""
    value = os.environ.get("REPRO_NATIVE_O3", "").strip().lower()
    return "O3" if value not in ("", "0", "false", "no") else "O2"


def _cflags() -> list[str]:
    return [
        f"-{opt_tier()}",
        "-fPIC",
        "-shared",
        "-std=c99",
        "-ffp-contract=off",
        "-pthread",
    ]


def disk_cache_max() -> int:
    """The FIFO bound on on-disk kernels (``$REPRO_NATIVE_CACHE_MAX``)."""
    override = os.environ.get("REPRO_NATIVE_CACHE_MAX", "").strip()
    if override:
        try:
            value = int(override)
        except ValueError:
            return DISK_CACHE_MAX
        if value >= 1:
            return value
    return DISK_CACHE_MAX


def _probe_cc() -> None:
    """Discover the compiler once per process, caching failure too.

    Both outcomes latch: a compiler-less host pays the $REPRO_CC/cc/gcc/
    clang PATH walk exactly once, and every later ``find_cc`` raises the
    stored error without touching the filesystem."""
    with _CC_LOCK:
        if _CC_STATE["probed"]:
            return
        _CC_STATE["probed"] = True
        _CC_STATE["probes"] += 1
        candidates = []
        env_cc = os.environ.get("REPRO_CC")
        if env_cc:
            candidates.append(env_cc)
        candidates += ["cc", "gcc", "clang"]
        for candidate in candidates:
            path = shutil.which(candidate)
            if path is None:
                continue
            try:
                proc = subprocess.run(
                    [path, "--version"],
                    capture_output=True,
                    text=True,
                    timeout=20,
                )
            except (OSError, subprocess.SubprocessError):
                continue
            if proc.returncode == 0 and proc.stdout:
                _CC_STATE["cc"] = path
                _CC_STATE["version"] = proc.stdout.splitlines()[0].strip()
                return
        _CC_STATE["error"] = "no C compiler found (cc/gcc/clang)"


def find_cc() -> tuple[str, str]:
    """Return ``(compiler path, version line)`` or raise NativeUnavailable."""
    _probe_cc()
    if _CC_STATE["cc"] is None:
        raise NativeUnavailable(_CC_STATE["error"])
    return _CC_STATE["cc"], _CC_STATE["version"]


def cc_available() -> bool:
    _probe_cc()
    return _CC_STATE["cc"] is not None


def cc_version() -> str | None:
    _probe_cc()
    return _CC_STATE["version"]


def native_cache_dir() -> Path:
    """The on-disk kernel cache directory (``REPRO_NATIVE_CACHE`` override)."""
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "native-kernels"


def _prune_disk_cache(directory: Path) -> int:
    """FIFO-by-mtime bound on the number of cached kernels."""
    bound = disk_cache_max()
    sos = sorted(directory.glob("*.so"), key=lambda p: p.stat().st_mtime)
    evicted = 0
    while len(sos) - evicted > bound:
        victim = sos[evicted]
        evicted += 1
        for path in (victim, victim.with_suffix(".c")):
            try:
                path.unlink()
            except OSError:
                pass
    return evicted


def compile_kernel(c_source: str, digest: str) -> Path:
    """Compile ``c_source`` into ``<digest>.so``, reusing a cached build.

    The write is atomic (temp file + rename), so concurrent builders of the
    same digest race benignly."""
    cc, _version = find_cc()
    directory = native_cache_dir()
    so_path = directory / f"{digest}.so"
    if so_path.exists():
        return so_path
    directory.mkdir(parents=True, exist_ok=True)
    c_path = directory / f"{digest}.c"
    # mkstemp for both temp files: the same digest can be compiled
    # concurrently by the background worker and a blocking caller in one
    # process, so pid-keyed names would collide.
    fd_c, tmp_c_name = tempfile.mkstemp(suffix=".c", prefix=f".{digest}.",
                                        dir=str(directory))
    with open(fd_c, "w") as tmp_c_file:
        tmp_c_file.write(c_source)
    tmp_c = Path(tmp_c_name)
    fd, tmp_so = tempfile.mkstemp(suffix=".so", prefix=f".{digest}.",
                                  dir=str(directory))
    os.close(fd)
    try:
        proc = subprocess.run(
            [cc, *_cflags(), "-o", tmp_so, str(tmp_c), "-lm"],
            capture_output=True,
            text=True,
            timeout=120,
        )
    except (OSError, subprocess.SubprocessError) as exc:
        _cleanup(tmp_c, tmp_so)
        raise NativeUnavailable(f"compiler invocation failed: {exc}") from exc
    if proc.returncode != 0:
        tail = "\n".join(proc.stderr.strip().splitlines()[-8:])
        _cleanup(tmp_c, tmp_so)
        raise NativeUnavailable(f"compilation failed:\n{tail}")
    os.replace(tmp_c, c_path)
    os.replace(tmp_so, so_path)
    _prune_disk_cache(directory)
    return so_path


def _cleanup(*paths) -> None:
    for path in paths:
        try:
            os.unlink(path)
        except OSError:
            pass


# --- Background (non-blocking) compilation ---------------------------------
#
# One lazily-started daemon worker drains a queue of (c_source, digest)
# jobs through compile_kernel().  Jobs are de-duplicated by digest: N
# concurrent requests for the same kernel enqueue one build.  Outcomes are
# kept per digest — ("done", path) or ("failed", NativeUnavailable) — so
# pollers resolve with a dict lookup, not a recompile.

_BG_LOCK = threading.Lock()
_BG_JOBS: dict = {}  # digest -> ("pending",) | ("done", Path) | ("failed", exc)
_BG_STATE: dict = {
    "thread": None,
    "queue": None,
    "submitted": 0,
    "compiled": 0,
    "failed": 0,
}


def _bg_worker() -> None:
    jobs = _BG_STATE["queue"]
    while True:
        c_source, digest = jobs.get()
        try:
            path = compile_kernel(c_source, digest)
            outcome = ("done", path)
        except NativeUnavailable as exc:
            outcome = ("failed", exc)
        with _BG_LOCK:
            _BG_JOBS[digest] = outcome
            _BG_STATE["compiled" if outcome[0] == "done" else "failed"] += 1
        jobs.task_done()


def _ensure_bg_worker() -> None:
    # Caller holds _BG_LOCK.
    if _BG_STATE["thread"] is None or not _BG_STATE["thread"].is_alive():
        _BG_STATE["queue"] = _BG_STATE["queue"] or queue.Queue()
        worker = threading.Thread(
            target=_bg_worker, name="repro-native-cc", daemon=True
        )
        _BG_STATE["thread"] = worker
        worker.start()


def compile_kernel_background(c_source: str, digest: str) -> Path:
    """Non-blocking :func:`compile_kernel`: return the ``.so`` if it is
    already built, else hand the build to the background worker and raise.

    Raises :class:`NativeCompiling` while the build is in flight (submitting
    at most one job per digest) and the stored :class:`NativeUnavailable`
    once a build has failed permanently."""
    so_path = native_cache_dir() / f"{digest}.so"
    if so_path.exists():
        with _BG_LOCK:
            _BG_JOBS.pop(digest, None)
        return so_path
    find_cc()  # no compiler is a permanent failure; fail fast, don't enqueue
    with _BG_LOCK:
        job = _BG_JOBS.get(digest)
        if job is not None:
            if job[0] == "done":
                if job[1].exists():
                    return job[1]
                # The built .so was FIFO-pruned from disk after the job
                # finished: forget the stale outcome and rebuild below.
                del _BG_JOBS[digest]
            elif job[0] == "failed":
                raise job[1]
            else:
                raise NativeCompiling(digest)
        _BG_JOBS[digest] = ("pending",)
        _ensure_bg_worker()
        _BG_STATE["submitted"] += 1
        _BG_STATE["queue"].put((c_source, digest))
    raise NativeCompiling(digest)


def background_ready(digest: str) -> bool:
    """Cheap poll: has the background build for ``digest`` resolved?

    True once the build finished (either outcome) or was never submitted;
    the caller then re-enters the load path, which either gets the kernel
    or the permanent error.  False only while a build is in flight."""
    with _BG_LOCK:
        job = _BG_JOBS.get(digest)
    return job is None or job[0] != "pending"


def background_compile_stats() -> dict:
    """Counters for the background compiler (submitted/compiled/failed)."""
    with _BG_LOCK:
        return {
            "submitted": _BG_STATE["submitted"],
            "compiled": _BG_STATE["compiled"],
            "failed": _BG_STATE["failed"],
            "pending": sum(
                1 for job in _BG_JOBS.values() if job[0] == "pending"
            ),
        }


def wait_for_background(digest: str, timeout: float = 120.0) -> None:
    """Block until the background build for ``digest`` resolves (tests)."""
    import time

    deadline = time.monotonic() + timeout
    while not background_ready(digest):
        if time.monotonic() >= deadline:
            raise TimeoutError(f"background build of {digest[:12]} timed out")
        time.sleep(0.005)


def _reset_background_for_tests() -> None:
    """Testing hook: drain in-flight builds and forget recorded outcomes."""
    jobs = _BG_STATE["queue"]
    if jobs is not None:
        jobs.join()
    with _BG_LOCK:
        _BG_JOBS.clear()
        _BG_STATE.update({"submitted": 0, "compiled": 0, "failed": 0})


def native_cache_entries() -> list[dict]:
    """Describe the on-disk kernel cache, newest first."""
    directory = native_cache_dir()
    if not directory.is_dir():
        return []
    entries = []
    for so_path in sorted(directory.glob("*.so"),
                          key=lambda p: p.stat().st_mtime, reverse=True):
        stat = so_path.stat()
        entries.append({
            "digest": so_path.stem,
            "size": stat.st_size,
            "mtime": stat.st_mtime,
            "has_source": so_path.with_suffix(".c").exists(),
        })
    return entries


def native_clean_disk_cache() -> int:
    """Remove every cached kernel; returns the number of entries removed."""
    directory = native_cache_dir()
    if not directory.is_dir():
        return 0
    removed = 0
    for so_path in list(directory.glob("*.so")):
        _cleanup(so_path, so_path.with_suffix(".c"))
        removed += 1
    for stray in list(directory.glob(".*")):
        _cleanup(stray)
    return removed


def _reset_cc_probe_for_tests() -> None:
    """Testing hook: force a re-probe (e.g. after patching PATH/REPRO_CC)."""
    with _CC_LOCK:
        _CC_STATE.update(
            {"probed": False, "cc": None, "version": None, "error": None}
        )
