"""Compiler discovery and the content-addressed shared-object cache.

Kernels are compiled out-of-process with the system C compiler into a
cache directory keyed by a sha256 digest of everything that affects the
generated code: per-unit ``(source sha256, function, start label)`` triples,
the saturation mask, epsilon, the backend name, the compiler version and
the codegen ABI version.  Identical programs under identical masks reuse
the ``.so`` across processes and sessions; the directory is FIFO-bounded
by mtime like the in-memory compiled caches.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path

#: Bump when the emitter/backend changes generated code or the entry ABI.
ABI_VERSION = 1

#: Upper bound on cached shared objects on disk (each entry keeps its .c
#: source next to the .so for debuggability).
DISK_CACHE_MAX = 256

_CFLAGS = ["-O2", "-fPIC", "-shared", "-std=c99", "-ffp-contract=off"]

_CC_LOCK = threading.Lock()
_CC_STATE: dict = {"probed": False, "cc": None, "version": None}


class NativeUnavailable(RuntimeError):
    """The native tier cannot be used; callers degrade to the scalar tier."""


def _probe_cc() -> None:
    with _CC_LOCK:
        if _CC_STATE["probed"]:
            return
        _CC_STATE["probed"] = True
        candidates = []
        env_cc = os.environ.get("REPRO_CC")
        if env_cc:
            candidates.append(env_cc)
        candidates += ["cc", "gcc", "clang"]
        for candidate in candidates:
            path = shutil.which(candidate)
            if path is None:
                continue
            try:
                proc = subprocess.run(
                    [path, "--version"],
                    capture_output=True,
                    text=True,
                    timeout=20,
                )
            except (OSError, subprocess.SubprocessError):
                continue
            if proc.returncode == 0 and proc.stdout:
                _CC_STATE["cc"] = path
                _CC_STATE["version"] = proc.stdout.splitlines()[0].strip()
                return


def find_cc() -> tuple[str, str]:
    """Return ``(compiler path, version line)`` or raise NativeUnavailable."""
    _probe_cc()
    if _CC_STATE["cc"] is None:
        raise NativeUnavailable("no C compiler found (cc/gcc/clang)")
    return _CC_STATE["cc"], _CC_STATE["version"]


def cc_available() -> bool:
    _probe_cc()
    return _CC_STATE["cc"] is not None


def cc_version() -> str | None:
    _probe_cc()
    return _CC_STATE["version"]


def native_cache_dir() -> Path:
    """The on-disk kernel cache directory (``REPRO_NATIVE_CACHE`` override)."""
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "native-kernels"


def _prune_disk_cache(directory: Path) -> int:
    """FIFO-by-mtime bound on the number of cached kernels."""
    sos = sorted(directory.glob("*.so"), key=lambda p: p.stat().st_mtime)
    evicted = 0
    while len(sos) - evicted > DISK_CACHE_MAX:
        victim = sos[evicted]
        evicted += 1
        for path in (victim, victim.with_suffix(".c")):
            try:
                path.unlink()
            except OSError:
                pass
    return evicted


def compile_kernel(c_source: str, digest: str) -> Path:
    """Compile ``c_source`` into ``<digest>.so``, reusing a cached build.

    The write is atomic (temp file + rename), so concurrent builders of the
    same digest race benignly."""
    cc, _version = find_cc()
    directory = native_cache_dir()
    so_path = directory / f"{digest}.so"
    if so_path.exists():
        return so_path
    directory.mkdir(parents=True, exist_ok=True)
    c_path = directory / f"{digest}.c"
    tmp_c = directory / f".{digest}.{os.getpid()}.c"
    tmp_c.write_text(c_source)
    fd, tmp_so = tempfile.mkstemp(suffix=".so", prefix=f".{digest}.",
                                  dir=str(directory))
    os.close(fd)
    try:
        proc = subprocess.run(
            [cc, *_CFLAGS, "-o", tmp_so, str(tmp_c), "-lm"],
            capture_output=True,
            text=True,
            timeout=120,
        )
    except (OSError, subprocess.SubprocessError) as exc:
        _cleanup(tmp_c, tmp_so)
        raise NativeUnavailable(f"compiler invocation failed: {exc}") from exc
    if proc.returncode != 0:
        tail = "\n".join(proc.stderr.strip().splitlines()[-8:])
        _cleanup(tmp_c, tmp_so)
        raise NativeUnavailable(f"compilation failed:\n{tail}")
    os.replace(tmp_c, c_path)
    os.replace(tmp_so, so_path)
    _prune_disk_cache(directory)
    return so_path


def _cleanup(*paths) -> None:
    for path in paths:
        try:
            os.unlink(path)
        except OSError:
            pass


def native_cache_entries() -> list[dict]:
    """Describe the on-disk kernel cache, newest first."""
    directory = native_cache_dir()
    if not directory.is_dir():
        return []
    entries = []
    for so_path in sorted(directory.glob("*.so"),
                          key=lambda p: p.stat().st_mtime, reverse=True):
        stat = so_path.stat()
        entries.append({
            "digest": so_path.stem,
            "size": stat.st_size,
            "mtime": stat.st_mtime,
            "has_source": so_path.with_suffix(".c").exists(),
        })
    return entries


def native_clean_disk_cache() -> int:
    """Remove every cached kernel; returns the number of entries removed."""
    directory = native_cache_dir()
    if not directory.is_dir():
        return 0
    removed = 0
    for so_path in list(directory.glob("*.so")):
        _cleanup(so_path, so_path.with_suffix(".c"))
        removed += 1
    for stray in list(directory.glob(".*")):
        _cleanup(stray)
    return removed


def _reset_cc_probe_for_tests() -> None:
    """Testing hook: force a re-probe (e.g. after patching PATH/REPRO_CC)."""
    with _CC_LOCK:
        _CC_STATE.update({"probed": False, "cc": None, "version": None})
