"""Backend-agnostic emitter: specialized units -> typed native IR.

The emitter consumes exactly what the scalar specializer produces --
:func:`repro.instrument.specialize.specialize_source` ASTs with every probe
resolved against the saturation mask -- and lowers them into a small typed IR
with explicit ``float64``/``int64``/``bool`` semantics.  Everything CPython
does implicitly is spelled out here so a C backend can reproduce ``r``
bit-for-bit:

* fdlibm word intrinsics become uint64 bit-casts and masks,
* int64 ``+ - * <<`` wrap (with overflow *bails* where Python promotes to
  big ints),
* swallowed Python exceptions (``ZeroDivisionError``, ``OverflowError``,
  ``ValueError``) become *freeze* statements that end the row keeping the
  current ``r`` and covered bits -- exactly what the scalar tier's
  ``except (ArithmeticError, ValueError, OverflowError)`` does,
* constructs whose native semantics could diverge from CPython (huge ints,
  unknown calls, ``scipy`` leaves, ...) become *bail* statements: the row
  unwinds and the runtime re-evaluates it on the scalar specialized variant.

Typing is a flow-insensitive join over ``{none < bool < i64 < f64}`` run to
a global fixpoint across all units (helper parameter/return types are joined
from call sites).  The specializer's dynamic type guards (``x.__class__ is
float``, ``isinstance(v, (int, float))``, the ``float()`` conversion
``try``) are folded statically against those types.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field

from repro.instrument.native.cache import NativeUnavailable
from repro.instrument.specialize import COV_NAME, R_NAME, specialize_source

# -- type lattice ------------------------------------------------------------------------

T_NONE = 0  # never assigned (reads bail)
T_BOOL = 1
T_I64 = 2
T_F64 = 3

_TYPE_NAMES = {T_NONE: "none", T_BOOL: "bool", T_I64: "i64", T_F64: "f64"}

#: Largest int64 magnitude exactly representable as a double; int operands
#: beyond it cannot take part in float conversions without a bail.
EXACT_I64 = 1 << 53

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


def _join(a: int, b: int) -> int:
    return a if a >= b else b


# -- IR expressions ----------------------------------------------------------------------


@dataclass
class Const:
    type: int
    value: object


@dataclass
class VarRef:
    type: int
    name: str
    is_r: bool = False


@dataclass
class Bin:
    """A binary op; rendering is (type, op)-directed (int ops wrap)."""

    type: int
    op: str
    left: object
    right: object


@dataclass
class Un:
    type: int
    op: str  # "-" | "~" | "!"
    operand: object


@dataclass
class Cast:
    type: int
    operand: object


@dataclass
class CallE:
    """A pure call (libm function or bit-cast helper); no status writes."""

    type: int
    fn: str
    args: list


@dataclass
class Sel:
    """A lazy select (C ternary); operands must be effect-free."""

    type: int
    cond: object
    a: object
    b: object


@dataclass
class ArrRef:
    type: int
    array: str
    index: object


# -- IR statements -----------------------------------------------------------------------


@dataclass
class SAssign:
    var: VarRef
    value: object


@dataclass
class SSetR:
    value: object


@dataclass
class SCov:
    index: object


@dataclass
class SIf:
    cond: object
    body: list
    orelse: list


@dataclass
class SLoop:
    body: list


@dataclass
class SBreak:
    pass


@dataclass
class SContinue:
    pass


@dataclass
class SReturn:
    values: list


@dataclass
class SFreeze:
    reason: str


@dataclass
class SBail:
    reason: str


@dataclass
class SCall:
    """A unit-to-unit call; the backend adds the status check after it."""

    fn: str
    args: list
    outs: list


@dataclass
class FnIR:
    py_name: str
    c_name: str
    params: list  # of (c_name, type)
    ret_types: list
    body: list
    local_vars: list  # of (c_name, type), params excluded
    is_entry: bool = False


@dataclass
class ProgramIR:
    functions: list
    entry: FnIR
    arity: int
    n_conditionals: int
    n_words: int
    arrays: dict  # c_name -> (elem_type, tuple_of_values)
    bail_sites: int = 0
    freeze_sites: int = 0


# -- emitter -----------------------------------------------------------------------------


class _StmtBail(Exception):
    """A single statement cannot be emitted; it becomes a runtime bail."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


_MISS = object()

_CONVERT_ERROR_NAMES = {"TypeError", "ValueError", "OverflowError"}

_BITS_INTRINSICS = {
    "high_word",
    "low_word",
    "from_words",
    "set_high_word",
    "set_low_word",
    "abs_high_word",
    "copysign_bit",
    "fabs",
    "double_to_bits",
    "bits_to_double",
}

#: 1-arg libm functions safe under the generic CPython ``m_math_1`` wrapper:
#: same libm as CPython plus freeze on (inf from finite) / (nan from non-nan),
#: which covers every OverflowError/ValueError CPython raises for them.
_LIBM_1 = {
    "sin", "cos", "tan", "asin", "acos", "atan",
    "sinh", "cosh", "tanh", "exp", "expm1", "log1p",
    "sqrt", "log", "log2", "log10", "fabs",
}


class _MaybeBool:
    """Sentinel namespace: tracks vars that may hold a runtime ``bool``."""


@dataclass
class _FnInfo:
    py_name: str
    c_name: str
    params: list  # arg names in order
    defaults: dict  # arg name -> constant default
    assigned: set  # names stored anywhere in the unit
    tree: ast.FunctionDef
    var_types: dict = field(default_factory=dict)
    var_maybool: set = field(default_factory=set)
    param_maybool: set = field(default_factory=set)
    ret_arity: int = -1  # -1 unknown, 0 none, n values
    ret_types: list = field(default_factory=list)
    ret_maybool: list = field(default_factory=list)
    is_entry: bool = False


class _AssignedNames(ast.NodeVisitor):
    def __init__(self):
        self.names = set()

    def visit_Name(self, node):
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            self.names.add(node.id)

    def visit_NamedExpr(self, node):
        self.names.add(node.target.id)
        self.visit(node.value)

    def visit_FunctionDef(self, node):  # nested defs keep their own scope
        self.names.add(node.name)


def _sanitize(name: str) -> str:
    return "v_" + "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)


class ProgramEmitter:
    """Emits one instrumented program (all units) against one mask."""

    MAX_PASSES = 12

    def __init__(self, units, entry_name, arity, n_conditionals, namespace,
                 saturated_mask, epsilon):
        self.namespace = namespace
        self.saturated_mask = saturated_mask
        self.epsilon = epsilon
        self.arity = arity
        self.n_conditionals = n_conditionals
        self.entry_name = entry_name
        self.bail_sites = 0
        self.freeze_sites = 0
        self.arrays: dict = {}
        self._array_names: dict = {}
        self.infos: dict = {}
        order = []
        for index, (source, name, start_label) in enumerate(units):
            tree, _ = specialize_source(
                source,
                function_name=name,
                start_label=start_label,
                saturated_mask=saturated_mask,
                epsilon=epsilon,
            )
            func = next(
                s for s in tree.body
                if isinstance(s, ast.FunctionDef) and s.name == name
            )
            scan = _AssignedNames()
            for stmt in func.body:
                scan.visit(stmt)
            params = [a.arg for a in func.args.args]
            defaults = {}
            for arg, default in zip(
                func.args.args[len(func.args.args) - len(func.args.defaults):],
                func.args.defaults,
            ):
                try:
                    defaults[arg.arg] = ast.literal_eval(default)
                except (ValueError, TypeError):
                    pass
            info = _FnInfo(
                py_name=name,
                c_name=f"sp_u{index}_{name}",
                params=params,
                defaults=defaults,
                assigned=scan.names | set(params),
                tree=func,
                is_entry=(name == entry_name),
            )
            if info.is_entry:
                for p in params:
                    info.var_types[p] = T_F64
            self.infos[name] = info
            order.append(name)
        if entry_name not in self.infos:
            raise NativeUnavailable(f"entry unit {entry_name!r} not found")
        self.order = order

    # -- driver ---------------------------------------------------------------------

    def emit(self) -> ProgramIR:
        functions = []
        for _ in range(self.MAX_PASSES):
            self._changed = False
            self.bail_sites = 0
            self.freeze_sites = 0
            functions = [self._emit_unit(self.infos[name]) for name in self.order]
            if not self._changed:
                break
        if self._changed:
            # A stable pass is required: caller argument conversions and
            # callee parameter declarations must agree on every type.
            raise NativeUnavailable("type inference did not converge")
        entry_fn = next(f for f in functions if f.py_name == self.entry_name)
        self._check_entry_viable(entry_fn)
        n_words = max(1, (2 * self.n_conditionals + 63) // 64)
        return ProgramIR(
            functions=functions,
            entry=entry_fn,
            arity=self.arity,
            n_conditionals=self.n_conditionals,
            n_words=n_words,
            arrays=dict(self.arrays),
            bail_sites=self.bail_sites,
            freeze_sites=self.freeze_sites,
        )

    def _check_entry_viable(self, fn: FnIR) -> None:
        """An unconditional bail before any observable work degrades the
        whole program: every row would fall back to the scalar variant."""
        for stmt in fn.body:
            if isinstance(stmt, SBail):
                raise NativeUnavailable(
                    f"entry bails unconditionally: {stmt.reason}"
                )
            if isinstance(stmt, SAssign):
                continue
            break

    # -- per-unit emission ----------------------------------------------------------

    def _emit_unit(self, info: _FnInfo) -> FnIR:
        self.fn = info
        self._temp_counter = 0
        self._temps: list = []
        self._loop_depth = 0
        body = self._emit_block(info.tree.body)
        if info.ret_arity == -1:
            info.ret_arity = 0
            self._changed = True
        elif info.ret_arity > 0 and not info.is_entry:
            # A fall-off-the-end path returns None in Python, which the
            # caller would crash on (not a swallowed exception); guard the
            # native path with a bail.  Dead code when every path returns.
            body.append(SBail("helper fell off the end"))
        params = []
        for p in info.params:
            t = info.var_types.get(p, T_NONE)
            if t == T_NONE:
                t = T_F64  # uncalled helper: type params like the entry
                info.var_types[p] = t
            params.append((_sanitize(p), t))
        local_vars = [
            (_sanitize(n), t)
            for n, t in sorted(info.var_types.items())
            if n not in info.params and t != T_NONE
        ]
        local_vars.extend(self._temps)
        return FnIR(
            py_name=info.py_name,
            c_name=info.c_name,
            params=params,
            ret_types=list(info.ret_types),
            body=body,
            local_vars=local_vars,
            is_entry=info.is_entry,
        )

    # -- blocks and statements ------------------------------------------------------

    def _emit_block(self, stmts) -> list:
        prev, self._block = getattr(self, "_block", None), []
        out = self._block
        for stmt in stmts:
            try:
                self._stmt(stmt)
            except _StmtBail as exc:
                # Emitted prefix temps/guards are a sound prefix of Python's
                # left-to-right evaluation; the bail unwinds before any
                # further observable effect.
                out.append(SBail(exc.reason))
                self.bail_sites += 1
        self._block = prev
        return out

    def _push(self, stmt) -> None:
        if isinstance(stmt, SBail):
            self.bail_sites += 1
        elif isinstance(stmt, SFreeze):
            self.freeze_sites += 1
        self._block.append(stmt)

    def _capture(self, fn) -> list:
        prev, self._block = self._block, []
        try:
            fn()
            return self._block
        finally:
            self._block = prev

    def _capture_block(self, stmts) -> list:
        return self._emit_block(stmts)

    def _stmt(self, node) -> None:
        if isinstance(node, ast.Assign):
            return self._stmt_assign(node)
        if isinstance(node, ast.AugAssign):
            target = node.target
            if not isinstance(target, ast.Name):
                raise _StmtBail("augmented assign to non-name")
            value = ast.BinOp(left=ast.Name(id=target.id, ctx=ast.Load()),
                              op=node.op, right=node.value)
            return self._stmt_assign(
                ast.Assign(targets=[ast.Name(id=target.id, ctx=ast.Store())],
                           value=value))
        if isinstance(node, ast.If):
            return self._stmt_if(node)
        if isinstance(node, ast.While):
            return self._stmt_while(node)
        if isinstance(node, ast.Return):
            return self._stmt_return(node)
        if isinstance(node, ast.Break):
            if self._loop_depth <= 0:
                raise _StmtBail("break outside loop")
            return self._push(SBreak())
        if isinstance(node, ast.Continue):
            if self._loop_depth <= 0:
                raise _StmtBail("continue outside loop")
            return self._push(SContinue())
        if isinstance(node, ast.Global):
            return None
        if isinstance(node, ast.Pass):
            return None
        if isinstance(node, ast.Expr):
            if isinstance(node.value, ast.Constant):
                return None  # docstrings
            self._expr(node.value)  # evaluate for guard parity, discard
            return None
        if isinstance(node, ast.Try):
            return self._stmt_try(node)
        raise _StmtBail(f"unsupported statement {type(node).__name__}")

    def _stmt_try(self, node: ast.Try) -> None:
        """Only the specializer's conversion guard is supported; for the
        numeric types this IR models, ``float()`` cannot raise, so the body
        and the ``else`` run unconditionally."""
        ok = (
            len(node.handlers) == 1
            and not node.finalbody
            and node.handlers[0].name is None
            and len(node.handlers[0].body) == 1
            and isinstance(node.handlers[0].body[0], ast.Pass)
            and isinstance(node.handlers[0].type, ast.Tuple)
            and {
                e.id for e in node.handlers[0].type.elts
                if isinstance(e, ast.Name)
            } == _CONVERT_ERROR_NAMES
        )
        if not ok:
            raise _StmtBail("unsupported try statement")
        for stmt in node.body:
            self._stmt(stmt)
        for stmt in node.orelse:
            self._stmt(stmt)

    def _stmt_assign(self, node: ast.Assign) -> None:
        # COV_NAME subscript store: the covered-bit write.
        if (
            len(node.targets) == 1
            and isinstance(node.targets[0], ast.Subscript)
        ):
            target = node.targets[0]
            if (
                isinstance(target.value, ast.Name)
                and target.value.id == COV_NAME
            ):
                index = self._as_i64(self._expr(target.slice))
                self._push(SCov(index))
                return
            raise _StmtBail("subscript store")
        targets = []
        for t in node.targets:
            if isinstance(t, ast.Name):
                targets.append(t.id)
            elif isinstance(t, ast.Tuple):
                targets.append(t)
            else:
                raise _StmtBail("unsupported assignment target")
        if len(targets) == 1 and isinstance(targets[0], ast.Tuple):
            return self._stmt_tuple_assign(targets[0], node.value)
        if any(isinstance(t, ast.Tuple) for t in targets):
            raise _StmtBail("chained tuple assignment")
        value = self._expr(node.value)
        value = self._materialize(value) if len(targets) > 1 else value
        for name in targets:
            self._store(name, value)

    def _stmt_tuple_assign(self, target: ast.Tuple, value) -> None:
        names = []
        for elt in target.elts:
            if not isinstance(elt, ast.Name):
                raise _StmtBail("nested tuple unpack")
            names.append(elt.id)
        if isinstance(value, ast.Call):
            call = self._unit_call(value)
            if call is not None:
                outs, maybools = call
                if len(outs) != len(names):
                    raise _StmtBail("tuple unpack arity mismatch")
                for name, out, mb in zip(names, outs, maybools):
                    self._store(name, out, maybool=mb)
                return
        if isinstance(value, ast.Tuple):
            if len(value.elts) != len(names):
                raise _StmtBail("tuple unpack arity mismatch")
            vals = [self._materialize(self._expr(e)) for e in value.elts]
            for name, v in zip(names, vals):
                self._store(name, v)
            return
        raise _StmtBail("unsupported tuple assignment")

    def _stmt_if(self, node: ast.If) -> None:
        fold = self._fold_static_test(node.test)
        if fold is not None:
            for stmt in node.body if fold else node.orelse:
                self._stmt(stmt)
            return
        cond = self._emit_test(node.test)
        body = self._capture_block(node.body)
        orelse = self._capture_block(node.orelse)
        self._push(SIf(cond, body, orelse))

    def _stmt_while(self, node: ast.While) -> None:
        const = self._try_const(node.test)
        flag = None
        if node.orelse and not (const is not _MISS and bool(const)):
            flag = self._fresh(T_BOOL)
            self._push(SAssign(flag, Const(T_BOOL, False)))
        self._loop_depth += 1
        try:
            def build():
                if const is _MISS:
                    cond = self._emit_test(node.test)
                elif bool(const):
                    cond = None
                else:
                    cond = Const(T_BOOL, False)
                if cond is not None:
                    exit_body = [SBreak()]
                    if flag is not None:
                        exit_body = [SAssign(flag, Const(T_BOOL, True)), SBreak()]
                    self._push(SIf(Un(T_BOOL, "!", cond), exit_body, []))
                for stmt in node.body:
                    try:
                        self._stmt(stmt)
                    except _StmtBail as exc:
                        self._push(SBail(exc.reason))
            loop_body = self._capture(build)
        finally:
            self._loop_depth -= 1
        self._push(SLoop(loop_body))
        if node.orelse:
            if const is not _MISS and bool(const):
                # ``while True`` never exits normally; the else is dead.
                return
            orelse = self._capture_block(node.orelse)
            self._push(SIf(flag, orelse, []))

    def _stmt_return(self, node: ast.Return) -> None:
        info = self.fn
        value = node.value
        if value is None or (
            isinstance(value, ast.Constant) and value.value is None
        ):
            if info.ret_arity > 0 and not info.is_entry:
                raise _StmtBail("bare return from value-returning helper")
            if info.ret_arity == -1 and not info.is_entry:
                info.ret_arity = 0
                self._changed = True
            self._push(SReturn([]))
            return
        elts = value.elts if isinstance(value, ast.Tuple) else [value]
        if isinstance(value, ast.Call):
            call = self._unit_call(value)
            if call is not None:
                outs, maybools = call
                elts = None
                vals = outs
        if elts is not None:
            if len(elts) > 1:
                vals = [self._materialize(self._expr(e)) for e in elts]
            else:
                vals = [self._expr(elts[0])]
            maybools = [self._maybool(v) for v in vals]
        if info.ret_arity == -1:
            info.ret_arity = len(vals)
            info.ret_types = [T_NONE] * len(vals)
            info.ret_maybool = [False] * len(vals)
        if info.ret_arity != len(vals):
            raise _StmtBail("return arity mismatch")
        converted = []
        for i, v in enumerate(vals):
            joined = _join(info.ret_types[i], v.type)
            if joined != info.ret_types[i]:
                info.ret_types[i] = joined
                self._changed = True
            if maybools[i] and not info.ret_maybool[i]:
                info.ret_maybool[i] = True
                self._changed = True
            converted.append(self._convert(v, joined, "return"))
        self._push(SReturn(converted))

    # -- variables ------------------------------------------------------------------

    def _fresh(self, type_: int) -> VarRef:
        name = f"t{self._temp_counter}"
        self._temp_counter += 1
        self._temps.append((name, type_))
        return VarRef(type_, name)

    def _materialize(self, expr):
        if isinstance(expr, (VarRef, Const)):
            return expr
        var = self._fresh(expr.type)
        self._push(SAssign(var, expr))
        return var

    def _maybool(self, expr) -> bool:
        if isinstance(expr, Const):
            return expr.type == T_BOOL
        if isinstance(expr, VarRef):
            return expr.name in {
                _sanitize(n) for n in self.fn.var_maybool
            } or expr.type == T_BOOL
        if isinstance(expr, Sel):
            return self._maybool(expr.a) or self._maybool(expr.b)
        return expr.type == T_BOOL

    def _store(self, name: str, expr, maybool=None) -> None:
        info = self.fn
        if name == R_NAME:
            value = self._convert(expr, T_F64, "r store")
            self._push(SSetR(value))
            return
        if maybool is None:
            maybool = self._maybool(expr)
        old = info.var_types.get(name, T_NONE)
        joined = _join(old, expr.type)
        if joined != old:
            info.var_types[name] = joined
            self._changed = True
        if maybool and name not in info.var_maybool:
            info.var_maybool.add(name)
            self._changed = True
        value = self._convert(expr, joined, f"store to {name}")
        self._push(SAssign(VarRef(joined, _sanitize(name)), value))

    def _convert(self, expr, target: int, what: str):
        """Implicit store conversion.  Runtime int64 -> float64 is a bail:
        downstream Python arithmetic would stay exact-int while the native
        value rounds, which is unverifiable statically."""
        if expr.type == target or target == T_NONE:
            return expr
        if target == T_I64 and expr.type == T_BOOL:
            return Cast(T_I64, expr)
        if target == T_F64 and expr.type == T_BOOL:
            return Cast(T_F64, expr)
        if target == T_F64 and expr.type == T_I64:
            if isinstance(expr, Const):
                if float(expr.value) == expr.value:
                    return Const(T_F64, float(expr.value))
                raise _StmtBail(f"inexact int constant in {what}")
            raise _StmtBail(f"runtime int->float {what}")
        raise _StmtBail(f"untypable {what}")

    # -- constant folding -----------------------------------------------------------

    def _try_const(self, node):
        if isinstance(node, ast.Constant):
            v = node.value
            return v if type(v) in (bool, int, float) else _MISS
        if isinstance(node, ast.Name):
            if node.id in self.fn.assigned or node.id == R_NAME:
                return _MISS
            v = self.namespace.get(node.id, _MISS)
            return v if type(v) in (bool, int, float) else _MISS
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            base = self.namespace.get(node.value.id, _MISS)
            if base is not _MISS and node.value.id not in self.fn.assigned:
                v = getattr(base, node.attr, _MISS)
                if type(v) in (bool, int, float):
                    return v
            return _MISS
        if isinstance(node, ast.UnaryOp):
            v = self._try_const(node.operand)
            if v is _MISS:
                return _MISS
            try:
                if isinstance(node.op, ast.USub):
                    return -v
                if isinstance(node.op, ast.UAdd):
                    return +v
                if isinstance(node.op, ast.Invert):
                    return ~v
                if isinstance(node.op, ast.Not):
                    return not v
            except TypeError:
                return _MISS
            return _MISS
        if isinstance(node, ast.BinOp):
            left = self._try_const(node.left)
            right = self._try_const(node.right)
            if left is _MISS or right is _MISS:
                return _MISS
            ops = {
                ast.Add: lambda a, b: a + b,
                ast.Sub: lambda a, b: a - b,
                ast.Mult: lambda a, b: a * b,
                ast.Div: lambda a, b: a / b,
                ast.FloorDiv: lambda a, b: a // b,
                ast.Mod: lambda a, b: a % b,
                ast.Pow: lambda a, b: a ** b,
                ast.LShift: lambda a, b: a << b,
                ast.RShift: lambda a, b: a >> b,
                ast.BitAnd: lambda a, b: a & b,
                ast.BitOr: lambda a, b: a | b,
                ast.BitXor: lambda a, b: a ^ b,
            }
            fn = ops.get(type(node.op))
            if fn is None:
                return _MISS
            try:
                return fn(left, right)
            except Exception:
                return _MISS  # dynamic emission reproduces the exception
        return _MISS

    def _const_expr(self, value):
        if type(value) is bool:
            return Const(T_BOOL, value)
        if type(value) is int:
            if _I64_MIN <= value <= _I64_MAX:
                return Const(T_I64, value)
            raise _StmtBail("integer constant beyond int64")
        if type(value) is float:
            return Const(T_F64, value)
        raise _StmtBail(f"unsupported constant {type(value).__name__}")

    # -- expressions ----------------------------------------------------------------

    def _expr(self, node):
        folded = self._try_const(node)
        if folded is not _MISS:
            return self._const_expr(folded)
        if isinstance(node, ast.Name):
            return self._expr_name(node)
        if isinstance(node, ast.BinOp):
            return self._binop(node)
        if isinstance(node, ast.UnaryOp):
            return self._unaryop(node)
        if isinstance(node, ast.Compare):
            return self._compare(node)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.IfExp):
            return self._ifexp(node)
        if isinstance(node, ast.NamedExpr):
            value = self._expr(node.value)
            self._store(node.target.id, value)
            info = self.fn
            return VarRef(info.var_types[node.target.id],
                          _sanitize(node.target.id))
        if isinstance(node, ast.Subscript):
            return self._subscript(node)
        if isinstance(node, ast.BoolOp):
            raise _StmtBail("boolean op in value position")
        raise _StmtBail(f"unsupported expression {type(node).__name__}")

    def _expr_name(self, node: ast.Name):
        name = node.id
        if name == R_NAME:
            return VarRef(T_F64, "r", is_r=True)
        info = self.fn
        if name in info.assigned:
            t = info.var_types.get(name, T_NONE)
            if t == T_NONE:
                raise _StmtBail(f"read of untyped variable {name!r}")
            return VarRef(t, _sanitize(name))
        raise _StmtBail(f"unresolvable name {name!r}")

    def _as_i64(self, expr):
        if expr.type == T_I64:
            return expr
        if expr.type == T_BOOL:
            return Cast(T_I64, expr)
        raise _StmtBail("expected an integer operand")

    def _as_f64_arith(self, expr):
        """Float promotion inside mixed arithmetic: CPython converts the int
        with the same correctly-rounded int64->double conversion as C."""
        if expr.type == T_F64:
            return expr
        if expr.type in (T_I64, T_BOOL):
            if isinstance(expr, Const):
                return Const(T_F64, float(expr.value))
            return Cast(T_F64, expr)
        raise _StmtBail("expected a numeric operand")

    def _guard_exact_i64(self, expr, why: str):
        """Bail unless an int64 round-trips through double exactly (needed
        where CPython compares/divides ints *exactly*, not via rounding)."""
        if isinstance(expr, Const):
            if float(expr.value) == expr.value:
                return Const(T_F64, float(expr.value))
            raise _StmtBail(f"inexact int constant in {why}")
        var = self._materialize(self._as_i64(expr))
        self._push(SIf(Un(T_BOOL, "!", CallE(T_BOOL, "sp_i64_exact", [var])),
                       [SBail(why)], []))
        self.bail_sites += 1
        return Cast(T_F64, var)

    def _binop(self, node: ast.BinOp):
        op = type(node.op)
        left = self._expr(node.left)
        right = self._expr(node.right)
        if op in (ast.Add, ast.Sub, ast.Mult):
            sym = {ast.Add: "+", ast.Sub: "-", ast.Mult: "*"}[op]
            if left.type == T_F64 or right.type == T_F64:
                return Bin(T_F64, sym,
                           self._as_f64_arith(left), self._as_f64_arith(right))
            return Bin(T_I64, sym, self._as_i64(left), self._as_i64(right))
        if op is ast.Div:
            b = self._materialize(right)
            zero = Const(b.type if b.type != T_BOOL else T_I64,
                         0.0 if b.type == T_F64 else 0)
            self._push(SIf(Bin(T_BOOL, "==", self._as_f64_arith(b)
                               if b.type == T_F64 else self._as_i64(b), zero),
                           [SFreeze("division by zero")], []))
            self.freeze_sites += 1
            if left.type == T_F64 or right.type == T_F64:
                return Bin(T_F64, "/", self._as_f64_arith(left),
                           self._as_f64_arith(b))
            # int / int: CPython divides the exact integers then rounds once.
            fa = self._guard_exact_i64(left, "inexact int division")
            fb = self._guard_exact_i64(b, "inexact int division")
            return Bin(T_F64, "/", fa, fb)
        if op in (ast.FloorDiv, ast.Mod):
            if left.type == T_F64 or right.type == T_F64:
                raise _StmtBail("float floordiv/mod")
            a = self._materialize(self._as_i64(left))
            b = self._materialize(self._as_i64(right))
            self._push(SIf(Bin(T_BOOL, "==", b, Const(T_I64, 0)),
                           [SFreeze("integer division by zero")], []))
            self.freeze_sites += 1
            self._push(SIf(
                Bin(T_BOOL, "&&",
                    Bin(T_BOOL, "==", a, Const(T_I64, _I64_MIN)),
                    Bin(T_BOOL, "==", b, Const(T_I64, -1))),
                [SBail("int64 division overflow")], []))
            self.bail_sites += 1
            fn = "sp_ifdiv" if op is ast.FloorDiv else "sp_imod"
            return CallE(T_I64, fn, [a, b])
        if op in (ast.BitAnd, ast.BitOr, ast.BitXor):
            sym = {ast.BitAnd: "&", ast.BitOr: "|", ast.BitXor: "^"}[op]
            return Bin(T_I64, sym, self._as_i64(left), self._as_i64(right))
        if op is ast.LShift:
            a = self._materialize(self._as_i64(left))
            s = self._materialize(self._as_i64(right))
            self._push(SIf(Bin(T_BOOL, "<", s, Const(T_I64, 0)),
                           [SFreeze("negative shift count")], []))
            self.freeze_sites += 1
            self._push(SIf(Bin(T_BOOL, ">", s, Const(T_I64, 63)),
                           [SBail("shift beyond int64")], []))
            self.bail_sites += 1
            res = self._materialize(Bin(T_I64, "<<", a, s))
            self._push(SIf(Bin(T_BOOL, "!=", CallE(T_I64, "sp_sar", [res, s]), a),
                           [SBail("int64 left-shift overflow")], []))
            self.bail_sites += 1
            return res
        if op is ast.RShift:
            a = self._materialize(self._as_i64(left))
            s = self._materialize(self._as_i64(right))
            self._push(SIf(Bin(T_BOOL, "<", s, Const(T_I64, 0)),
                           [SFreeze("negative shift count")], []))
            self.freeze_sites += 1
            saturated = Sel(T_I64, Bin(T_BOOL, "<", a, Const(T_I64, 0)),
                            Const(T_I64, -1), Const(T_I64, 0))
            return Sel(T_I64, Bin(T_BOOL, ">", s, Const(T_I64, 63)),
                       saturated, CallE(T_I64, "sp_sar", [a, s]))
        raise _StmtBail(f"unsupported operator {op.__name__}")

    def _unaryop(self, node: ast.UnaryOp):
        if isinstance(node.op, ast.Not):
            return Un(T_BOOL, "!", self._truthy(self._expr(node.operand)))
        operand = self._expr(node.operand)
        if isinstance(node.op, ast.UAdd):
            if operand.type == T_BOOL:
                return Cast(T_I64, operand)
            return operand
        if isinstance(node.op, ast.USub):
            if operand.type == T_F64:
                return Un(T_F64, "-", operand)
            v = self._materialize(self._as_i64(operand))
            self._push(SIf(Bin(T_BOOL, "==", v, Const(T_I64, _I64_MIN)),
                           [SBail("negate int64 min")], []))
            self.bail_sites += 1
            return Un(T_I64, "-", v)
        if isinstance(node.op, ast.Invert):
            return Un(T_I64, "~", self._as_i64(operand))
        raise _StmtBail("unsupported unary operator")

    def _truthy(self, expr):
        if expr.type == T_BOOL:
            return expr
        if expr.type == T_I64:
            return Bin(T_BOOL, "!=", expr, Const(T_I64, 0))
        if expr.type == T_F64:
            # NaN != 0.0 is true in C and bool(nan) is True in Python.
            return Bin(T_BOOL, "!=", expr, Const(T_F64, 0.0))
        raise _StmtBail("untypable truthiness")

    def _compare_pair(self, op, left, right):
        syms = {ast.Eq: "==", ast.NotEq: "!=", ast.Lt: "<", ast.LtE: "<=",
                ast.Gt: ">", ast.GtE: ">="}
        sym = syms.get(type(op))
        if sym is None:
            raise _StmtBail(f"unsupported comparison {type(op).__name__}")
        lt, rt = left.type, right.type
        if lt == T_F64 or rt == T_F64:
            # CPython compares int/float *exactly*; converting is only sound
            # when the int round-trips through double.
            if lt != T_F64:
                left = self._guard_exact_i64(left, "inexact mixed comparison")
            if rt != T_F64:
                right = self._guard_exact_i64(right, "inexact mixed comparison")
            return Bin(T_BOOL, sym, left, right)
        return Bin(T_BOOL, sym, self._as_i64(left), self._as_i64(right))

    def _compare(self, node: ast.Compare):
        if len(node.ops) == 1:
            return self._compare_pair(
                node.ops[0], self._expr(node.left),
                self._expr(node.comparators[0]))
        # Chained comparison, statementized with short-circuit parity.
        res = self._fresh(T_BOOL)
        left = self._materialize(self._expr(node.left))

        def chain(index, lhs):
            mid = self._materialize(self._expr(node.comparators[index]))
            self._push(SAssign(res, self._compare_pair(node.ops[index], lhs, mid)))
            if index + 1 < len(node.ops):
                body = self._capture(lambda: chain(index + 1, mid))
                self._push(SIf(res, body, []))

        chain(0, left)
        return res

    def _ifexp(self, node: ast.IfExp):
        fold = self._fold_static_test(node.test)
        if fold is not None:
            return self._expr(node.body if fold else node.orelse)
        cond = self._emit_test(node.test)
        body_val = []
        body = self._capture(lambda: body_val.append(self._expr(node.body)))
        other_val = []
        orelse = self._capture(lambda: other_val.append(self._expr(node.orelse)))
        joined = _join(body_val[0].type, other_val[0].type)
        res = self._fresh(joined)
        body.append(SAssign(res, self._convert(body_val[0], joined, "ternary")))
        orelse.append(SAssign(res, self._convert(other_val[0], joined, "ternary")))
        self._push(SIf(cond, body, orelse))
        return res

    # -- test expressions and the specializer's static guards ------------------------

    def _fold_static_test(self, node):
        """Fold the specializer's dynamic type guards against static types.

        Returns True/False when the guard is decidable, None when the node is
        not a guard shape.  Undecidable guards (untyped or maybe-bool vars)
        bail the statement.
        """
        if (
            isinstance(node, ast.Compare)
            and len(node.ops) == 1
            and isinstance(node.ops[0], ast.Is)
            and isinstance(node.left, ast.Attribute)
            and node.left.attr == "__class__"
            and isinstance(node.comparators[0], ast.Name)
            and node.comparators[0].id in ("float", "bool")
        ):
            target = node.left.value
            if not isinstance(target, ast.Name):
                raise _StmtBail("class guard on non-name")
            name = target.id
            info = self.fn
            if name not in info.assigned:
                const = self.namespace.get(name, _MISS)
                if const is _MISS:
                    raise _StmtBail("class guard on unresolvable name")
                cls = node.comparators[0].id
                return type(const) is (float if cls == "float" else bool)
            t = info.var_types.get(name, T_NONE)
            if t == T_NONE:
                raise _StmtBail("class guard on untyped variable")
            maybool = name in info.var_maybool
            if node.comparators[0].id == "float":
                if t == T_F64:
                    if maybool:
                        raise _StmtBail("class guard on maybe-bool float")
                    return True
                return False
            if t == T_BOOL:
                return True
            if maybool:
                raise _StmtBail("class guard on maybe-bool variable")
            return False
        if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.And):
            folds = [self._fold_static_test(v) for v in node.values]
            if all(f is not None for f in folds):
                return all(folds)
            return None
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "isinstance"
            and len(node.args) == 2
            and isinstance(node.args[0], ast.Name)
        ):
            name = node.args[0].id
            info = self.fn
            if name in info.assigned:
                if info.var_types.get(name, T_NONE) == T_NONE:
                    raise _StmtBail("isinstance on untyped variable")
                return True  # bool/i64/f64 are all isinstance (int, float)
            raise _StmtBail("isinstance on unresolvable name")
        return None

    def _emit_test(self, node):
        fold = self._fold_static_test(node)
        if fold is not None:
            return Const(T_BOOL, bool(fold))
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            return Un(T_BOOL, "!", self._emit_test(node.operand))
        if isinstance(node, ast.BoolOp):
            res = self._fresh(T_BOOL)
            is_and = isinstance(node.op, ast.And)

            def step(index):
                self._push(SAssign(res, self._emit_test(node.values[index])))
                if index + 1 < len(node.values):
                    rest = self._capture(lambda: step(index + 1))
                    cond = res if is_and else Un(T_BOOL, "!", res)
                    self._push(SIf(cond, rest, []))

            step(0)
            return res
        return self._truthy(self._expr(node))

    # -- subscripts: constant-tuple arrays -------------------------------------------

    def _subscript(self, node: ast.Subscript):
        if not isinstance(node.value, ast.Name):
            raise _StmtBail("subscript of non-name")
        name = node.value.id
        if name in self.fn.assigned:
            raise _StmtBail("subscript of local variable")
        table = self.namespace.get(name, _MISS)
        if not isinstance(table, tuple) or not table:
            raise _StmtBail(f"subscript of unsupported object {name!r}")
        c_name, elem_type = self._register_array(name, table)
        index = self._materialize(self._as_i64(self._expr(node.slice)))
        length = Const(T_I64, len(table))
        wrapped = self._materialize(
            Sel(T_I64, Bin(T_BOOL, "<", index, Const(T_I64, 0)),
                Bin(T_I64, "+", index, length), index))
        # IndexError is not swallowed by the runtimes, so an out-of-range
        # index must bail (the scalar tier would propagate the exception).
        self._push(SIf(
            Bin(T_BOOL, "||",
                Bin(T_BOOL, "<", wrapped, Const(T_I64, 0)),
                Bin(T_BOOL, ">=", wrapped, length)),
            [SBail("tuple index out of range")], []))
        self.bail_sites += 1
        return ArrRef(elem_type, c_name, wrapped)

    def _register_array(self, name: str, table: tuple):
        cached = self._array_names.get(name)
        if cached is not None:
            return cached
        if all(type(v) is int for v in table):
            if not all(_I64_MIN <= v <= _I64_MAX for v in table):
                raise _StmtBail("tuple constant beyond int64")
            elem_type = T_I64
            values = tuple(int(v) for v in table)
        elif all(type(v) in (int, float) for v in table):
            if not all(
                type(v) is float or float(v) == v for v in table
            ):
                raise _StmtBail("inexact int in float tuple constant")
            elem_type = T_F64
            values = tuple(float(v) for v in table)
        else:
            raise _StmtBail("non-numeric tuple constant")
        c_name = f"sp_arr{len(self.arrays)}_{_sanitize(name)[2:]}"
        self.arrays[c_name] = (elem_type, values)
        self._array_names[name] = (c_name, elem_type)
        return c_name, elem_type

    # -- calls -----------------------------------------------------------------------

    def _call(self, node: ast.Call):
        call = self._unit_call(node)
        if call is not None:
            outs, _ = call
            if len(outs) != 1:
                raise _StmtBail("tuple-returning call in value position")
            return outs[0]
        if node.keywords:
            raise _StmtBail("keyword arguments")
        if any(isinstance(a, ast.Starred) for a in node.args):
            raise _StmtBail("starred arguments")
        fn, label = self._resolve_callable(node.func)
        handler = getattr(self, f"_call_{label}", None)
        if handler is None:
            raise _StmtBail(f"unsupported call {label!r}")
        return handler(node.args)

    def _unit_call(self, node: ast.Call):
        """Emit a call to another unit of the program; returns (outs,
        maybools) or None when the callee is not a unit."""
        if not isinstance(node.func, ast.Name):
            return None
        callee = self.infos.get(node.func.id)
        if callee is None:
            callee = self._register_helper(node.func.id)
        if callee is None:
            return None
        if node.keywords or any(isinstance(a, ast.Starred) for a in node.args):
            raise _StmtBail("unsupported unit call shape")
        args = [self._expr(a) for a in node.args]
        if len(args) < len(callee.params):
            for name in callee.params[len(args):]:
                if name not in callee.defaults:
                    raise _StmtBail("unit call missing argument")
                args.append(self._const_expr(callee.defaults[name]))
        if len(args) != len(callee.params):
            raise _StmtBail("unit call arity mismatch")
        converted = []
        for name, arg in zip(callee.params, args):
            old = callee.var_types.get(name, T_NONE)
            joined = _join(old, arg.type)
            if joined != old:
                callee.var_types[name] = joined
                self._changed = True
            if self._maybool(arg) and name not in callee.param_maybool:
                callee.param_maybool.add(name)
                callee.var_maybool.add(name)
                self._changed = True
            converted.append(self._convert(arg, joined, "unit call argument"))
        if callee.ret_arity == -1:
            raise _StmtBail("callee return signature not yet known")
        outs = [self._fresh(t if t != T_NONE else T_F64)
                for t in callee.ret_types]
        self._push(SCall(callee.c_name, converted, outs))
        maybools = list(callee.ret_maybool) or []
        return outs, maybools

    def _register_helper(self, name):
        """Lazily adopt a plain namespace function as a probe-free unit.

        Programs may call uninstrumented module-level helpers (e.g.
        ``e_scalb``'s ``_isnan``).  The scalar tier executes their raw
        Python, so emitting the unmodified AST through the same statement
        machinery is exactly equivalent: no probes, no ``r``/coverage
        writes, same freeze/bail taxonomy inside.  Returns the registered
        :class:`_FnInfo` or ``None`` when the object is not adoptable (the
        caller then bails the statement)."""
        if name in self.fn.assigned:
            return None
        obj = self.namespace.get(name)
        if not inspect.isfunction(obj) or obj.__closure__ is not None:
            return None
        mod = getattr(obj, "__module__", "") or ""
        if mod == "math" or mod.endswith("fdlibm.bits"):
            return None  # intrinsic surface, not a helper body
        try:
            source = textwrap.dedent(inspect.getsource(obj))
            tree = ast.parse(source)
        except (OSError, TypeError, SyntaxError):
            return None
        func = next(
            (s for s in tree.body
             if isinstance(s, ast.FunctionDef) and s.name == obj.__name__),
            None,
        )
        if func is None or func.decorator_list:
            return None
        arguments = func.args
        if arguments.vararg or arguments.kwarg or arguments.kwonlyargs \
                or arguments.posonlyargs:
            return None
        scan = _AssignedNames()
        for stmt in func.body:
            scan.visit(stmt)
        params = [a.arg for a in arguments.args]
        defaults = {}
        for arg, default in zip(
            arguments.args[len(arguments.args) - len(arguments.defaults):],
            arguments.defaults,
        ):
            try:
                defaults[arg.arg] = ast.literal_eval(default)
            except (ValueError, TypeError):
                pass
        info = _FnInfo(
            py_name=name,
            c_name=f"sp_h{len(self.infos)}_{name}",
            params=params,
            defaults=defaults,
            assigned=scan.names | set(params),
            tree=func,
        )
        self.infos[name] = info
        self.order.append(name)
        self._changed = True
        return info

    def _resolve_callable(self, func):
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.fn.assigned:
                raise _StmtBail("call through local variable")
            obj = self.namespace.get(name, _MISS)
            if obj is _MISS:
                if name in ("float", "int", "abs", "min", "max", "bool", "len"):
                    return None, name
                raise _StmtBail(f"call of unresolvable name {name!r}")
        elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base = self.namespace.get(func.value.id, _MISS)
            if base is _MISS or func.value.id in self.fn.assigned:
                raise _StmtBail("call on unresolvable attribute")
            obj = getattr(base, func.attr, _MISS)
            if obj is _MISS:
                raise _StmtBail("call on unresolvable attribute")
        else:
            raise _StmtBail("unsupported callable expression")
        if obj in (float, int, abs, min, max, bool, len):
            return None, obj.__name__
        mod = getattr(obj, "__module__", None) or ""
        name = getattr(obj, "__name__", None) or ""
        if mod == "math":
            if name in _LIBM_1:
                self._libm1_name = name
                return None, "libm1"
            if name in ("copysign", "fmod", "pow", "atan2"):
                self._libm2_name = name
                return None, "libm2"
            if name in ("floor", "ceil", "trunc"):
                self._round_name = name
                return None, "round"
            if name in ("isnan", "isinf", "isfinite", "ldexp", "remainder"):
                return None, name
            raise _StmtBail(f"unsupported math function {name!r}")
        if mod.endswith("fdlibm.bits") and name in _BITS_INTRINSICS:
            return None, f"bits_{name}"
        raise _StmtBail(f"unsupported callable {mod}.{name}")

    def _one(self, args, what):
        if len(args) != 1:
            raise _StmtBail(f"{what} expects one argument")
        return self._expr(args[0])

    def _two(self, args, what):
        if len(args) != 2:
            raise _StmtBail(f"{what} expects two arguments")
        return self._expr(args[0]), self._expr(args[1])

    def _f64_arg(self, expr):
        """An argument demanded as float64 by an intrinsic: explicit
        conversions round exactly like CPython's, any magnitude."""
        return self._as_f64_arith(expr)

    # builtins ------------------------------------------------------------------

    def _call_float(self, args):
        if len(args) == 1 and isinstance(args[0], ast.Constant) \
                and isinstance(args[0].value, str):
            try:
                return Const(T_F64, float(args[0].value))
            except ValueError:
                raise _StmtBail("unparsable float() string") from None
        return self._f64_arg(self._one(args, "float"))

    def _call_int(self, args):
        v = self._one(args, "int")
        if v.type in (T_I64, T_BOOL):
            return self._as_i64(v)
        x = self._materialize(v)
        self._push(SIf(Bin(T_BOOL, "!=", x, x),
                       [SFreeze("int() of nan")], []))
        self._push(SIf(CallE(T_BOOL, "sp_isinf", [x]),
                       [SFreeze("int() of infinity")], []))
        self.freeze_sites += 2
        self._push(SIf(Un(T_BOOL, "!", CallE(T_BOOL, "sp_f64_fits_i64", [x])),
                       [SBail("int() beyond int64")], []))
        self.bail_sites += 1
        return Cast(T_I64, x)

    def _call_bool(self, args):
        return self._truthy(self._one(args, "bool"))

    def _call_abs(self, args):
        v = self._one(args, "abs")
        if v.type == T_F64:
            return CallE(T_F64, "fabs", [v])
        x = self._materialize(self._as_i64(v))
        self._push(SIf(Bin(T_BOOL, "==", x, Const(T_I64, _I64_MIN)),
                       [SBail("abs of int64 min")], []))
        self.bail_sites += 1
        return Sel(T_I64, Bin(T_BOOL, "<", x, Const(T_I64, 0)),
                   Un(T_I64, "-", x), x)

    def _minmax(self, args, is_min):
        a, b = self._two(args, "min/max")
        if a.type == T_F64 or b.type == T_F64:
            if a.type != T_F64:
                a = self._guard_exact_i64(a, "inexact mixed min/max")
            if b.type != T_F64:
                b = self._guard_exact_i64(b, "inexact mixed min/max")
        else:
            a, b = self._as_i64(a), self._as_i64(b)
        a = self._materialize(a)
        b = self._materialize(b)
        t = _join(a.type, b.type)
        # Python keeps the *first* argument on ties and NaN comparisons:
        # min(a, b) is b only when b < a (and symmetrically for max).
        cond = Bin(T_BOOL, "<", b, a) if is_min else Bin(T_BOOL, "<", a, b)
        return Sel(t, cond, b, a)

    def _call_min(self, args):
        return self._minmax(args, True)

    def _call_max(self, args):
        return self._minmax(args, False)

    def _call_len(self, args):
        if len(args) == 1 and isinstance(args[0], ast.Name):
            table = self.namespace.get(args[0].id, _MISS)
            if isinstance(table, tuple) and args[0].id not in self.fn.assigned:
                return Const(T_I64, len(table))
        raise _StmtBail("len of non-constant")

    # math ----------------------------------------------------------------------

    def _call_libm1(self, args):
        name = self._libm1_name
        x = self._materialize(self._f64_arg(self._one(args, name)))
        res = self._materialize(CallE(T_F64, name, [x]))
        if name != "fabs":
            # CPython's m_math_1 wrapper: inf from a finite argument is
            # OverflowError, nan from a non-nan argument is ValueError --
            # both swallowed, so both freeze.
            self._push(SIf(
                Bin(T_BOOL, "&&",
                    CallE(T_BOOL, "sp_isinf", [res]),
                    Un(T_BOOL, "!", CallE(T_BOOL, "sp_isinf", [x]))),
                [SFreeze(f"math.{name} overflow")], []))
            self._push(SIf(
                Bin(T_BOOL, "&&",
                    Bin(T_BOOL, "!=", res, res),
                    Bin(T_BOOL, "==", x, x)),
                [SFreeze(f"math.{name} domain error")], []))
            self.freeze_sites += 2
        return res

    def _call_libm2(self, args):
        name = self._libm2_name
        a, b = self._two(args, name)
        x = self._materialize(self._f64_arg(a))
        y = self._materialize(self._f64_arg(b))
        res = self._materialize(CallE(T_F64, name, [x, y]))
        if name != "copysign":
            both_nonnan = Bin(T_BOOL, "&&",
                              Bin(T_BOOL, "==", x, x),
                              Bin(T_BOOL, "==", y, y))
            both_finite = Bin(
                T_BOOL, "&&",
                Un(T_BOOL, "!", CallE(T_BOOL, "sp_isinf", [x])),
                Un(T_BOOL, "!", CallE(T_BOOL, "sp_isinf", [y])))
            self._push(SIf(
                Bin(T_BOOL, "&&", Bin(T_BOOL, "!=", res, res), both_nonnan),
                [SFreeze(f"math.{name} domain error")], []))
            self._push(SIf(
                Bin(T_BOOL, "&&",
                    CallE(T_BOOL, "sp_isinf", [res]),
                    Bin(T_BOOL, "&&", both_nonnan, both_finite)),
                [SFreeze(f"math.{name} overflow/domain")], []))
            self.freeze_sites += 2
        return res

    def _call_round(self, args):
        name = self._round_name
        v = self._one(args, name)
        if v.type in (T_I64, T_BOOL):
            return self._as_i64(v)
        x = self._materialize(v)
        self._push(SIf(Bin(T_BOOL, "!=", x, x),
                       [SFreeze(f"math.{name} of nan")], []))
        self._push(SIf(CallE(T_BOOL, "sp_isinf", [x]),
                       [SFreeze(f"math.{name} of infinity")], []))
        self.freeze_sites += 2
        rounded = self._materialize(
            CallE(T_F64, {"floor": "floor", "ceil": "ceil",
                          "trunc": "trunc"}[name], [x]))
        self._push(SIf(Un(T_BOOL, "!",
                          CallE(T_BOOL, "sp_f64_fits_i64", [rounded])),
                       [SBail(f"math.{name} beyond int64")], []))
        self.bail_sites += 1
        return Cast(T_I64, rounded)

    def _call_isnan(self, args):
        x = self._f64_arg(self._one(args, "isnan"))
        x = self._materialize(x)
        return Bin(T_BOOL, "!=", x, x)

    def _call_isinf(self, args):
        return CallE(T_BOOL, "sp_isinf",
                     [self._materialize(self._f64_arg(self._one(args, "isinf")))])

    def _call_isfinite(self, args):
        x = self._materialize(self._f64_arg(self._one(args, "isfinite")))
        return Bin(T_BOOL, "&&",
                   Bin(T_BOOL, "==", x, x),
                   Un(T_BOOL, "!", CallE(T_BOOL, "sp_isinf", [x])))

    def _call_ldexp(self, args):
        a, b = self._two(args, "ldexp")
        x = self._materialize(self._f64_arg(a))
        if b.type == T_F64:
            raise _StmtBail("ldexp with float exponent")
        e = self._materialize(self._as_i64(b))
        res = self._fresh(T_F64)
        # CPython math_ldexp_impl, case by case (OverflowError freezes).
        big = self._capture(lambda: self._ldexp_big(x, res))
        small = [SAssign(res, CallE(T_F64, "copysign",
                                    [Const(T_F64, 0.0), x]))]
        main = self._capture(lambda: self._ldexp_main(x, e, res))
        self._push(SIf(
            Bin(T_BOOL, ">", e, Const(T_I64, 2147483647)),
            big,
            [SIf(Bin(T_BOOL, "<", e, Const(T_I64, -2147483648)),
                 small, main)]))
        return res

    def _ldexp_big(self, x, res):
        is_special = Bin(
            T_BOOL, "||",
            Bin(T_BOOL, "==", x, Const(T_F64, 0.0)),
            Bin(T_BOOL, "||",
                CallE(T_BOOL, "sp_isinf", [x]),
                Bin(T_BOOL, "!=", x, x)))
        self._push(SIf(is_special, [SAssign(res, x)],
                       [SFreeze("ldexp overflow")]))
        self.freeze_sites += 1

    def _ldexp_main(self, x, e, res):
        self._push(SAssign(res, CallE(T_F64, "sp_ldexp", [x, e])))
        self._push(SIf(
            Bin(T_BOOL, "&&",
                CallE(T_BOOL, "sp_isinf", [res]),
                Bin(T_BOOL, "&&",
                    Un(T_BOOL, "!", CallE(T_BOOL, "sp_isinf", [x])),
                    Bin(T_BOOL, "==", x, x))),
            [SFreeze("ldexp overflow")], []))
        self.freeze_sites += 1

    def _call_remainder(self, args):
        a, b = self._two(args, "remainder")
        x = self._materialize(self._f64_arg(a))
        y = self._materialize(self._f64_arg(b))
        res = self._fresh(T_F64)
        # CPython m_remainder: nan passthrough, ValueError for inf x or
        # zero y (freeze); remainder() itself is an exact IEEE operation.
        finite = self._capture(lambda: self._remainder_finite(x, y, res))
        self._push(SIf(Bin(T_BOOL, "!=", x, x), [SAssign(res, x)],
                       [SIf(Bin(T_BOOL, "!=", y, y), [SAssign(res, y)],
                            [SIf(CallE(T_BOOL, "sp_isinf", [x]),
                                 [SFreeze("remainder of infinity")],
                                 finite)])]))
        self.freeze_sites += 1
        return res

    def _remainder_finite(self, x, y, res):
        self._push(SIf(CallE(T_BOOL, "sp_isinf", [y]), [SAssign(res, x)],
                       [SIf(Bin(T_BOOL, "==", y, Const(T_F64, 0.0)),
                            [SFreeze("remainder by zero")],
                            [SAssign(res, CallE(T_F64, "remainder", [x, y]))])]))
        self.freeze_sites += 1

    # fdlibm word intrinsics ------------------------------------------------------

    def _call_bits_high_word(self, args):
        x = self._f64_arg(self._one(args, "high_word"))
        return CallE(T_I64, "sp_high_word", [x])

    def _call_bits_low_word(self, args):
        x = self._f64_arg(self._one(args, "low_word"))
        return CallE(T_I64, "sp_low_word", [x])

    def _call_bits_abs_high_word(self, args):
        x = self._f64_arg(self._one(args, "abs_high_word"))
        return Bin(T_I64, "&", CallE(T_I64, "sp_high_word", [x]),
                   Const(T_I64, 0x7FFFFFFF))

    def _call_bits_from_words(self, args):
        hi, lo = self._two(args, "from_words")
        return CallE(T_F64, "sp_from_words",
                     [self._as_i64(hi), self._as_i64(lo)])

    def _call_bits_set_high_word(self, args):
        x, hi = self._two(args, "set_high_word")
        return CallE(T_F64, "sp_set_high_word",
                     [self._f64_arg(x), self._as_i64(hi)])

    def _call_bits_set_low_word(self, args):
        x, lo = self._two(args, "set_low_word")
        return CallE(T_F64, "sp_set_low_word",
                     [self._f64_arg(x), self._as_i64(lo)])

    def _call_bits_copysign_bit(self, args):
        x, y = self._two(args, "copysign_bit")
        return CallE(T_F64, "copysign",
                     [self._f64_arg(x), self._f64_arg(y)])

    def _call_bits_fabs(self, args):
        return CallE(T_F64, "fabs",
                     [self._f64_arg(self._one(args, "fabs"))])

    def _call_bits_double_to_bits(self, args):
        # The unsigned 64-bit pattern exceeds int64 for negative doubles.
        raise _StmtBail("double_to_bits in native tier")

    def _call_bits_bits_to_double(self, args):
        raise _StmtBail("bits_to_double in native tier")


# -- module entry point -------------------------------------------------------------------


def emit_program_ir(units, entry_name, arity, n_conditionals, namespace,
                    saturated_mask, epsilon) -> ProgramIR:
    """Emit the typed IR for one instrumented program under one mask.

    Raises :class:`NativeUnavailable` when the program cannot produce a
    useful native kernel (e.g. the entry bails unconditionally)."""
    emitter = ProgramEmitter(
        units, entry_name, arity, n_conditionals, namespace,
        saturated_mask, epsilon)
    return emitter.emit()
