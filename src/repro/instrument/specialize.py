"""Saturation-specialized penalty codegen (the ``PENALTY_SPECIALIZED`` tier).

The paper's bet is that each evaluation of the representing function "is just
an execution of the instrumented program": in CoverMe the ``pen`` injection is
a *code transformation* compiled into the binary, so probes cost almost
nothing.  The generic runtimes of :mod:`repro.instrument.runtime` instead pay
a probe method call, a mask shift and a Def. 4.2 dispatch at every conditional
of every execution -- even though the saturated-branch mask changes only a
handful of times per search while the engine issues millions of evaluations
against it.

This module closes that gap: given the *original* source of an instrumented
function and a concrete ``saturated_mask``, it regenerates the instrumented
source with Def. 4.2 resolved **at compile time** per probe site:

* **both branches saturated** (case c -- keep ``r``): the probe is stripped
  entirely; the conditional compiles back to the bare branch of the original
  program, costing exactly what the uninstrumented code costs;
* **neither branch saturated** (case a -- ``r`` becomes 0): the site reduces
  to an inlined covered-bit write plus a ``__sp_r__ = 0.0`` store guarded by
  the same float-comparability degradation the runtimes apply (operands that
  cannot convert keep ``r``); **zero** distance arithmetic is emitted;
* **exactly one branch saturated** (case b -- ``r`` becomes the distance
  towards the unsaturated branch): the steering branch-distance arithmetic is
  inlined as straight-line statements -- no runtime method call, no operator
  string dispatch, and for Boolean trees no postfix program interpretation:
  the constant-shape composition of Sect. 5.3 (nested ``and``/``or``,
  De-Morganed ``not``, chained comparisons, ternary tests, promoted
  truthiness) is unrolled into short-circuit-preserving statement sequences
  that accumulate the composed distance directly.

The generated code communicates through two reserved module globals:
``__sp_r__`` (the injected register ``r``) and ``__sp_cov__`` (a flat
bytearray indexed by :func:`~repro.instrument.runtime.branch_bit`).  Only
non-stripped sites write covered bits, so the covered bitset of a specialized
execution is *partial*: exactly the conditionals that are not yet
both-saturated record coverage (which is precisely the set whose coverage can
still make progress).  Consumers that need full coverage re-execute under the
``COVERAGE`` profile, as the engine already does for accepted minima.

Bit-identical ``r``
-------------------

Every inlined fragment mirrors the corresponding :class:`FastRuntime` path
operation for operation -- same conversion order, same NaN constants, same
fused distance arithmetic, same composition fold ordering -- so the composed
``r`` is bit-identical to ``Runtime``/``FastRuntime`` across **all** masks
(property-tested in ``tests/test_specialize.py``).  The decision whether a
Boolean tree is lowered or degraded to the distance-blind ``truth`` fallback
re-runs the instrumentation pass's own ceiling check, so the two tiers can
never disagree about a site's shape.

Compiled specializations are cached at module level per ``(source sha256,
function name, start label, mask, epsilon)`` alongside the compiled-unit
cache of :mod:`repro.instrument.program`, which also surfaces this cache's
statistics through ``compiled_cache_info()``.
"""

from __future__ import annotations

import ast
import hashlib
import textwrap
import threading
from dataclasses import dataclass
from types import CodeType
from typing import Callable, Optional

from repro.core.branch_distance import DEFAULT_EPSILON, negate_op
from repro.instrument.ast_pass import (
    _AST_OPS,
    _NEGATED,
    MAX_TREE_TOKENS,
    InstrumentationPass,
    _LoweringOverflow,
    _TreeLowering,
    as_simple_comparison,
    assign_labels,
    is_chain,
    strip_not,
)
from repro.instrument.runtime import BIG_DISTANCE

#: Reserved name of the injected register ``r`` in specialized namespaces.
R_NAME = "__sp_r__"

#: Reserved name of the flat covered-branch bytearray.
COV_NAME = "__sp_cov__"

#: Prefix of compiler-generated temporaries (function-local).
TEMP_PREFIX = "__sp_t"

_CONVERT_ERRORS = ("TypeError", "ValueError", "OverflowError")

_OP_NODES = {
    "==": ast.Eq,
    "!=": ast.NotEq,
    "<": ast.Lt,
    "<=": ast.LtE,
    ">": ast.Gt,
    ">=": ast.GtE,
}

_INF = float("inf")


class SpecializationError(RuntimeError):
    """Raised when a source cannot be specialized (mirrors instrumentation)."""


# -- small AST builders -----------------------------------------------------------------


def _name(ident: str) -> ast.Name:
    return ast.Name(id=ident, ctx=ast.Load())


def _assign(ident: str, value: ast.expr) -> ast.Assign:
    return ast.Assign(targets=[ast.Name(id=ident, ctx=ast.Store())], value=value)


def _const(value) -> ast.Constant:
    return ast.Constant(value=value)


def _compare(left: ast.expr, op: str, right: ast.expr) -> ast.Compare:
    return ast.Compare(left=left, ops=[_OP_NODES[op]()], comparators=[right])


def _if(test: ast.expr, body: list, orelse: Optional[list] = None) -> ast.If:
    return ast.If(test=test, body=body, orelse=orelse if orelse is not None else [])


def _not(expr: ast.expr) -> ast.UnaryOp:
    return ast.UnaryOp(op=ast.Not(), operand=expr)

def _call(func: str, args: list) -> ast.Call:
    return ast.Call(func=_name(func), args=args, keywords=[])


def _is_float_class(expr: ast.expr) -> ast.expr:
    """``expr.__class__ is float`` (the runtimes' exact fast-path check)."""
    return ast.Compare(
        left=ast.Attribute(value=expr, attr="__class__", ctx=ast.Load()),
        ops=[ast.Is()],
        comparators=[_name("float")],
    )


def _convert_handler() -> ast.ExceptHandler:
    return ast.ExceptHandler(
        type=ast.Tuple(elts=[_name(n) for n in _CONVERT_ERRORS], ctx=ast.Load()),
        name=None,
        body=[ast.Pass()],
    )


def _try_convert(pairs: list[tuple[str, ast.expr]], on_success: list) -> ast.Try:
    """``try: t_i = float(e_i)... except (conv errors): pass else: <success>``."""
    body: list[ast.stmt] = [_assign(t, _call("float", [e])) for t, e in pairs]
    return ast.Try(body=body, handlers=[_convert_handler()], orelse=on_success, finalbody=[])


class _Val:
    """A re-usable operand: a bound name or a compile-time constant.

    Generated code references operands many times (outcome, NaN guard,
    distance); fresh AST nodes are minted per reference so the emitted tree
    stays a tree.
    """

    __slots__ = ("ident", "value")

    def __init__(self, ident: Optional[str] = None, value=None):
        self.ident = ident
        self.value = value

    def node(self) -> ast.expr:
        if self.ident is not None:
            return _name(self.ident)
        return _const(self.value)

    @property
    def is_const(self) -> bool:
        return self.ident is None

    def const_float(self) -> Optional[float]:
        """The operand as a compile-time float when conversion cannot fail."""
        if self.ident is not None:
            return None
        if isinstance(self.value, (bool, int, float)):
            try:
                return float(self.value)
            except OverflowError:
                return None
        return None

    @property
    def unconvertible(self) -> bool:
        """A constant whose ``float()`` conversion always fails."""
        return self.ident is None and self.const_float() is None


# -- composition-spec nodes --------------------------------------------------------------


@dataclass
class _Cmp:
    """A comparison leaf; ``pre`` holds chain-temporary bindings."""

    op: str
    lhs: ast.expr
    rhs: ast.expr
    pre: list


@dataclass
class _Truth:
    """A promoted non-comparison leaf (``rt.tleaf`` analogue)."""

    value: ast.expr
    negated: bool


@dataclass
class _Bool:
    is_and: bool
    children: list


@dataclass
class _Tern:
    cond: object
    body: object
    orelse: object


@dataclass
class _Emitted:
    """One emitted subtree: its statements plus result variable names."""

    stmts: list
    out: str
    t: Optional[str] = None
    f: Optional[str] = None
    u: Optional[str] = None


class _BareOwner:
    """A probe-less ``_TreeLowering`` owner: leaf "probes" become bare exprs.

    ``cmp`` leaves reduce to the plain comparison and ``tleaf`` leaves to the
    (possibly negated) value, so lowering a test through ``_TreeLowering``
    with this owner yields exactly the expression the instrumented program
    evaluates -- flipped operators, single-evaluation chain temporaries and
    all -- with every probe elided.
    """

    def __init__(self, specializer: "_Specializer"):
        self._specializer = specializer

    def _temp_name(self) -> str:
        return self._specializer._temp()

    def _call(self, method: str, args: list) -> ast.expr:
        if method == "cmp":
            _label, op, lhs, rhs = args[0], args[1].value, args[2], args[3]
            return _compare(lhs, op, rhs)
        if method == "tleaf":
            value = args[2]
            negated = len(args) > 3 and bool(args[3].value)
            return _not(value) if negated else value
        raise SpecializationError(f"unexpected probe method {method!r}")


class _Specializer(ast.NodeTransformer):
    """Rewrites labeled conditionals with the mask resolved per site."""

    def __init__(self, labels: dict[int, int], saturated_mask: int, epsilon: float):
        self.labels = labels
        self.saturated_mask = saturated_mask
        self.epsilon = epsilon
        self._counter = 0
        self._wrote_r: list[bool] = []

    # -- statement visitors ----------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> ast.AST:
        self._wrote_r.append(False)
        node.body = self._block(node.body)
        if self._wrote_r.pop():
            insert_at = 0
            if (
                node.body
                and isinstance(node.body[0], ast.Expr)
                and isinstance(node.body[0].value, ast.Constant)
                and isinstance(node.body[0].value.value, str)
            ):
                insert_at = 1  # keep the docstring first
            node.body.insert(insert_at, ast.Global(names=[R_NAME]))
        return node

    def visit_Lambda(self, node: ast.Lambda) -> ast.AST:
        return node

    def visit_ClassDef(self, node: ast.ClassDef) -> ast.AST:
        return node

    def visit_If(self, node: ast.If):
        label = self.labels.get(id(node))
        node.body = self._block(node.body)
        node.orelse = self._block(node.orelse)
        if label is None:
            return node
        bits = (self.saturated_mask >> (label << 1)) & 3
        if bits == 3:
            # Def. 4.2(c) resolved at compile time: the probe is stripped
            # entirely and the bare *lowered* test runs (the instrumented
            # tiers fold ``not`` into flipped comparison operators, which is
            # observable on NaN operands -- the stripped site must branch
            # identically).
            node.test = self._bare_test(node.test)
            return node
        probe, out = self._probe(label, bits, node.test)
        node.test = _name(out)
        return probe + [node]

    def visit_While(self, node: ast.While):
        label = self.labels.get(id(node))
        node.body = self._block(node.body)
        node.orelse = self._block(node.orelse)
        if label is None:
            return node
        bits = (self.saturated_mask >> (label << 1)) & 3
        if bits == 3:
            node.test = self._bare_test(node.test)
            return node
        # The probe must run once per iteration, so the loop becomes
        # ``while True: <probe>; if not out: break; <body>``.  A ``while ...
        # else`` keeps its semantics through a normal-exit flag checked after
        # the loop (a ``break`` in the body skips it, exactly as before).
        probe, out = self._probe(label, bits, node.test)
        if node.orelse:
            flag = self._temp()
            guard = _if(_not(_name(out)), [_assign(flag, _const(True)), ast.Break()])
            loop = ast.While(
                test=_const(True), body=probe + [guard] + node.body, orelse=[]
            )
            return [
                _assign(flag, _const(False)),
                loop,
                _if(_name(flag), node.orelse),
            ]
        guard = _if(_not(_name(out)), [ast.Break()])
        return [ast.While(test=_const(True), body=probe + [guard] + node.body, orelse=[])]

    # -- probe emission --------------------------------------------------------

    def _block(self, stmts: list) -> list:
        out: list = []
        for stmt in stmts:
            result = self.visit(stmt)
            if isinstance(result, list):
                out.extend(result)
            elif result is not None:
                out.append(result)
        return out

    def _temp(self) -> str:
        name = f"{TEMP_PREFIX}{self._counter}"
        self._counter += 1
        return name

    def _set_r(self, value: ast.expr) -> ast.stmt:
        if self._wrote_r:
            self._wrote_r[-1] = True
        return _assign(R_NAME, value)

    def _cov_write(self, label: int, out: str) -> ast.stmt:
        """``__sp_cov__[2*label | out] = 1`` (mirrors the fast runtime)."""
        index = ast.BinOp(left=_const(label << 1), op=ast.BitOr(), right=_name(out))
        target = ast.Subscript(value=_name(COV_NAME), slice=index, ctx=ast.Store())
        return ast.Assign(targets=[target], value=_const(1))

    def _probe(self, label: int, bits: int, test: ast.expr) -> tuple[list, str]:
        """Statements computing one specialized probe; returns the outcome var."""
        simple = as_simple_comparison(test)
        if simple is not None:
            op, lhs, rhs, _negated = simple
            return self._emit_simple(label, bits, op, lhs, rhs)
        stripped, _ = strip_not(test)
        if isinstance(stripped, (ast.BoolOp, ast.IfExp)) or is_chain(stripped):
            if self._tree_accepted(label, test):
                return self._emit_tree(label, bits, test)
        return self._emit_truth(label, bits, test)

    def _bare_test(self, test: ast.expr) -> ast.expr:
        """The probe-free expression a stripped site must branch on.

        This is the *lowered* test, not the source test: the instrumentation
        folds ``not`` into flipped comparison operators and De-Morgans trees
        to their leaves, which changes branch outcomes on NaN operands.  The
        reconstruction drives the instrumentation pass's own ``_TreeLowering``
        with a probe-less owner, so the evaluated structure (flipped
        operators, chain walrus temporaries, ternary shape) is identical to
        what the generic tiers execute -- minus every probe.
        """
        simple = as_simple_comparison(test)
        if simple is not None:
            op, lhs, rhs, negated = simple
            if not negated:
                return test
            return _compare(lhs, op, rhs)
        stripped, _ = strip_not(test)
        if isinstance(stripped, (ast.BoolOp, ast.IfExp)) or is_chain(stripped):
            if self._tree_accepted(0, test):
                expr, _ = _TreeLowering(_BareOwner(self), 0).lower(test, negated=False)
                return expr
        # Truth fallback/promoted sites branch on the value's truthiness,
        # which the original expression already provides.
        return test

    def _tree_accepted(self, label: int, test: ast.expr) -> bool:
        """Re-run the instrumentation pass's own ceiling check.

        The specialized tier must degrade a tree to the ``truth`` fallback
        exactly when the instrumentation pass did, or ``r`` would diverge
        between the tiers; running the same decision procedure (including its
        runtime-read ``MAX_TREE_*`` ceilings) guarantees agreement.
        """
        try:
            lowering = _TreeLowering(InstrumentationPass({}), label)
            _, tokens = lowering.lower(test, negated=False)
        except _LoweringOverflow:
            return False
        return len(tokens) <= MAX_TREE_TOKENS

    # -- operands and the conversion guard ------------------------------------

    def _operand(self, expr: ast.expr) -> tuple[list, _Val]:
        """Bind an operand once; names and constants are used in place."""
        if isinstance(expr, ast.Name):
            return [], _Val(ident=expr.id)
        if isinstance(expr, ast.Constant):
            return [], _Val(value=expr.value)
        if (
            isinstance(expr, ast.UnaryOp)
            and isinstance(expr.op, ast.USub)
            and isinstance(expr.operand, ast.Constant)
            and type(expr.operand.value) in (bool, int, float)
        ):
            # Negative literals parse as USub(Constant); fold them so sites
            # like ``x < -10.0`` keep their compile-time constant shape.
            return [], _Val(value=-expr.operand.value)
        temp = self._temp()
        return [_assign(temp, expr)], _Val(ident=temp)

    def _guarded(
        self,
        a: _Val,
        b: _Val,
        body: Callable[[_Val, _Val], list],
    ) -> list:
        """Run ``body`` with float-comparable operands, or not at all.

        Mirrors the runtimes' degradation: operands are converted with
        ``float()`` when either is not exactly a float, and a conversion
        failure (``TypeError``/``ValueError``/``OverflowError``) keeps ``r``.
        Conversion order (lhs first) is preserved for side-effect parity.
        """
        av = a.const_float()
        bv = b.const_float()
        if a.unconvertible:
            # float(lhs-constant) raises immediately; nothing else runs.
            return []
        if b.unconvertible:
            if av is not None:
                return []  # float(const) is side-effect free, float(rhs) raises
            # Dynamic lhs converts first (observable via a custom __float__),
            # then the rhs constant's conversion fails and keeps r.
            return [
                ast.Try(
                    body=[ast.Expr(value=_call("float", [a.node()]))],
                    handlers=[_convert_handler()],
                    orelse=[],
                    finalbody=[],
                )
            ]
        if av is not None and bv is not None:
            return body(_Val(value=av), _Val(value=bv))
        if av is not None:
            conv = self._temp()
            return [
                _if(
                    _is_float_class(b.node()),
                    body(_Val(value=av), b),
                    [_try_convert([(conv, b.node())], body(_Val(value=av), _Val(ident=conv)))],
                )
            ]
        if bv is not None:
            conv = self._temp()
            return [
                _if(
                    _is_float_class(a.node()),
                    body(a, _Val(value=bv)),
                    [_try_convert([(conv, a.node())], body(_Val(ident=conv), _Val(value=bv)))],
                )
            ]
        ca, cb = self._temp(), self._temp()
        return [
            _if(
                ast.BoolOp(
                    op=ast.And(),
                    values=[_is_float_class(a.node()), _is_float_class(b.node())],
                ),
                body(a, b),
                [
                    _try_convert(
                        [(ca, a.node()), (cb, b.node())],
                        body(_Val(ident=ca), _Val(ident=cb)),
                    )
                ],
            )
        ]

    def _nan_terms(self, *vals: _Val) -> list:
        """``x != x`` checks for the operands that can be NaN at run time."""
        return [_compare(v.node(), "!=", v.node()) for v in vals if not v.is_const]

    def _squared_gap_expr(self, a: _Val, b: _Val) -> ast.expr:
        """``min((a - b)**2, 1e300)`` with the inf clamp of ``_squared_gap``."""
        gap = self._temp()
        bound = ast.NamedExpr(
            target=ast.Name(id=gap, ctx=ast.Store()),
            value=ast.BinOp(left=a.node(), op=ast.Sub(), right=b.node()),
        )
        test = ast.BoolOp(
            op=ast.Or(),
            values=[
                ast.Compare(left=bound, ops=[ast.Eq()], comparators=[_const(_INF)]),
                _compare(_name(gap), "==", _const(-_INF)),
            ],
        )
        square = ast.BinOp(left=_name(gap), op=ast.Mult(), right=_name(gap))
        return ast.IfExp(
            test=test,
            body=_const(BIG_DISTANCE),
            orelse=_call("min", [square, _const(BIG_DISTANCE)]),
        )

    def _branch_distance_expr(self, op: str, a: _Val, b: _Val) -> ast.expr:
        """Inline ``branch_distance(op, a, b, epsilon)`` exactly."""
        eps = _const(self.epsilon)
        if op == "==":
            return self._squared_gap_expr(a, b)
        if op == "!=":
            return ast.IfExp(test=_compare(a.node(), "!=", b.node()), body=_const(0.0), orelse=eps)
        if op == "<=":
            return ast.IfExp(
                test=_compare(a.node(), "<=", b.node()),
                body=_const(0.0),
                orelse=self._squared_gap_expr(a, b),
            )
        if op == "<":
            plus_eps = ast.BinOp(left=self._squared_gap_expr(a, b), op=ast.Add(), right=eps)
            return ast.IfExp(
                test=_compare(a.node(), "<", b.node()), body=_const(0.0), orelse=plus_eps
            )
        if op == ">=":  # branch_distance("<=", b, a)
            return self._branch_distance_expr("<=", b, a)
        if op == ">":  # branch_distance("<", b, a)
            return self._branch_distance_expr("<", b, a)
        raise SpecializationError(f"unsupported comparison operator {op!r}")

    # -- simple comparison sites ------------------------------------------------

    def _emit_simple(
        self, label: int, bits: int, op: str, lhs: ast.expr, rhs: ast.expr
    ) -> tuple[list, str]:
        pre_a, a = self._operand(lhs)
        pre_b, b = self._operand(rhs)
        out = self._temp()
        stmts = pre_a + pre_b + [_assign(out, _compare(a.node(), op, b.node()))]
        # FastRuntime.test writes the covered bit before any distance work
        # (and before a conversion can raise).
        stmts.append(self._cov_write(label, out))
        if bits == 0:
            stmts += self._guarded(a, b, lambda fa, fb: [self._set_r(_const(0.0))])
            return stmts, out
        op_eff = op if bits == 1 else negate_op(op)
        if bits == 1:
            nan_r = 0.0 if op == "!=" else BIG_DISTANCE
        else:
            nan_r = BIG_DISTANCE if op == "!=" else 0.0

        def body(fa: _Val, fb: _Val) -> list:
            dist = self._set_r(self._branch_distance_expr(op_eff, fa, fb))
            terms = self._nan_terms(fa, fb)
            if not terms:
                return [dist]
            test = terms[0] if len(terms) == 1 else ast.BoolOp(op=ast.Or(), values=terms)
            return [_if(test, [self._set_r(_const(nan_r))], [dist])]

        stmts += self._guarded(a, b, body)
        return stmts, out

    # -- promoted truthiness sites ----------------------------------------------

    def _emit_truth(self, label: int, bits: int, test: ast.expr) -> tuple[list, str]:
        value = self._temp()
        out = self._temp()
        stmts = [_assign(value, test), _assign(out, _not(_not(_name(value))))]
        eps = _const(self.epsilon)
        if bits == 0:
            bool_body = [self._set_r(_const(0.0))]
            num_body = [self._set_r(_const(0.0))]
            conv = self._temp()
            numeric = _try_convert([(conv, _name(value))], num_body)
        else:
            if bits == 1:  # steer towards the true branch: r = d_true
                bool_body = [self._set_r(ast.IfExp(test=_name(value), body=_const(0.0), orelse=eps))]
                nan_r = 0.0  # d_true of "!= 0" with a NaN value
            else:  # steer towards the false branch: r = d_false
                bool_body = [self._set_r(ast.IfExp(test=_name(value), body=eps, orelse=_const(0.0)))]
                nan_r = BIG_DISTANCE
            conv = self._temp()
            cval = _Val(ident=conv)
            if bits == 1:
                dist = self._set_r(
                    ast.IfExp(
                        test=_compare(_name(conv), "!=", _const(0.0)),
                        body=_const(0.0),
                        orelse=eps,
                    )
                )
            else:
                dist = self._set_r(self._squared_gap_expr(cval, _Val(value=0.0)))
            num_body = [
                _if(
                    _compare(_name(conv), "!=", _name(conv)),
                    [self._set_r(_const(nan_r))],
                    [dist],
                )
            ]
            numeric = _try_convert([(conv, _name(value))], num_body)
        is_bool = ast.Compare(
            left=ast.Attribute(value=_name(value), attr="__class__", ctx=ast.Load()),
            ops=[ast.Is()],
            comparators=[_name("bool")],
        )
        is_num = _call(
            "isinstance",
            [_name(value), ast.Tuple(elts=[_name("int"), _name("float")], ctx=ast.Load())],
        )
        stmts.append(_if(is_bool, bool_body, [_if(is_num, [numeric])]))
        stmts.append(self._cov_write(label, out))
        return stmts, out

    # -- Boolean-tree sites -------------------------------------------------------

    def _emit_tree(self, label: int, bits: int, test: ast.expr) -> tuple[list, str]:
        spec = self._build_spec(test, False)
        root_bool = self._temp()
        if bits == 0:
            shared_u = self._temp()
            emitted = self._emit_spec(spec, False, False, shared_u)
            stmts = [_assign(shared_u, _const(0))] + emitted.stmts
            stmts.append(_assign(root_bool, _not(_not(_name(emitted.out)))))
            stmts.append(self._cov_write(label, root_bool))
            stmts.append(_if(_name(shared_u), [self._set_r(_const(0.0))]))
            return stmts, root_bool
        need_t = bits == 1
        emitted = self._emit_spec(spec, need_t, not need_t, None)
        stmts = list(emitted.stmts)
        stmts.append(_assign(root_bool, _not(_not(_name(emitted.out)))))
        stmts.append(self._cov_write(label, root_bool))
        steer = emitted.t if need_t else emitted.f
        assert steer is not None and emitted.u is not None
        stmts.append(_if(_name(emitted.u), [self._set_r(_name(steer))]))
        return stmts, root_bool

    def _build_spec(self, node: ast.expr, negated: bool):
        """Mirror of ``_TreeLowering.lower``: same structure, same leaf order."""
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            return self._build_spec(node.operand, not negated)
        if isinstance(node, ast.BoolOp):
            is_and = isinstance(node.op, ast.And)
            if negated:
                is_and = not is_and
            return _Bool(is_and, [self._build_spec(v, negated) for v in node.values])
        if isinstance(node, ast.IfExp):
            return _Tern(
                self._build_spec(node.test, False),
                self._build_spec(node.body, negated),
                self._build_spec(node.orelse, negated),
            )
        if isinstance(node, ast.Compare) and all(type(op) in _AST_OPS for op in node.ops):
            if len(node.ops) == 1:
                op = _AST_OPS[type(node.ops[0])]
                if negated:
                    op = _NEGATED[op]
                return _Cmp(op, node.left, node.comparators[0], [])
            # Chained comparison: middle operands bound once, links composed
            # with ``and`` (``or`` of flipped links under De Morgan).
            children = []
            lhs: ast.expr = node.left
            last = len(node.ops) - 1
            for index, (op_node, comparator) in enumerate(zip(node.ops, node.comparators)):
                op = _AST_OPS[type(op_node)]
                if negated:
                    op = _NEGATED[op]
                if index < last:
                    temp = self._temp()
                    pre = [_assign(temp, comparator)]
                    rhs: ast.expr = _name(temp)
                    next_lhs: ast.expr = _name(temp)
                else:
                    pre = []
                    rhs = comparator
                    next_lhs = comparator  # unused
                children.append(_Cmp(op, lhs, rhs, pre))
                lhs = next_lhs
            return _Bool(not negated, children)
        return _Truth(node, negated)

    def _emit_spec(
        self, spec, need_t: bool, need_f: bool, shared_u: Optional[str]
    ) -> _Emitted:
        if isinstance(spec, _Cmp):
            return self._emit_cmp_leaf(spec, need_t, need_f, shared_u)
        if isinstance(spec, _Truth):
            return self._emit_truth_leaf(spec, need_t, need_f, shared_u)
        if isinstance(spec, _Bool):
            return self._emit_bool(spec, need_t, need_f, shared_u)
        if isinstance(spec, _Tern):
            return self._emit_ternary(spec, need_t, need_f, shared_u)
        raise SpecializationError(f"unknown composition spec {spec!r}")

    def _emit_cmp_leaf(
        self, spec: _Cmp, need_t: bool, need_f: bool, shared_u: Optional[str]
    ) -> _Emitted:
        pre_a, a = self._operand(spec.lhs)
        pre_b, b = self._operand(spec.rhs)
        # Probe argument order: lhs evaluates before a chain link's walrus
        # temporary (spec.pre), which evaluates before a plain rhs.
        stmts = pre_a + list(spec.pre) + pre_b
        out = self._temp()
        stmts.append(_assign(out, _compare(a.node(), spec.op, b.node())))
        if shared_u is not None:
            stmts += self._guarded(a, b, lambda fa, fb: [_assign(shared_u, _const(1))])
            return _Emitted(stmts, out)
        t_var = self._temp() if need_t else None
        f_var = self._temp() if need_f else None
        u_var = self._temp()
        stmts.append(_assign(u_var, _const(0)))
        op = spec.op
        eps = self.epsilon

        def body(fa: _Val, fb: _Val) -> list:
            # The fused FastRuntime.cmp arithmetic, directions on demand.
            inner: list = []
            if op == "!=":
                g_needed = need_f
            elif op == "==":
                g_needed = need_t
            else:
                g_needed = True
            g_var = None
            if g_needed:
                g_var = self._temp()
                inner.append(_assign(g_var, self._squared_gap_expr(fa, fb)))
            g = (lambda: _name(g_var)) if g_var is not None else None
            g_plus_eps = (
                (lambda: ast.BinOp(left=_name(g_var), op=ast.Add(), right=_const(eps)))
                if g_var is not None
                else None
            )
            an, bn = fa.node, fb.node
            if op == "<":
                t_expr = lambda: ast.IfExp(_compare(an(), "<", bn()), _const(0.0), g_plus_eps())
                f_expr = lambda: ast.IfExp(_compare(bn(), "<=", an()), _const(0.0), g())
            elif op == "<=":
                t_expr = lambda: ast.IfExp(_compare(an(), "<=", bn()), _const(0.0), g())
                f_expr = lambda: ast.IfExp(_compare(bn(), "<", an()), _const(0.0), g_plus_eps())
            elif op == ">":
                t_expr = lambda: ast.IfExp(_compare(bn(), "<", an()), _const(0.0), g_plus_eps())
                f_expr = lambda: ast.IfExp(_compare(an(), "<=", bn()), _const(0.0), g())
            elif op == ">=":
                t_expr = lambda: ast.IfExp(_compare(bn(), "<=", an()), _const(0.0), g())
                f_expr = lambda: ast.IfExp(_compare(an(), "<", bn()), _const(0.0), g_plus_eps())
            elif op == "==":
                t_expr = lambda: _name(g_var)
                f_expr = lambda: ast.IfExp(_compare(an(), "==", bn()), _const(eps), _const(0.0))
            else:  # "!="
                t_expr = lambda: ast.IfExp(_compare(an(), "!=", bn()), _const(0.0), _const(eps))
                f_expr = lambda: _name(g_var)
            if need_t:
                inner.append(_assign(t_var, t_expr()))
            if need_f:
                inner.append(_assign(f_var, f_expr()))
            terms = self._nan_terms(fa, fb)
            if terms:
                nan_t = 0.0 if op == "!=" else BIG_DISTANCE
                nan_f = BIG_DISTANCE if op == "!=" else 0.0
                nan_body: list = []
                if need_t:
                    nan_body.append(_assign(t_var, _const(nan_t)))
                if need_f:
                    nan_body.append(_assign(f_var, _const(nan_f)))
                test = terms[0] if len(terms) == 1 else ast.BoolOp(op=ast.Or(), values=terms)
                inner = [_if(test, nan_body, inner)]
            return inner + [_assign(u_var, _const(1))]

        stmts += self._guarded(a, b, body)
        return _Emitted(stmts, out, t_var, f_var, u_var)

    def _emit_truth_leaf(
        self, spec: _Truth, need_t: bool, need_f: bool, shared_u: Optional[str]
    ) -> _Emitted:
        value = self._temp()
        out = self._temp()
        stmts = [_assign(value, spec.value)]
        outcome: ast.expr = _not(_name(value)) if spec.negated else _not(_not(_name(value)))
        stmts.append(_assign(out, outcome))
        is_bool = ast.Compare(
            left=ast.Attribute(value=_name(value), attr="__class__", ctx=ast.Load()),
            ops=[ast.Is()],
            comparators=[_name("bool")],
        )
        is_num = _call(
            "isinstance",
            [_name(value), ast.Tuple(elts=[_name("int"), _name("float")], ctx=ast.Load())],
        )
        if shared_u is not None:
            mark = [_assign(shared_u, _const(1))]
            numeric = ast.Try(
                body=[ast.Expr(value=_call("float", [_name(value)]))],
                handlers=[_convert_handler()],
                orelse=mark,
                finalbody=[],
            )
            stmts.append(_if(is_bool, list(mark), [_if(is_num, [numeric])]))
            return _Emitted(stmts, out)
        # Unnegated promoted distances; a folded negation swaps which
        # direction each output variable receives (exactly tleaf's swap).
        t_var = self._temp() if need_t else None
        f_var = self._temp() if need_f else None
        u_var = self._temp()
        stmts.append(_assign(u_var, _const(0)))
        eps = _const(self.epsilon)

        def assigns(dt_expr, df_expr) -> list:
            # dt_expr/df_expr build the *unnegated* d_true/d_false.
            body: list = []
            if spec.negated:
                if need_t:
                    body.append(_assign(t_var, df_expr()))
                if need_f:
                    body.append(_assign(f_var, dt_expr()))
            else:
                if need_t:
                    body.append(_assign(t_var, dt_expr()))
                if need_f:
                    body.append(_assign(f_var, df_expr()))
            return body

        bool_body = assigns(
            lambda: ast.IfExp(test=_name(value), body=_const(0.0), orelse=eps),
            lambda: ast.IfExp(test=_name(value), body=eps, orelse=_const(0.0)),
        ) + [_assign(u_var, _const(1))]
        conv = self._temp()
        cval = _Val(ident=conv)
        nan_body = assigns(lambda: _const(0.0), lambda: _const(BIG_DISTANCE))
        num_dist = assigns(
            lambda: ast.IfExp(
                test=_compare(_name(conv), "!=", _const(0.0)), body=_const(0.0), orelse=eps
            ),
            lambda: self._squared_gap_expr(cval, _Val(value=0.0)),
        )
        num_body = [
            _if(_compare(_name(conv), "!=", _name(conv)), nan_body, num_dist),
            _assign(u_var, _const(1)),
        ]
        numeric = _try_convert([(conv, _name(value))], num_body)
        stmts.append(_if(is_bool, bool_body, [_if(is_num, [numeric])]))
        return _Emitted(stmts, out, t_var, f_var, u_var)

    def _emit_bool(
        self, spec: _Bool, need_t: bool, need_f: bool, shared_u: Optional[str]
    ) -> _Emitted:
        out = self._temp()
        if shared_u is not None:
            t_var = f_var = u_var = None
        else:
            t_var = self._temp() if need_t else None
            f_var = self._temp() if need_f else None
            u_var = self._temp()

        def fold(child: _Emitted) -> list:
            """Fold one child's pair into the node accumulators, in order."""
            if shared_u is not None:
                return []
            first: list = []
            rest: list = []
            if need_t:
                first.append(_assign(t_var, _name(child.t)))
                if spec.is_and:  # d_true adds up
                    rest.append(
                        _assign(
                            t_var,
                            ast.BinOp(left=_name(t_var), op=ast.Add(), right=_name(child.t)),
                        )
                    )
                else:  # d_true is the running minimum (first wins ties)
                    rest.append(
                        _if(
                            _compare(_name(child.t), "<", _name(t_var)),
                            [_assign(t_var, _name(child.t))],
                        )
                    )
            if need_f:
                first.append(_assign(f_var, _name(child.f)))
                if spec.is_and:
                    rest.append(
                        _if(
                            _compare(_name(child.f), "<", _name(f_var)),
                            [_assign(f_var, _name(child.f))],
                        )
                    )
                else:
                    rest.append(
                        _assign(
                            f_var,
                            ast.BinOp(left=_name(f_var), op=ast.Add(), right=_name(child.f)),
                        )
                    )
            first.append(_assign(u_var, _const(1)))
            return [_if(_name(child.u), [_if(_name(u_var), rest, first)])]

        last = len(spec.children) - 1

        def build(index: int) -> list:
            child = self._emit_spec(spec.children[index], need_t, need_f, shared_u)
            stmts = child.stmts + fold(child)
            if index == last:
                stmts.append(_assign(out, _name(child.out)))
            elif spec.is_and:
                stmts.append(
                    _if(_name(child.out), build(index + 1), [_assign(out, _const(False))])
                )
            else:
                stmts.append(
                    _if(_name(child.out), [_assign(out, _const(True))], build(index + 1))
                )
            return stmts

        stmts = build(0)
        if shared_u is None:
            stmts = [_assign(u_var, _const(0))] + stmts
        return _Emitted(stmts, out, t_var, f_var, u_var)

    def _fold_pair(
        self,
        is_and: bool,
        x: tuple[Optional[str], Optional[str], str],
        y: Optional[tuple[Optional[str], Optional[str], str]],
        need_t: bool,
        need_f: bool,
    ) -> tuple[list, tuple[Optional[str], Optional[str], str]]:
        """Two-pair composition fold into fresh accumulators.

        ``x``/``y`` are ``(t, f, u)`` variable-name triples; ``y`` may be
        ``None`` for a statically-unevaluated side (it contributes nothing,
        like a short-circuited leaf).  The arithmetic order matches
        ``_compose_tree``: ``x`` is the first pushed pair.
        """
        t_var = self._temp() if need_t else None
        f_var = self._temp() if need_f else None
        u_var = self._temp()
        stmts: list = [_assign(u_var, _const(0))]
        if y is None:
            copy: list = []
            if need_t:
                copy.append(_assign(t_var, _name(x[0])))
            if need_f:
                copy.append(_assign(f_var, _name(x[1])))
            copy.append(_assign(u_var, _const(1)))
            stmts.append(_if(_name(x[2]), copy))
            return stmts, (t_var, f_var, u_var)
        both: list = []
        if need_t:
            if is_and:
                both.append(
                    _assign(t_var, ast.BinOp(left=_name(x[0]), op=ast.Add(), right=_name(y[0])))
                )
            else:
                both.append(
                    _assign(
                        t_var,
                        ast.IfExp(
                            test=_compare(_name(y[0]), "<", _name(x[0])),
                            body=_name(y[0]),
                            orelse=_name(x[0]),
                        ),
                    )
                )
        if need_f:
            if is_and:
                both.append(
                    _assign(
                        f_var,
                        ast.IfExp(
                            test=_compare(_name(y[1]), "<", _name(x[1])),
                            body=_name(y[1]),
                            orelse=_name(x[1]),
                        ),
                    )
                )
            else:
                both.append(
                    _assign(f_var, ast.BinOp(left=_name(x[1]), op=ast.Add(), right=_name(y[1])))
                )
        x_only: list = []
        y_only: list = []
        if need_t:
            x_only.append(_assign(t_var, _name(x[0])))
            y_only.append(_assign(t_var, _name(y[0])))
        if need_f:
            x_only.append(_assign(f_var, _name(x[1])))
            y_only.append(_assign(f_var, _name(y[1])))
        stmts.append(
            _if(
                _name(x[2]),
                [_if(_name(y[2]), both, x_only), _assign(u_var, _const(1))],
                [_if(_name(y[2]), y_only + [_assign(u_var, _const(1))])],
            )
        )
        return stmts, (t_var, f_var, u_var)

    def _emit_ternary(
        self, spec: _Tern, need_t: bool, need_f: bool, shared_u: Optional[str]
    ) -> _Emitted:
        out = self._temp()
        if shared_u is not None:
            cond = self._emit_spec(spec.cond, False, False, shared_u)
            body = self._emit_spec(spec.body, False, False, shared_u)
            orelse = self._emit_spec(spec.orelse, False, False, shared_u)
            stmts = cond.stmts + [
                _if(
                    _name(cond.out),
                    body.stmts + [_assign(out, _name(body.out))],
                    orelse.stmts + [_assign(out, _name(orelse.out))],
                )
            ]
            return _Emitted(stmts, out)
        # ``a if c else b`` composes as ``(c and a) or (not c and b)``; the
        # condition's distances are shared by both conjuncts, so both of its
        # directions are needed whatever the parent asked for.
        cond = self._emit_spec(spec.cond, True, True, None)
        t_var = self._temp() if need_t else None
        f_var = self._temp() if need_f else None
        u_var = self._temp()
        cond_pair = (cond.t, cond.f, cond.u)
        cond_swapped = (cond.f, cond.t, cond.u)

        def finish(result: tuple[Optional[str], Optional[str], str]) -> list:
            copy: list = []
            if need_t:
                copy.append(_assign(t_var, _name(result[0])))
            if need_f:
                copy.append(_assign(f_var, _name(result[1])))
            return copy + [_assign(u_var, _name(result[2]))]

        # True branch: and1 = (cond, body); and2 = (not cond) alone.
        body = self._emit_spec(spec.body, need_t, need_f, None)
        and1_stmts, and1 = self._fold_pair(
            True, cond_pair, (body.t, body.f, body.u), need_t, need_f
        )
        and2_stmts, and2 = self._fold_pair(True, cond_swapped, None, need_t, need_f)
        or_stmts, merged = self._fold_pair(False, and1, and2, need_t, need_f)
        true_branch = (
            body.stmts
            + and1_stmts
            + and2_stmts
            + or_stmts
            + finish(merged)
            + [_assign(out, _name(body.out))]
        )
        # False branch: and1 = cond alone; and2 = (not cond, orelse).
        orelse = self._emit_spec(spec.orelse, need_t, need_f, None)
        and1_stmts, and1 = self._fold_pair(True, cond_pair, None, need_t, need_f)
        and2_stmts, and2 = self._fold_pair(
            True, cond_swapped, (orelse.t, orelse.f, orelse.u), need_t, need_f
        )
        or_stmts, merged = self._fold_pair(False, and1, and2, need_t, need_f)
        false_branch = (
            orelse.stmts
            + and1_stmts
            + and2_stmts
            + or_stmts
            + finish(merged)
            + [_assign(out, _name(orelse.out))]
        )
        stmts = cond.stmts + [_if(_name(cond.out), true_branch, false_branch)]
        return _Emitted(stmts, out, t_var, f_var, u_var)


# -- source-level entry points -----------------------------------------------------------


def specialize_source(
    source: str,
    function_name: str | None = None,
    start_label: int = 0,
    saturated_mask: int = 0,
    epsilon: float = DEFAULT_EPSILON,
) -> tuple[ast.Module, int]:
    """Specialize one function's source against a concrete saturation mask.

    Labels are assigned by the same walk as :func:`instrument_source`, so a
    site's label (and therefore its two mask bits) is identical across the
    generic and the specialized tier.  Returns the transformed module AST and
    the number of labeled conditionals.
    """
    tree = ast.parse(textwrap.dedent(source))
    func_node = None
    for stmt in tree.body:
        if isinstance(stmt, ast.FunctionDef) and (
            function_name is None or stmt.name == function_name
        ):
            func_node = stmt
            break
    if func_node is None:
        raise SpecializationError(
            f"could not find function {function_name!r} in the provided source"
        )
    func_node.decorator_list = []
    labels, _ = assign_labels(func_node, start=start_label)
    specializer = _Specializer(labels, saturated_mask, epsilon)
    specializer.visit(func_node)
    ast.fix_missing_locations(tree)
    return tree, len(labels)


@dataclass(frozen=True)
class SpecializedUnit:
    """Immutable compiled artifacts of one specialized source (cacheable)."""

    code: CodeType
    n_conditionals: int


#: Module-level specialization cache: (source sha256, function name, start
#: label, saturated mask, epsilon) -> SpecializedUnit.  Masks repeat across
#: starts/epochs and workers, so one compile serves many namespaces.
_SPECIALIZED_CACHE: dict[tuple, SpecializedUnit] = {}
_SPECIALIZED_CACHE_LOCK = threading.Lock()
_SPECIALIZED_CACHE_MAX = 1024
_SPECIALIZED_CACHE_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def specialized_unit(
    source: str,
    function_name: str,
    start_label: int,
    saturated_mask: int,
    epsilon: float = DEFAULT_EPSILON,
) -> SpecializedUnit:
    """Specialize + compile ``source``, memoized on its hash and the mask."""
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    key = (digest, function_name, start_label, saturated_mask, epsilon)
    with _SPECIALIZED_CACHE_LOCK:
        unit = _SPECIALIZED_CACHE.get(key)
        if unit is not None:
            _SPECIALIZED_CACHE_STATS["hits"] += 1
            return unit
        _SPECIALIZED_CACHE_STATS["misses"] += 1
    tree, n_conditionals = specialize_source(
        source,
        function_name=function_name,
        start_label=start_label,
        saturated_mask=saturated_mask,
        epsilon=epsilon,
    )
    code = compile(
        tree, filename=f"<specialized:{function_name}:{saturated_mask:x}>", mode="exec"
    )
    unit = SpecializedUnit(code=code, n_conditionals=n_conditionals)
    with _SPECIALIZED_CACHE_LOCK:
        while len(_SPECIALIZED_CACHE) >= _SPECIALIZED_CACHE_MAX:
            # FIFO bound: masks from finished epochs age out first.
            _SPECIALIZED_CACHE.pop(next(iter(_SPECIALIZED_CACHE)))
            _SPECIALIZED_CACHE_STATS["evictions"] += 1
        _SPECIALIZED_CACHE[key] = unit
    return unit


def specialized_cache_info() -> dict[str, int]:
    """Size and hit/miss/evict statistics of the specialization cache."""
    with _SPECIALIZED_CACHE_LOCK:
        return {
            "entries": len(_SPECIALIZED_CACHE),
            "max_entries": _SPECIALIZED_CACHE_MAX,
            **_SPECIALIZED_CACHE_STATS,
        }


def clear_specialized_cache() -> None:
    """Drop every cached specialization and reset its statistics."""
    with _SPECIALIZED_CACHE_LOCK:
        _SPECIALIZED_CACHE.clear()
        for key in _SPECIALIZED_CACHE_STATS:
            _SPECIALIZED_CACHE_STATS[key] = 0
