"""Compilation of an instrumented program (``FOO_I`` of the paper).

:func:`instrument` takes a Python function (and optionally helper functions it
calls, per the "Handling Function Calls" paragraph of Sect. 5.3), applies the
AST pass, compiles the result into a fresh namespace sharing the original
globals, and returns an :class:`InstrumentedProgram` handle.  Executing the
program through :meth:`InstrumentedProgram.run` with a
:class:`~repro.instrument.runtime.Runtime` yields the return value, the final
value of the injected register ``r`` and the coverage record -- everything the
representing function and the coverage substrate need.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.instrument.ast_pass import (
    HANDLE_NAME,
    ConditionalInfo,
    instrument_source,
)
from repro.instrument.cfg import DescendantAnalysis
from repro.instrument.runtime import (
    BranchId,
    ExecutionRecord,
    Runtime,
    RuntimeHandle,
)
from repro.instrument.signature import ProgramSignature


class InstrumentationError(RuntimeError):
    """Raised when a function cannot be instrumented (e.g. no source)."""


@dataclass(frozen=True)
class ProgramOrigin:
    """The recipe an :class:`InstrumentedProgram` was built from.

    Keeping the original (uninstrumented) callables around makes the program
    *clonable*: worker threads get independent compiled namespaces, and
    worker processes can rebuild the program from the picklable function
    references instead of shipping compiled code across the process boundary.
    """

    target: Callable
    extra_functions: tuple[Callable, ...] = ()
    signature: Optional[ProgramSignature] = None


@dataclass
class InstrumentedProgram:
    """A compiled, instrumented program under test.

    Attributes:
        name: Name of the entry function.
        signature: Input-domain description of the entry function.
        conditionals: Static metadata for every instrumented conditional.
        descendants: Descendant-branch analysis used by saturation tracking.
        origin: Build recipe enabling :meth:`clone`; ``None`` for programs
            assembled by hand.
    """

    name: str
    signature: ProgramSignature
    conditionals: list[ConditionalInfo]
    descendants: DescendantAnalysis
    entry: Callable = field(repr=False)
    handle: RuntimeHandle = field(repr=False)
    source: str = field(repr=False, default="")
    origin: Optional[ProgramOrigin] = field(repr=False, default=None)

    @property
    def arity(self) -> int:
        """Number of double inputs of the entry function."""
        return self.signature.arity

    @property
    def n_conditionals(self) -> int:
        return len(self.conditionals)

    @property
    def n_branches(self) -> int:
        """Gcov-style branch count: two branches per conditional."""
        return 2 * len(self.conditionals)

    @property
    def all_branches(self) -> frozenset[BranchId]:
        branches: set[BranchId] = set()
        for cond in self.conditionals:
            branches.add(BranchId(cond.label, True))
            branches.add(BranchId(cond.label, False))
        return frozenset(branches)

    def descendant_branches(self, branch: BranchId) -> frozenset[BranchId]:
        return self.descendants.descendant_branches(branch)

    def run(
        self, args: Sequence[float], runtime: Optional[Runtime] = None
    ) -> tuple[object, float, ExecutionRecord]:
        """Execute the instrumented program on ``args``.

        Returns ``(return_value, r, record)``.  Exceptions escaping the
        program under test (domain errors, overflow raised as Python
        exceptions) are swallowed: the execution record up to the fault is
        still meaningful and the representing function must stay total.
        """
        runtime = runtime if runtime is not None else Runtime()
        self.handle.install(runtime)
        runtime.begin()
        value: object = None
        try:
            value = self.entry(*args)
        except (ArithmeticError, ValueError, OverflowError):
            value = None
        r, record = runtime.end()
        return value, r, record

    def clone(self) -> "InstrumentedProgram":
        """Re-instrument this program into a fresh namespace and runtime handle.

        Each clone owns its compiled code and :class:`RuntimeHandle`, so
        clones can execute concurrently (one per worker thread) without
        racing on the installed runtime.  Requires :attr:`origin`.
        """
        if self.origin is None:
            raise InstrumentationError(
                f"program {self.name!r} was not built by instrument() and cannot be cloned"
            )
        return instrument(
            self.origin.target,
            extra_functions=self.origin.extra_functions,
            signature=self.origin.signature,
        )


def instrument(
    func: Callable,
    extra_functions: Iterable[Callable] = (),
    signature: Optional[ProgramSignature] = None,
) -> InstrumentedProgram:
    """Instrument ``func`` (and optionally helpers it calls) for CoverMe.

    Args:
        func: The entry function under test.  Its source must be available
            through :func:`inspect.getsource`.
        extra_functions: Helper functions called by ``func`` whose branches
            should also be instrumented and counted (Sect. 5.3, "Handling
            Function Calls").  They are compiled into the same namespace so
            calls from the entry function reach the instrumented versions.
        signature: Optional explicit input-domain description; derived from
            ``func``'s parameters when omitted.

    Returns:
        An :class:`InstrumentedProgram`.
    """
    handle = RuntimeHandle()
    extra_functions = tuple(extra_functions)
    targets = [func, *extra_functions]

    # Build the shared namespace first so instrumented definitions (added in
    # the second pass) are never shadowed by the originals from a later
    # target's module globals.
    namespace: dict = {}
    for target in targets:
        namespace.update(getattr(target, "__globals__", {}))
    namespace[HANDLE_NAME] = handle

    conditionals: list[ConditionalInfo] = []
    analysis = DescendantAnalysis()
    next_label = 0
    sources: list[str] = []

    for target in targets:
        try:
            source = textwrap.dedent(inspect.getsource(target))
        except (OSError, TypeError) as exc:
            raise InstrumentationError(
                f"cannot obtain source for {getattr(target, '__name__', target)!r}: {exc}"
            ) from exc
        tree, conds, labels, func_node = instrument_source(
            source, function_name=target.__name__, start_label=next_label
        )
        next_label += len(conds)
        conditionals.extend(conds)
        analysis.merge(DescendantAnalysis.from_function(func_node, labels))
        code = compile(tree, filename=f"<instrumented:{target.__name__}>", mode="exec")
        exec(code, namespace)  # noqa: S102 - compiling the user's own function
        sources.append(ast.unparse(tree))

    entry = namespace[func.__name__]
    sig = signature or ProgramSignature.from_callable(func)
    return InstrumentedProgram(
        name=func.__name__,
        signature=sig,
        conditionals=conditionals,
        descendants=analysis,
        entry=entry,
        handle=handle,
        source="\n\n".join(sources),
        origin=ProgramOrigin(target=func, extra_functions=extra_functions, signature=signature),
    )
