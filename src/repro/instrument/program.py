"""Compilation of an instrumented program (``FOO_I`` of the paper).

:func:`instrument` takes a Python function (and optionally helper functions it
calls, per the "Handling Function Calls" paragraph of Sect. 5.3), applies the
AST pass, compiles the result into a fresh namespace sharing the original
globals, and returns an :class:`InstrumentedProgram` handle.  Executing the
program through :meth:`InstrumentedProgram.run` with a
:class:`~repro.instrument.runtime.Runtime` yields the return value, the final
value of the injected register ``r`` and the coverage record -- everything the
representing function and the coverage substrate need.

Instrumentation and ``compile()`` are paid once per distinct source: a
module-level cache keyed by the SHA-256 of the (dedented) source text maps to
the immutable compiled artifacts (code object, conditional metadata,
descendant analysis).  :meth:`InstrumentedProgram.clone` and per-process
engine workers therefore only re-``exec`` the cached code object into a fresh
namespace, which is orders of magnitude cheaper than re-parsing and
re-compiling.
"""

from __future__ import annotations

import ast
import hashlib
import inspect
import textwrap
import threading
from dataclasses import dataclass, field
from types import CodeType
from typing import Callable, Iterable, Optional, Sequence

from repro.instrument.ast_pass import (
    HANDLE_NAME,
    ConditionalInfo,
    instrument_source,
)
from repro.instrument.cfg import DescendantAnalysis
from repro.instrument.runtime import (
    BranchId,
    CoverageOutcome,
    ExecutionProfile,
    ExecutionRecord,
    FastRuntime,
    Runtime,
    RuntimeHandle,
)
from repro.instrument.signature import ProgramSignature


class InstrumentationError(RuntimeError):
    """Raised when a function cannot be instrumented (e.g. no source)."""


@dataclass(frozen=True)
class ProgramOrigin:
    """The recipe an :class:`InstrumentedProgram` was built from.

    Keeping the original (uninstrumented) callables around makes the program
    *clonable*: worker threads get independent compiled namespaces, and
    worker processes can rebuild the program from the picklable function
    references instead of shipping compiled code across the process boundary.
    """

    target: Callable
    extra_functions: tuple[Callable, ...] = ()
    signature: Optional[ProgramSignature] = None


@dataclass(frozen=True)
class CompiledUnit:
    """Immutable compiled artifacts of one instrumented source (cacheable)."""

    code: CodeType = field(repr=False)
    conditionals: tuple[ConditionalInfo, ...]
    analysis: DescendantAnalysis = field(repr=False)
    unparsed: str = field(repr=False)


#: Module-level compiled-code cache: (source sha256, function name,
#: start label) -> CompiledUnit.  Code objects are immutable, so one cached
#: unit can back any number of program namespaces (clones, worker processes
#: after fork, repeated instrument() calls).
_CODE_CACHE: dict[tuple[str, str, int], CompiledUnit] = {}
_CODE_CACHE_LOCK = threading.Lock()
_CODE_CACHE_MAX = 512


def compiled_cache_info() -> dict[str, int]:
    """Size statistics of the compiled-code cache (for tests/diagnostics)."""
    return {"entries": len(_CODE_CACHE), "max_entries": _CODE_CACHE_MAX}


def clear_compiled_cache() -> None:
    """Drop every cached compiled unit (primarily for tests)."""
    with _CODE_CACHE_LOCK:
        _CODE_CACHE.clear()


def _compiled_unit(source: str, function_name: str, start_label: int) -> CompiledUnit:
    """Instrument + compile ``source``, memoized on its hash."""
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    key = (digest, function_name, start_label)
    unit = _CODE_CACHE.get(key)
    if unit is not None:
        return unit
    tree, conds, labels, func_node = instrument_source(
        source, function_name=function_name, start_label=start_label
    )
    code = compile(tree, filename=f"<instrumented:{function_name}>", mode="exec")
    unit = CompiledUnit(
        code=code,
        conditionals=tuple(conds),
        analysis=DescendantAnalysis.from_function(func_node, labels),
        unparsed=ast.unparse(tree),
    )
    with _CODE_CACHE_LOCK:
        if len(_CODE_CACHE) >= _CODE_CACHE_MAX:
            # Simple bound: the cache is tiny in practice (one entry per
            # distinct target function); dropping everything on overflow
            # costs one recompile burst and keeps the logic race-free.
            _CODE_CACHE.clear()
        _CODE_CACHE[key] = unit
    return unit


@dataclass
class InstrumentedProgram:
    """A compiled, instrumented program under test.

    Attributes:
        name: Name of the entry function.
        signature: Input-domain description of the entry function.
        conditionals: Static metadata for every instrumented conditional.
        descendants: Descendant-branch analysis used by saturation tracking.
        origin: Build recipe enabling :meth:`clone`; ``None`` for programs
            assembled by hand.
    """

    name: str
    signature: ProgramSignature
    conditionals: list[ConditionalInfo]
    descendants: DescendantAnalysis
    entry: Callable = field(repr=False)
    handle: RuntimeHandle = field(repr=False)
    source: str = field(repr=False, default="")
    origin: Optional[ProgramOrigin] = field(repr=False, default=None)

    @property
    def arity(self) -> int:
        """Number of double inputs of the entry function."""
        return self.signature.arity

    @property
    def n_conditionals(self) -> int:
        return len(self.conditionals)

    @property
    def n_branches(self) -> int:
        """Gcov-style branch count: two branches per conditional."""
        return 2 * len(self.conditionals)

    @property
    def fallback_conditionals(self) -> tuple[ConditionalInfo, ...]:
        """Conditionals whose test compiled to the distance-blind ``truth`` fallback.

        These labels receive coverage recording but no statically-guaranteed
        branch-distance guidance (the runtime still promotes numeric values
        at execution time).  A complete lowering keeps this empty; anything
        listed here is invisible to the representing function's gradient.
        """
        return tuple(cond for cond in self.conditionals if cond.form == "truth")

    def conditional_forms(self) -> dict[str, int]:
        """Histogram of the lowered conditional forms (see ``CONDITIONAL_FORMS``)."""
        counts: dict[str, int] = {}
        for cond in self.conditionals:
            counts[cond.form] = counts.get(cond.form, 0) + 1
        return counts

    @property
    def all_branches(self) -> frozenset[BranchId]:
        branches: set[BranchId] = set()
        for cond in self.conditionals:
            branches.add(BranchId(cond.label, True))
            branches.add(BranchId(cond.label, False))
        return frozenset(branches)

    def descendant_branches(self, branch: BranchId) -> frozenset[BranchId]:
        return self.descendants.descendant_branches(branch)

    def run(
        self, args: Sequence[float], runtime: Optional[Runtime] = None
    ) -> tuple[object, float, ExecutionRecord]:
        """Execute the instrumented program on ``args`` under ``FULL_TRACE``.

        Returns ``(return_value, r, record)``.  Exceptions escaping the
        program under test (domain errors, overflow raised as Python
        exceptions) are swallowed: the execution record up to the fault is
        still meaningful and the representing function must stay total.

        This is the recording entry point; profile-aware callers use
        :meth:`run_profiled`.
        """
        runtime = runtime if runtime is not None else Runtime()
        self.handle.install(runtime)
        runtime.begin()
        value: object = None
        try:
            value = self.entry(*args)
        except (ArithmeticError, ValueError, OverflowError):
            value = None
        r, record = runtime.end()
        return value, r, record

    def run_profiled(
        self,
        args: Sequence[float],
        profile: ExecutionProfile = ExecutionProfile.FULL_TRACE,
        runtime: Optional["Runtime | FastRuntime"] = None,
        saturated_mask: Optional[int] = None,
    ) -> tuple[object, float, "ExecutionRecord | CoverageOutcome | int"]:
        """Execute on ``args`` under an explicit execution profile.

        Returns ``(return_value, r, outcome)`` where ``outcome`` is the full
        :class:`ExecutionRecord` under ``FULL_TRACE``, a
        :class:`CoverageOutcome` under ``COVERAGE``, and just the flat
        covered-branch bitmask (an ``int``) under ``PENALTY_ONLY`` -- that
        profile's contract is "``r`` plus a bitset", so no per-call branch
        objects are materialized.  ``saturated_mask`` feeds the fast
        runtime's inlined penalty; when omitted, a reused runtime keeps the
        mask it was configured with (ignored under ``FULL_TRACE``, where the
        caller installs a policy on the runtime).
        """
        profile = ExecutionProfile(profile)
        if profile is ExecutionProfile.FULL_TRACE:
            return self.run(args, runtime=runtime)  # type: ignore[arg-type]
        fast = runtime if runtime is not None else FastRuntime(self.n_conditionals)
        self.handle.install(fast)
        fast.begin(saturated_mask)
        value: object = None
        try:
            value = self.entry(*args)
        except (ArithmeticError, ValueError, OverflowError):
            value = None
        if profile is ExecutionProfile.PENALTY_ONLY:
            return value, fast.r, fast.covered_mask()
        return value, fast.r, fast.snapshot()

    def clone(self) -> "InstrumentedProgram":
        """Rebuild this program with a fresh namespace and runtime handle.

        Each clone owns its namespace and :class:`RuntimeHandle`, so clones
        can execute concurrently (one per worker thread) without racing on
        the installed runtime.  The compiled code objects are shared through
        the module-level cache, so cloning only re-``exec``s them.  Requires
        :attr:`origin`.
        """
        if self.origin is None:
            raise InstrumentationError(
                f"program {self.name!r} was not built by instrument() and cannot be cloned"
            )
        return instrument(
            self.origin.target,
            extra_functions=self.origin.extra_functions,
            signature=self.origin.signature,
        )


def instrument(
    func: Callable,
    extra_functions: Iterable[Callable] = (),
    signature: Optional[ProgramSignature] = None,
) -> InstrumentedProgram:
    """Instrument ``func`` (and optionally helpers it calls) for CoverMe.

    Args:
        func: The entry function under test.  Its source must be available
            through :func:`inspect.getsource`.
        extra_functions: Helper functions called by ``func`` whose branches
            should also be instrumented and counted (Sect. 5.3, "Handling
            Function Calls").  They are compiled into the same namespace so
            calls from the entry function reach the instrumented versions.
        signature: Optional explicit input-domain description; derived from
            ``func``'s parameters when omitted.

    Returns:
        An :class:`InstrumentedProgram`.
    """
    handle = RuntimeHandle()
    extra_functions = tuple(extra_functions)
    targets = [func, *extra_functions]

    # Build the shared namespace first so instrumented definitions (added in
    # the second pass) are never shadowed by the originals from a later
    # target's module globals.
    namespace: dict = {}
    for target in targets:
        namespace.update(getattr(target, "__globals__", {}))
    namespace[HANDLE_NAME] = handle

    conditionals: list[ConditionalInfo] = []
    analysis = DescendantAnalysis()
    next_label = 0
    sources: list[str] = []

    for target in targets:
        try:
            source = textwrap.dedent(inspect.getsource(target))
        except (OSError, TypeError) as exc:
            raise InstrumentationError(
                f"cannot obtain source for {getattr(target, '__name__', target)!r}: {exc}"
            ) from exc
        unit = _compiled_unit(source, target.__name__, next_label)
        next_label += len(unit.conditionals)
        conditionals.extend(unit.conditionals)
        analysis.merge(unit.analysis)
        exec(unit.code, namespace)  # noqa: S102 - compiling the user's own function
        sources.append(unit.unparsed)

    entry = namespace[func.__name__]
    sig = signature or ProgramSignature.from_callable(func)
    return InstrumentedProgram(
        name=func.__name__,
        signature=sig,
        conditionals=conditionals,
        descendants=analysis,
        entry=entry,
        handle=handle,
        source="\n\n".join(sources),
        origin=ProgramOrigin(target=func, extra_functions=extra_functions, signature=signature),
    )
