"""Compilation of an instrumented program (``FOO_I`` of the paper).

:func:`instrument` takes a Python function (and optionally helper functions it
calls, per the "Handling Function Calls" paragraph of Sect. 5.3), applies the
AST pass, compiles the result into a fresh namespace sharing the original
globals, and returns an :class:`InstrumentedProgram` handle.  Executing the
program through :meth:`InstrumentedProgram.run` with a
:class:`~repro.instrument.runtime.Runtime` yields the return value, the final
value of the injected register ``r`` and the coverage record -- everything the
representing function and the coverage substrate need.

Instrumentation and ``compile()`` are paid once per distinct source: a
module-level cache keyed by the SHA-256 of the (dedented) source text maps to
the immutable compiled artifacts (code object, conditional metadata,
descendant analysis).  :meth:`InstrumentedProgram.clone` and per-process
engine workers therefore only re-``exec`` the cached code object into a fresh
namespace, which is orders of magnitude cheaper than re-parsing and
re-compiling.
"""

from __future__ import annotations

import ast
import hashlib
import inspect
import textwrap
import threading
from dataclasses import dataclass, field
from types import CodeType
from typing import Callable, Iterable, Optional, Sequence

from repro.core.branch_distance import DEFAULT_EPSILON
from repro.instrument.ast_pass import (
    HANDLE_NAME,
    ConditionalInfo,
    instrument_source,
)
from repro.instrument.cfg import DescendantAnalysis
from repro.instrument.runtime import (
    BranchId,
    CoverageOutcome,
    ExecutionProfile,
    ExecutionRecord,
    FastRuntime,
    Runtime,
    RuntimeHandle,
)
from repro.instrument.batch import (
    BatchKernel,
    batched_cache_info,
    build_batch_kernel,
    clear_batched_cache,
)
from repro.instrument.native.cache import NativeUnavailable
from repro.instrument.native.kernel import (
    NativeKernel,
    build_native_kernel,
    clear_native_cache,
    native_cache_info,
)
from repro.instrument.signature import ProgramSignature
from repro.instrument.specialize import (
    COV_NAME,
    R_NAME,
    clear_specialized_cache,
    specialized_cache_info,
    specialized_unit,
)


class InstrumentationError(RuntimeError):
    """Raised when a function cannot be instrumented (e.g. no source)."""


@dataclass(frozen=True)
class ProgramOrigin:
    """The recipe an :class:`InstrumentedProgram` was built from.

    Keeping the original (uninstrumented) callables around makes the program
    *clonable*: worker threads get independent compiled namespaces, and
    worker processes can rebuild the program from the picklable function
    references instead of shipping compiled code across the process boundary.
    """

    target: Callable
    extra_functions: tuple[Callable, ...] = ()
    signature: Optional[ProgramSignature] = None


@dataclass(frozen=True)
class CompiledUnit:
    """Immutable compiled artifacts of one instrumented source (cacheable)."""

    code: CodeType = field(repr=False)
    conditionals: tuple[ConditionalInfo, ...]
    analysis: DescendantAnalysis = field(repr=False)
    unparsed: str = field(repr=False)


#: Module-level compiled-code cache: (source sha256, function name,
#: start label) -> CompiledUnit.  Code objects are immutable, so one cached
#: unit can back any number of program namespaces (clones, worker processes
#: after fork, repeated instrument() calls).
_CODE_CACHE: dict[tuple[str, str, int], CompiledUnit] = {}
_CODE_CACHE_LOCK = threading.Lock()
_CODE_CACHE_MAX = 512


def compiled_cache_info() -> dict:
    """Statistics of both compile-tier caches (for tests/diagnostics).

    The top-level ``entries``/``max_entries`` keys describe the generic
    compiled-unit cache (backwards compatible); ``specialized`` nests the
    per-mask specialization cache's size and hit/miss/evict counters,
    ``batched`` nests the batched-kernel plan cache's, and ``native`` the
    loaded native-kernel cache's (plus its disk-cache entry count and the
    detected compiler version).
    """
    return {
        "entries": len(_CODE_CACHE),
        "max_entries": _CODE_CACHE_MAX,
        "specialized": specialized_cache_info(),
        "batched": batched_cache_info(),
        "native": native_cache_info(),
    }


def clear_compiled_cache() -> None:
    """Drop every cached compiled unit, specialization, batched kernel plan
    and loaded native kernel (primarily for tests)."""
    with _CODE_CACHE_LOCK:
        _CODE_CACHE.clear()
    clear_specialized_cache()
    clear_batched_cache()
    clear_native_cache()


def _compiled_unit(source: str, function_name: str, start_label: int) -> CompiledUnit:
    """Instrument + compile ``source``, memoized on its hash."""
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    key = (digest, function_name, start_label)
    unit = _CODE_CACHE.get(key)
    if unit is not None:
        return unit
    tree, conds, labels, func_node = instrument_source(
        source, function_name=function_name, start_label=start_label
    )
    code = compile(tree, filename=f"<instrumented:{function_name}>", mode="exec")
    unit = CompiledUnit(
        code=code,
        conditionals=tuple(conds),
        analysis=DescendantAnalysis.from_function(func_node, labels),
        unparsed=ast.unparse(tree),
    )
    with _CODE_CACHE_LOCK:
        if len(_CODE_CACHE) >= _CODE_CACHE_MAX:
            # Simple bound: the cache is tiny in practice (one entry per
            # distinct target function); dropping everything on overflow
            # costs one recompile burst and keeps the logic race-free.
            _CODE_CACHE.clear()
        _CODE_CACHE[key] = unit
    return unit


#: Bound on cached specialized variants per program instance.  Masks evolve
#: monotonically within one search, so live masks are few; the FIFO bound only
#: protects pathological callers cycling through many masks.
_VARIANTS_MAX = 64

#: Bound on cached batched kernels per program instance (same rationale).
_BATCH_KERNELS_MAX = 64

#: Bound on cached native kernels per program instance (same rationale).
_NATIVE_KERNELS_MAX = 64


class SpecializedVariant:
    """One compiled specialization of a program against a concrete mask.

    The variant owns a fresh namespace whose function definitions carry the
    Def. 4.2 dispatch resolved per probe site (see
    :mod:`repro.instrument.specialize`); executing it costs no runtime handle,
    no probe method calls and no mask shifts.  ``covered`` holds the partial
    covered-branch bytearray: only conditionals that were not both-saturated
    at specialization time record bits (stripped probes record nothing).
    """

    __slots__ = (
        "program_name",
        "saturated_mask",
        "epsilon",
        "entry",
        "namespace",
        "covered",
        "_zeros",
        "n_conditionals",
    )

    def __init__(
        self,
        program_name: str,
        saturated_mask: int,
        epsilon: float,
        entry: Callable,
        namespace: dict,
        n_conditionals: int,
    ):
        self.program_name = program_name
        self.saturated_mask = saturated_mask
        self.epsilon = epsilon
        self.entry = entry
        self.namespace = namespace
        self.n_conditionals = n_conditionals
        self._zeros = bytes(2 * n_conditionals)
        self.covered = namespace[COV_NAME]

    def run(self, args: Sequence[float]) -> tuple[object, float]:
        """Execute once, returning ``(return_value, r)``.

        Exceptions the generic runtimes swallow are swallowed here too, so the
        representing function stays total under this tier as well.
        """
        namespace = self.namespace
        namespace[R_NAME] = 1.0
        self.covered[:] = self._zeros
        value: object = None
        try:
            value = self.entry(*args)
        except (ArithmeticError, ValueError, OverflowError):
            value = None
        return value, namespace[R_NAME]

    @property
    def r(self) -> float:
        return self.namespace[R_NAME]

    def covered_mask(self) -> int:
        """Covered branches of the last run as a flat (partial) bitmask."""
        mask = 0
        for bit, hit in enumerate(self.covered):
            if hit:
                mask |= 1 << bit
        return mask


@dataclass
class InstrumentedProgram:
    """A compiled, instrumented program under test.

    Attributes:
        name: Name of the entry function.
        signature: Input-domain description of the entry function.
        conditionals: Static metadata for every instrumented conditional.
        descendants: Descendant-branch analysis used by saturation tracking.
        origin: Build recipe enabling :meth:`clone`; ``None`` for programs
            assembled by hand.
        units: Per-target ``(original source, function name, start label)``
            triples recorded by :func:`instrument`; the splice points the
            saturation specializer rebuilds from.  Empty for hand-assembled
            programs, which therefore cannot be specialized.
    """

    name: str
    signature: ProgramSignature
    conditionals: list[ConditionalInfo]
    descendants: DescendantAnalysis
    entry: Callable = field(repr=False)
    handle: RuntimeHandle = field(repr=False)
    source: str = field(repr=False, default="")
    origin: Optional[ProgramOrigin] = field(repr=False, default=None)
    units: tuple[tuple[str, str, int], ...] = field(repr=False, default=())
    specialization_builds: int = field(default=0, repr=False)
    batched_kernel_builds: int = field(default=0, repr=False)
    native_kernel_builds: int = field(default=0, repr=False)
    _variants: dict = field(default_factory=dict, repr=False)
    _batch_kernels: dict = field(default_factory=dict, repr=False)
    _native_kernels: dict = field(default_factory=dict, repr=False)

    @property
    def arity(self) -> int:
        """Number of double inputs of the entry function."""
        return self.signature.arity

    @property
    def n_conditionals(self) -> int:
        return len(self.conditionals)

    @property
    def n_branches(self) -> int:
        """Gcov-style branch count: two branches per conditional."""
        return 2 * len(self.conditionals)

    @property
    def fallback_conditionals(self) -> tuple[ConditionalInfo, ...]:
        """Conditionals whose test compiled to the distance-blind ``truth`` fallback.

        These labels receive coverage recording but no statically-guaranteed
        branch-distance guidance (the runtime still promotes numeric values
        at execution time).  A complete lowering keeps this empty; anything
        listed here is invisible to the representing function's gradient.
        """
        return tuple(cond for cond in self.conditionals if cond.form == "truth")

    def conditional_forms(self) -> dict[str, int]:
        """Histogram of the lowered conditional forms (see ``CONDITIONAL_FORMS``)."""
        counts: dict[str, int] = {}
        for cond in self.conditionals:
            counts[cond.form] = counts.get(cond.form, 0) + 1
        return counts

    @property
    def all_branches(self) -> frozenset[BranchId]:
        branches: set[BranchId] = set()
        for cond in self.conditionals:
            branches.add(BranchId(cond.label, True))
            branches.add(BranchId(cond.label, False))
        return frozenset(branches)

    def descendant_branches(self, branch: BranchId) -> frozenset[BranchId]:
        return self.descendants.descendant_branches(branch)

    def run(
        self, args: Sequence[float], runtime: Optional[Runtime] = None
    ) -> tuple[object, float, ExecutionRecord]:
        """Execute the instrumented program on ``args`` under ``FULL_TRACE``.

        Returns ``(return_value, r, record)``.  Exceptions escaping the
        program under test (domain errors, overflow raised as Python
        exceptions) are swallowed: the execution record up to the fault is
        still meaningful and the representing function must stay total.

        This is the recording entry point; profile-aware callers use
        :meth:`run_profiled`.
        """
        runtime = runtime if runtime is not None else Runtime()
        self.handle.install(runtime)
        runtime.begin()
        value: object = None
        try:
            value = self.entry(*args)
        except (ArithmeticError, ValueError, OverflowError):
            value = None
        r, record = runtime.end()
        return value, r, record

    def run_profiled(
        self,
        args: Sequence[float],
        profile: ExecutionProfile = ExecutionProfile.FULL_TRACE,
        runtime: Optional["Runtime | FastRuntime"] = None,
        saturated_mask: Optional[int] = None,
    ) -> tuple[object, float, "ExecutionRecord | CoverageOutcome | int"]:
        """Execute on ``args`` under an explicit execution profile.

        Returns ``(return_value, r, outcome)`` where ``outcome`` is the full
        :class:`ExecutionRecord` under ``FULL_TRACE``, a
        :class:`CoverageOutcome` under ``COVERAGE``, and just the flat
        covered-branch bitmask (an ``int``) under ``PENALTY_ONLY`` -- that
        profile's contract is "``r`` plus a bitset", so no per-call branch
        objects are materialized.  ``saturated_mask`` feeds the fast
        runtime's inlined penalty; when omitted, a reused runtime keeps the
        mask it was configured with (ignored under ``FULL_TRACE``, where the
        caller installs a policy on the runtime).
        """
        profile = ExecutionProfile(profile)
        if profile is ExecutionProfile.FULL_TRACE:
            return self.run(args, runtime=runtime)  # type: ignore[arg-type]
        if profile is ExecutionProfile.PENALTY_NATIVE:
            if saturated_mask is None:
                saturated_mask = getattr(runtime, "saturated_mask", 0)
            return self.run_native(
                args,
                saturated_mask,
                epsilon=getattr(runtime, "epsilon", DEFAULT_EPSILON),
            )
        if profile is ExecutionProfile.PENALTY_SPECIALIZED:
            if saturated_mask is None:
                saturated_mask = getattr(runtime, "saturated_mask", 0)
            return self.run_specialized(
                args,
                saturated_mask,
                # A passed (fast) runtime configures the tier -- its epsilon
                # is baked into the specialized code, keeping r bit-identical
                # to what that runtime would compute.
                epsilon=getattr(runtime, "epsilon", DEFAULT_EPSILON),
            )
        fast = runtime if runtime is not None else FastRuntime(self.n_conditionals)
        self.handle.install(fast)
        fast.begin(saturated_mask)
        value: object = None
        try:
            value = self.entry(*args)
        except (ArithmeticError, ValueError, OverflowError):
            value = None
        if profile is ExecutionProfile.PENALTY_ONLY:
            return value, fast.r, fast.covered_mask()
        return value, fast.r, fast.snapshot()

    def specialize(
        self, saturated_mask: int, epsilon: float = DEFAULT_EPSILON
    ) -> SpecializedVariant:
        """The compiled specialization of this program for ``saturated_mask``.

        Variants are cached per ``(mask, epsilon)`` on the program instance
        (namespaces are per-program state) on top of the module-level
        compiled-code cache, so re-requesting a mask an epoch already used is
        a dictionary lookup and a repeated mask across programs/workers only
        pays a namespace ``exec``, never a re-compile.
        ``specialization_builds`` counts true variant constructions -- the
        epoch protocol's "zero recompiles while the mask is unchanged"
        guarantee is asserted against it.
        """
        if not self.units:
            raise InstrumentationError(
                f"program {self.name!r} carries no source units and cannot be specialized"
            )
        mask = saturated_mask & ((1 << (2 * self.n_conditionals)) - 1)
        key = (mask, epsilon)
        variant = self._variants.get(key)
        if variant is not None:
            return variant
        namespace = dict(self.entry.__globals__)
        namespace[COV_NAME] = bytearray(2 * self.n_conditionals)
        namespace[R_NAME] = 1.0
        for source, function_name, start_label in self.units:
            unit = specialized_unit(source, function_name, start_label, mask, epsilon)
            exec(unit.code, namespace)  # noqa: S102 - recompiling the user's own function
        variant = SpecializedVariant(
            program_name=self.name,
            saturated_mask=mask,
            epsilon=epsilon,
            entry=namespace[self.name],
            namespace=namespace,
            n_conditionals=self.n_conditionals,
        )
        self.specialization_builds += 1
        while len(self._variants) >= _VARIANTS_MAX:
            self._variants.pop(next(iter(self._variants)))
        self._variants[key] = variant
        return variant

    def batch_kernel(
        self, saturated_mask: int, epsilon: float = DEFAULT_EPSILON
    ) -> BatchKernel:
        """The batched kernel of this program for ``saturated_mask``.

        Kernels join the per-program variant cache with the same
        epoch/re-specialization protocol as :meth:`specialize`: re-requesting
        a mask an epoch already used is a dictionary lookup, and the plan
        compile behind a new mask is memoized module-wide.
        ``batched_kernel_builds`` counts true kernel constructions.
        """
        if not self.units:
            raise InstrumentationError(
                f"program {self.name!r} carries no source units and cannot be batched"
            )
        mask = saturated_mask & ((1 << (2 * self.n_conditionals)) - 1)
        key = (mask, epsilon)
        kernel = self._batch_kernels.get(key)
        if kernel is not None:
            return kernel
        kernel = build_batch_kernel(self, mask, epsilon)
        self.batched_kernel_builds += 1
        while len(self._batch_kernels) >= _BATCH_KERNELS_MAX:
            self._batch_kernels.pop(next(iter(self._batch_kernels)))
        self._batch_kernels[key] = kernel
        return kernel

    def native_kernel(
        self, saturated_mask: int, epsilon: float = DEFAULT_EPSILON,
        wait: bool = True
    ) -> NativeKernel:
        """The compiled-to-machine-code kernel of this program for
        ``saturated_mask``.

        Kernels join the per-program variant cache with the same
        epoch/re-specialization protocol as :meth:`specialize` and
        :meth:`batch_kernel`; the out-of-process ``cc`` compile behind a new
        mask is content-addressed on disk and memoized module-wide.
        ``native_kernel_builds`` counts true kernel constructions.  Raises
        :class:`~repro.instrument.native.cache.NativeUnavailable` when no C
        compiler is present or the program cannot be emitted; callers
        degrade to the scalar specialized tier.  With ``wait=False`` a cold
        compile runs in the background and
        :class:`~repro.instrument.native.cache.NativeCompiling` is raised
        until it lands (callers serve the specialized tier meanwhile).
        """
        if not self.units:
            raise NativeUnavailable(
                f"program {self.name!r} carries no source units and cannot "
                "be compiled natively"
            )
        mask = saturated_mask & ((1 << (2 * self.n_conditionals)) - 1)
        key = (mask, epsilon)
        kernel = self._native_kernels.get(key)
        if kernel is not None:
            return kernel
        kernel = build_native_kernel(self, mask, epsilon, wait=wait)
        self.native_kernel_builds += 1
        while len(self._native_kernels) >= _NATIVE_KERNELS_MAX:
            self._native_kernels.pop(next(iter(self._native_kernels)))
        self._native_kernels[key] = kernel
        return kernel

    def run_specialized(
        self,
        args: Sequence[float],
        saturated_mask: int,
        epsilon: float = DEFAULT_EPSILON,
    ) -> tuple[object, float, int]:
        """Execute under the ``PENALTY_SPECIALIZED`` tier.

        Returns ``(return_value, r, covered_mask)`` where ``covered_mask`` is
        *partial*: conditionals that were both-saturated in ``saturated_mask``
        had their probes stripped and record no bits.  ``r`` is bit-identical
        to what :class:`~repro.instrument.runtime.FastRuntime` computes for
        the same mask.
        """
        variant = self.specialize(saturated_mask, epsilon)
        value, r = variant.run(args)
        return value, r, variant.covered_mask()

    def run_native(
        self,
        args: Sequence[float],
        saturated_mask: int,
        epsilon: float = DEFAULT_EPSILON,
    ) -> tuple[object, float, int]:
        """Execute under the ``PENALTY_NATIVE`` tier.

        Same contract as :meth:`run_specialized` -- ``r`` bit-identical,
        ``covered_mask`` partial -- except the return value is ``None``
        (the machine-code kernel computes ``r`` and coverage only).  When
        the native tier is unavailable the call transparently degrades to
        :meth:`run_specialized`, which does return the value.
        """
        try:
            kernel = self.native_kernel(saturated_mask, epsilon)
        except NativeUnavailable:
            return self.run_specialized(args, saturated_mask, epsilon)
        r, covered = kernel.scalar(args)
        return None, r, covered

    def clone(self) -> "InstrumentedProgram":
        """Rebuild this program with a fresh namespace and runtime handle.

        Each clone owns its namespace and :class:`RuntimeHandle`, so clones
        can execute concurrently (one per worker thread) without racing on
        the installed runtime.  The compiled code objects are shared through
        the module-level cache, so cloning only re-``exec``s them.  Requires
        :attr:`origin`.
        """
        if self.origin is None:
            raise InstrumentationError(
                f"program {self.name!r} was not built by instrument() and cannot be cloned"
            )
        return instrument(
            self.origin.target,
            extra_functions=self.origin.extra_functions,
            signature=self.origin.signature,
        )


def instrument(
    func: Callable,
    extra_functions: Iterable[Callable] = (),
    signature: Optional[ProgramSignature] = None,
) -> InstrumentedProgram:
    """Instrument ``func`` (and optionally helpers it calls) for CoverMe.

    Args:
        func: The entry function under test.  Its source must be available
            through :func:`inspect.getsource`.
        extra_functions: Helper functions called by ``func`` whose branches
            should also be instrumented and counted (Sect. 5.3, "Handling
            Function Calls").  They are compiled into the same namespace so
            calls from the entry function reach the instrumented versions.
        signature: Optional explicit input-domain description; derived from
            ``func``'s parameters when omitted.

    Returns:
        An :class:`InstrumentedProgram`.
    """
    handle = RuntimeHandle()
    extra_functions = tuple(extra_functions)
    targets = [func, *extra_functions]

    # Build the shared namespace first so instrumented definitions (added in
    # the second pass) are never shadowed by the originals from a later
    # target's module globals.
    namespace: dict = {}
    for target in targets:
        namespace.update(getattr(target, "__globals__", {}))
    namespace[HANDLE_NAME] = handle

    conditionals: list[ConditionalInfo] = []
    analysis = DescendantAnalysis()
    next_label = 0
    sources: list[str] = []
    units: list[tuple[str, str, int]] = []

    for target in targets:
        try:
            source = textwrap.dedent(inspect.getsource(target))
        except (OSError, TypeError) as exc:
            raise InstrumentationError(
                f"cannot obtain source for {getattr(target, '__name__', target)!r}: {exc}"
            ) from exc
        units.append((source, target.__name__, next_label))
        unit = _compiled_unit(source, target.__name__, next_label)
        next_label += len(unit.conditionals)
        conditionals.extend(unit.conditionals)
        analysis.merge(unit.analysis)
        exec(unit.code, namespace)  # noqa: S102 - compiling the user's own function
        sources.append(unit.unparsed)

    entry = namespace[func.__name__]
    sig = signature or ProgramSignature.from_callable(func)
    return InstrumentedProgram(
        name=func.__name__,
        signature=sig,
        conditionals=conditionals,
        descendants=analysis,
        entry=entry,
        handle=handle,
        source="\n\n".join(sources),
        origin=ProgramOrigin(target=func, extra_functions=extra_functions, signature=signature),
        units=tuple(units),
    )
